"""Theorem 1: the QSNR lower bound across formats and distributions."""


def test_theorem1_bound(experiment):
    result = experiment("theorem1", quick=True)
    assert all(row["holds"] == "yes" for row in result.rows)
