"""Table VII: GPT / MoE generative training, MX9 vs FP32."""


def test_table7_mx9_matches_fp32(experiment):
    result = experiment("table7", quick=True)
    for row in result.rows:
        # the paper's claim: identical LM loss with no recipe change
        assert abs(row["delta"]) <= 0.02, row
