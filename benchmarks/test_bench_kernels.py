"""Micro-benchmarks of the quantization kernels themselves.

These time the emulation throughput (elements/second) of each format
family — the practical cost of using this library as an MX emulator.
"""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.core.quantize import bdr_quantize
from repro.formats.registry import get_format
from repro.nn.quantized import QuantSpec, quantized_matmul
from repro.nn.tensor import Tensor

SHAPE = (256, 1024)


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(0).normal(size=SHAPE)


@pytest.mark.parametrize("name", ["mx9", "mx6", "mx4", "msfp16", "int8", "vsq6", "fp8_e4m3"])
def test_quantize_kernel(benchmark, data, name):
    fmt = get_format(name)
    result = benchmark(lambda: fmt.quantize(data, axis=-1))
    assert result.shape == SHAPE


def test_raw_engine_mx9(benchmark, data):
    config = BDRConfig.mx(m=7)
    benchmark(lambda: bdr_quantize(data, config, axis=-1))


def test_quantized_matmul_forward_backward(benchmark):
    rng = np.random.default_rng(1)
    a_data = rng.normal(size=(64, 256))
    w_data = rng.normal(size=(256, 64))
    spec = QuantSpec.uniform("mx9")

    def step():
        a = Tensor(a_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        quantized_matmul(a, w, spec).sum().backward()
        return w.grad

    assert benchmark(step) is not None
