"""Micro-benchmarks of the quantization kernels themselves.

These time the emulation throughput (elements/second) of each format
family — the practical cost of using this library as an MX emulator.
The suite doubles as the regression gate: ``benchmarks/check_regression.py``
compares a fresh ``--benchmark-json`` run against the committed
``benchmarks/BENCH_kernels.json`` baseline and fails on a >25% slowdown.

``test_raw_engine_mx9_reference`` times the legacy unfused path, so one run
shows the fast-backend speedup directly (the fused backend must hold >=2x
on the mx9/mx6/bfp kernels).
"""

import numpy as np
import pytest

from repro.core.bdr import BDRConfig
from repro.core.quantize import bdr_quantize
from repro.fidelity.qsnr import measure_qsnr
from repro.fidelity.sweep import run_sweep
from repro.formats.registry import get_format
from repro.kernels import clear_plan_cache, use_backend
from repro.nn.quantized import QuantSpec, quantized_matmul
from repro.nn.tensor import Tensor

SHAPE = (256, 1024)


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(0).normal(size=SHAPE)


@pytest.mark.parametrize("name", ["mx9", "mx6", "mx4", "msfp16", "int8", "vsq6", "fp8_e4m3"])
def test_quantize_kernel(benchmark, data, name):
    fmt = get_format(name)
    result = benchmark(lambda: fmt.quantize(data, axis=-1))
    assert result.shape == SHAPE


def test_raw_engine_mx9(benchmark, data):
    config = BDRConfig.mx(m=7)
    benchmark(lambda: bdr_quantize(data, config, axis=-1))


def test_raw_engine_mx9_reference(benchmark, data):
    """The legacy unfused path: the denominator of the speedup claim."""
    config = BDRConfig.mx(m=7)
    with use_backend("reference"):
        benchmark(lambda: bdr_quantize(data, config, axis=-1))


def test_planned_path_cold_vs_warm(benchmark, data):
    """Steady-state planned execution: every call after the first reuses the
    cached QuantPlan (geometry + scratch).  The plan cache is cleared once
    up front so the timed calls include exactly one cold plan build."""
    config = BDRConfig.mx(m=4)
    clear_plan_cache()

    def warm_calls():
        return bdr_quantize(data, config, axis=-1)

    benchmark(warm_calls)


def test_measure_qsnr_batched_mx6(benchmark):
    """The Figure 7 inner loop: stateless formats collapse the chunked
    ensemble into a single batched quantize call."""
    result = benchmark.pedantic(
        lambda: measure_qsnr(get_format("mx6"), n_vectors=2000), rounds=3, iterations=1
    )
    assert 20.0 < result < 40.0


def test_run_sweep_parallel_smoke(benchmark):
    """run_sweep fans out over a process pool; results stay bit-identical
    to the serial path (asserted in tests/fidelity), so this only times the
    dispatch overhead on a small grid."""
    configs = [BDRConfig.mx(m=2), BDRConfig.mx(m=4), BDRConfig.bfp(m=3, k1=16),
               BDRConfig.mx(m=7)]
    points = benchmark.pedantic(
        lambda: run_sweep(configs=configs, include_named=False,
                          n_vectors=200, n_jobs=2),
        rounds=1, iterations=1,
    )
    assert len(points) == len(configs)


def test_quantized_matmul_forward_backward(benchmark):
    rng = np.random.default_rng(1)
    a_data = rng.normal(size=(64, 256))
    w_data = rng.normal(size=(256, 64))
    spec = QuantSpec.uniform("mx9")

    def step():
        a = Tensor(a_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        quantized_matmul(a, w, spec).sum().backward()
        return w.grad

    assert benchmark(step) is not None


def test_quantized_matmul_memoized_weights(benchmark):
    """Inference-style reuse: the weight tensor persists across calls, so
    Q(w) is computed once and served from the tensor's quantization cache."""
    rng = np.random.default_rng(2)
    a_data = rng.normal(size=(64, 256))
    w = Tensor(rng.normal(size=(256, 64)), requires_grad=True)
    spec = QuantSpec.uniform("mx9")

    def step():
        return quantized_matmul(Tensor(a_data), w, spec)

    assert benchmark(step).shape == (64, 64)