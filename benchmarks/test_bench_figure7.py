"""Figure 7: the QSNR vs area-memory Pareto frontier.

The full sweep (several hundred BDR grid points + every named format at 10K
vectors) is the paper's headline experiment; the benchmark runs the named
formats plus a reduced grid to keep wall-clock reasonable while preserving
every comparison the paper draws from the figure.
"""

from repro.fidelity.sweep import bdr_design_space


def test_figure7_pareto_frontier(experiment):
    result = experiment("figure7", quick=False)
    by_label = {row["format"]: row for row in result.rows}
    mx9, mx6 = by_label["MX9"], by_label["MX6"]
    e4m3 = by_label["FP8 - E4M3"]
    assert mx9["qsnr_db"] - e4m3["qsnr_db"] > 12.0
    assert e4m3["cost"] / mx6["cost"] > 1.8


def test_figure7_design_space_exceeds_800_points():
    """The paper sweeps 800+ configurations; the full grid plus the named
    points and VSQ variants reaches that scale."""
    grid = bdr_design_space(
        mantissa_bits=(1, 2, 3, 4, 5, 6, 7, 8),
        k1_values=(8, 16, 32, 64, 128, 256),
        k2_values=(1, 2, 4, 8, 16, 32, 64),
        d2_values=(0, 1, 2, 3),
    )
    assert len(grid) >= 800
