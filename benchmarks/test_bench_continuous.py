"""Continuous-batching throughput benchmarks (``bench-serve --continuous``).

Two benchmarks drain the same 64-stream ragged ``generate`` workload
through both serving paths: ``lockstep_drain`` times the classic
micro-batched session (whose equal-shape grouping degrades ragged decode
traffic to serial singletons), and ``continuous_drain`` times the
token-granularity scheduler over the paged KV pool.  The headline test
asserts the scheduler sustains >= 2x the lockstep tokens/sec — measured
through the same protocol as ``python -m repro bench-serve --continuous``
(:func:`repro.serve.bench.measure_continuous_speedup`), which refuses to
report at all unless both paths are bit-identical to serial decode and
the page pool drains empty.  ``benchmarks/check_regression.py`` gates the
medians against ``benchmarks/BENCH_continuous.json``.
"""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.models.gpt import GPT, GPT_SIZES
from repro.serve import SessionConfig, compile_model

STREAMS = 64
MAX_NEW = 8
PROMPT_LENS = (4, 88)
FORMAT = "mx6"


@pytest.fixture(scope="module")
def continuous_setup():
    """One compiled GPT-S plus a fixed ragged generate workload."""
    lang = SyntheticLanguage(seed=0)
    model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
    compiled = compile_model(model, FORMAT)
    rng = np.random.default_rng(0)
    requests = [
        {
            "task": "generate",
            "prompt": rng.integers(1, lang.vocab_size, size=int(n)).tolist(),
            "max_new_tokens": MAX_NEW,
        }
        for n in rng.integers(*PROMPT_LENS, size=STREAMS)
    ]
    return compiled, requests


def test_lockstep_drain(benchmark, continuous_setup):
    """The classic session on ragged decode: mostly serial fallbacks."""
    compiled, requests = continuous_setup
    config = SessionConfig(format=FORMAT, max_batch=STREAMS, max_wait=0.05)
    with compiled.session(config) as session:
        session.map(requests)  # warm
        results = benchmark.pedantic(
            lambda: session.map(requests), rounds=3, iterations=1
        )
    assert len(results) == STREAMS


def test_continuous_drain(benchmark, continuous_setup):
    """The paged-KV scheduler on the same workload, fused across streams."""
    compiled, requests = continuous_setup
    config = SessionConfig(format=FORMAT, scheduler={"max_streams": STREAMS})
    with compiled.session(config) as session:
        session.map(requests)  # warm
        results = benchmark.pedantic(
            lambda: session.map(requests), rounds=3, iterations=1
        )
        pool = session._sched.pool
    assert len(results) == STREAMS
    assert pool.leaked() == {}


def test_continuous_speedup_headline(continuous_setup):
    """Continuous batching >= 2x lockstep generate tokens/sec at 64 streams.

    The shared protocol asserts bit-identity of every stream against the
    serial ``generate_stream`` decode (both paths) and an empty page pool
    before any throughput number is produced, so this gate cannot pass on
    wrong tokens.
    """
    from repro.serve.bench import measure_continuous_speedup

    compiled, _ = continuous_setup
    result = measure_continuous_speedup(
        compiled.model,
        fmt=FORMAT,
        streams=STREAMS,
        max_new_tokens=MAX_NEW,
        prompt_lens=PROMPT_LENS,
        repeats=3,
    )
    assert result["speedup"] >= 2.0, (
        f"continuous batching only {result['speedup']:.2f}x lockstep "
        f"({result['continuous_tokens_per_sec']:.0f} vs "
        f"{result['lockstep_tokens_per_sec']:.0f} tok/s); "
        "the scheduler headline requires >= 2x"
    )
