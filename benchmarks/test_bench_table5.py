"""Table V: BERT QA under direct cast (no fine-tuning)."""


def test_table5_bert_qa_direct_cast(experiment):
    result = experiment("table5", quick=True)
    by_column = {row["column"]: row for row in result.rows if row["model"] == "Bert-Base"}
    baseline = by_column["FP32"]
    # the paper's claim: direct casting costs almost nothing on QA
    assert by_column["Direct Cast (MX9)"]["f1"] >= baseline["f1"] - 3.0
    assert by_column["Direct Cast (MX6)"]["f1"] >= baseline["f1"] - 5.0
