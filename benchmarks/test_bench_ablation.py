"""Section IV-C: the parameter-knee ablations behind Table II."""


def test_parameter_knees(experiment):
    result = experiment("ablation", quick=True)
    by_change = {row["change"]: row for row in result.rows}

    d2 = by_change["d2: 1 -> 2"]
    assert 0.0 <= d2["dqsnr_db"] <= 1.5          # paper: +0.5 dB
    assert d2["dcost_pct"] > 5.0                  # paper: +30-50%

    k2_fine = by_change["k2: 8 -> 2"]
    assert k2_fine["dqsnr_db"] > 0.8              # paper: +~2 dB
    assert k2_fine["dcost_pct"] < 15.0            # paper: +~3%

    k2_one = by_change["k2: 2 -> 1"]
    assert 0.0 <= k2_one["dqsnr_db"] <= 2.0       # paper: +0.7 dB
    assert k2_one["dcost_pct"] > k2_fine["dcost_pct"]
