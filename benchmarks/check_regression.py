#!/usr/bin/env python
"""Throughput regression gate (kernels + serving + decode suites).

Runs each suite's benchmark module under ``pytest-benchmark`` with
``--benchmark-json``, then compares the median time of every benchmark
against the committed baseline (``benchmarks/BENCH_kernels.json`` /
``benchmarks/BENCH_serving.json``) and exits nonzero if any benchmark
regressed by more than the threshold (default 25%).

Usage::

    python benchmarks/check_regression.py                  # gate all suites
    python benchmarks/check_regression.py --suite serving  # one suite
    python benchmarks/check_regression.py --update-baseline
    python benchmarks/check_regression.py --threshold 0.4  # looser gate
    python benchmarks/check_regression.py --suite kernels --no-run --json out.json
                                            # compare an existing run

Medians are wall-clock on the current machine; the committed baseline is a
same-machine anchor for CI, not a cross-machine contract.  Re-baseline with
``--update-baseline`` after intentional performance changes.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: suite name -> (benchmark module, committed baseline)
SUITES = {
    "kernels": (BENCH_DIR / "test_bench_kernels.py", BENCH_DIR / "BENCH_kernels.json"),
    "serving": (BENCH_DIR / "test_bench_serving.py", BENCH_DIR / "BENCH_serving.json"),
    "decode": (BENCH_DIR / "test_bench_decode.py", BENCH_DIR / "BENCH_decode.json"),
    "continuous": (
        BENCH_DIR / "test_bench_continuous.py",
        BENCH_DIR / "BENCH_continuous.json",
    ),
    "forward": (BENCH_DIR / "test_bench_forward.py", BENCH_DIR / "BENCH_forward.json"),
}


def run_benchmarks(bench_file: Path, json_path: Path) -> None:
    """Run one suite's benchmark module, writing pytest-benchmark JSON."""
    cmd = [
        sys.executable, "-m", "pytest", str(bench_file), "-q",
        "--benchmark-json", str(json_path),
    ]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if result.returncode != 0:
        sys.exit(f"benchmark run failed with exit code {result.returncode}")


def load_medians(json_path: Path) -> dict[str, float]:
    payload = json.loads(json_path.read_text())
    return {b["name"]: b["stats"]["median"] for b in payload["benchmarks"]}


def compare(baseline: dict[str, float], current: dict[str, float],
            threshold: float) -> list[str]:
    """Return a list of failure messages for regressed benchmarks.

    Benchmarks with ``smoke`` in the name are reported but never gate:
    they run a single round (process-pool dispatch, etc.) and are too noisy
    for a 25% threshold.
    """
    failures = []
    width = max((len(n) for n in current), default=0)
    print(f"{'benchmark':<{width}}  baseline(ms)  current(ms)   ratio")
    for name in sorted(current):
        cur = current[name]
        old = baseline.get(name)
        if old is None:
            print(f"{name:<{width}}  {'--':>12}  {cur * 1e3:>11.3f}     new")
            continue
        ratio = cur / old if old > 0 else float("inf")
        gated = "smoke" not in name
        flag = "  REGRESSED" if gated and ratio > 1.0 + threshold else ""
        if not gated:
            flag = "  (not gated)"
        print(f"{name:<{width}}  {old * 1e3:>12.3f}  {cur * 1e3:>11.3f}  {ratio:>6.2f}{flag}")
        if gated and ratio > 1.0 + threshold:
            failures.append(
                f"{name}: median {cur * 1e3:.3f} ms vs baseline "
                f"{old * 1e3:.3f} ms ({(ratio - 1.0) * 100:+.0f}%, "
                f"threshold +{threshold * 100:.0f}%)"
            )
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  (missing from current run)")
        if "smoke" not in name:
            failures.append(
                f"{name}: present in baseline but missing from the current "
                "run (renamed/deleted benchmarks need --update-baseline)"
            )
    return failures


def run_suite(name: str, bench_file: Path, baseline_path: Path,
              args: argparse.Namespace) -> list[str]:
    """Run/compare one suite; returns its failure messages."""
    json_path = args.json
    tmp = None
    if json_path is None:
        tmp = tempfile.NamedTemporaryFile(suffix=".json", delete=False)
        tmp.close()
        json_path = Path(tmp.name)

    try:
        if not args.no_run:
            run_benchmarks(bench_file, json_path)
        if not json_path.exists():
            sys.exit(f"no benchmark JSON at {json_path}")

        if args.update_baseline:
            shutil.copyfile(json_path, baseline_path)
            print(f"[{name}] baseline updated: {baseline_path}")
            return []

        if not baseline_path.exists():
            sys.exit(
                f"no baseline at {baseline_path}; run with --update-baseline "
                "to create one"
            )
        print(f"=== suite: {name} ===")
        return compare(
            load_medians(baseline_path), load_medians(json_path), args.threshold
        )
    finally:
        if tmp is not None:
            Path(tmp.name).unlink(missing_ok=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=sorted(SUITES), action="append",
                        default=None,
                        help="suite(s) to gate (default: all); repeatable")
    parser.add_argument("--json", type=Path, default=None,
                        help="where to write (or with --no-run, read) the "
                             "benchmark JSON; requires a single --suite")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write this run as the new baseline and exit 0")
    parser.add_argument("--no-run", action="store_true",
                        help="skip running; compare an existing --json file")
    args = parser.parse_args()

    suites = args.suite or sorted(SUITES)
    if args.json is not None and len(suites) != 1:
        sys.exit("--json needs exactly one --suite")

    failures: list[str] = []
    for name in suites:
        bench_file, baseline_path = SUITES[name]
        failures.extend(
            f"[{name}] {message}"
            for message in run_suite(name, bench_file, baseline_path, args)
        )
    if failures:
        print("\nthroughput regressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if not args.update_baseline:
        print("\nno throughput regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
