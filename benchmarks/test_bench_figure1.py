"""Figures 1-2: the worked scaling example (exact paper QSNR values)."""


def test_figure1_scaling_examples(experiment):
    result = experiment("figure1")
    by_strategy = {row["strategy"]: row["measured_qsnr_db"] for row in result.rows}
    assert by_strategy["pow2"] == 10.1
    assert by_strategy["real"] == 15.2
    assert by_strategy["two_level"] > by_strategy["real"]
