"""Table IV: zero/few-shot direct-cast accuracy by (weight, activation)."""


def test_table4_few_shot_direct_cast(experiment):
    result = experiment("table4", quick=True)
    # expected shape: (MX9, MX9) tracks FP32 closely on every task
    for row in result.rows:
        assert abs(row["(MX9, MX9)"] - row["FP32"]) <= 10.0
    # the adversarial family sits near chance (like ANLI-r2)
    adversarial = [r for r in result.rows if r["task"] == "adversarial"]
    for row in adversarial:
        assert 30.0 <= row["FP32"] <= 70.0
