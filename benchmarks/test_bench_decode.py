"""Decode-tier throughput benchmarks (the ``bench-decode`` regression gate).

Four benchmarks time greedy autoregressive decoding over fixed token
streams: GPT-S (batch of equal-length prompts through
``CausalLMAdapter._greedy_batch``) and the Seq2Seq transformer (batched
``TranslationAdapter.greedy_decode``), each with the historical
full-prefix-recompute loop and with block-aligned quantized KV caches.
The headline assertion requires the cached GPT-S path to sustain >= 3x
the full-recompute tokens/sec, using the same shared measurement protocol
as ``python -m repro bench-decode``
(:func:`repro.serve.bench.measure_decode_speedup`), and
``benchmarks/check_regression.py`` gates every median against the
committed ``benchmarks/BENCH_decode.json`` baseline.
"""

import numpy as np
import pytest

from repro.models.gpt import GPT, GPT_SIZES
from repro.models.translation import Seq2SeqTransformer
from repro.serve.adapters import adapter_for
from repro.serve.compile import compile_model

FORMAT = "mx6"
BATCH = 8
PROMPT_LEN = 64
MAX_NEW = 32
S2S_SRC_LEN = 16
S2S_MAX_LEN = 24


@pytest.fixture(scope="module")
def gpt_setup():
    """A compiled GPT-S plus a fixed batch of equal-length prompts."""
    from repro.data.synthetic import SyntheticLanguage

    lang = SyntheticLanguage(seed=0)
    model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
    compile_model(model, FORMAT)
    adapter = adapter_for(model)
    prompts = np.random.default_rng(1).integers(
        0, lang.vocab_size, size=(BATCH, PROMPT_LEN), dtype=np.int64
    )
    adapter._greedy_batch(prompts, 2, eos=None, use_cache=True)  # warm
    adapter._greedy_batch(prompts, 2, eos=None, use_cache=False)
    return adapter, prompts


@pytest.fixture(scope="module")
def seq2seq_setup():
    """A compiled Seq2Seq transformer plus a fixed batch of sources."""
    model = Seq2SeqTransformer(vocab_size=24, rng=np.random.default_rng(2))
    compile_model(model, FORMAT)
    adapter = adapter_for(model)
    sources = np.random.default_rng(3).integers(
        0, 24, size=(BATCH, S2S_SRC_LEN), dtype=np.int64
    )
    adapter.greedy_decode(sources, max_len=4, bos=0, eos=-1, use_cache=True)  # warm
    adapter.greedy_decode(sources, max_len=4, bos=0, eos=-1, use_cache=False)
    return adapter, sources


def test_decode_gpt_full_recompute(benchmark, gpt_setup):
    """The pre-cache decode loop: one full-prefix forward per token."""
    adapter, prompts = gpt_setup
    out = benchmark.pedantic(
        lambda: adapter._greedy_batch(prompts, MAX_NEW, eos=None, use_cache=False),
        rounds=3, iterations=1,
    )
    assert len(out) == BATCH and all(len(row) == MAX_NEW for row in out)


def test_decode_gpt_kv_cached(benchmark, gpt_setup):
    """Block-aligned quantized KV caches: open-block suffix per token."""
    adapter, prompts = gpt_setup
    out = benchmark.pedantic(
        lambda: adapter._greedy_batch(prompts, MAX_NEW, eos=None, use_cache=True),
        rounds=3, iterations=1,
    )
    assert len(out) == BATCH and all(len(row) == MAX_NEW for row in out)


def test_decode_seq2seq_full_recompute(benchmark, seq2seq_setup):
    adapter, sources = seq2seq_setup
    out = benchmark.pedantic(
        lambda: adapter.greedy_decode(
            sources, max_len=S2S_MAX_LEN, bos=0, eos=-1, use_cache=False
        ),
        rounds=3, iterations=1,
    )
    assert len(out) == BATCH


def test_decode_seq2seq_kv_cached(benchmark, seq2seq_setup):
    adapter, sources = seq2seq_setup
    out = benchmark.pedantic(
        lambda: adapter.greedy_decode(
            sources, max_len=S2S_MAX_LEN, bos=0, eos=-1, use_cache=True
        ),
        rounds=3, iterations=1,
    )
    assert len(out) == BATCH


def test_decode_speedup_headline():
    """KV-cached GPT-S greedy generation >= 3x full-recompute tokens/sec.

    Uses the same shared measurement protocol as ``python -m repro
    bench-decode`` (:func:`repro.serve.bench.measure_decode_speedup`), so
    the gated number and the CLI-reported number cannot drift apart.
    """
    from repro.data.synthetic import SyntheticLanguage
    from repro.serve.bench import measure_decode_speedup

    lang = SyntheticLanguage(seed=0)
    model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
    result = measure_decode_speedup(
        model, fmt=FORMAT, batch=BATCH, prompt_len=PROMPT_LEN,
        max_new_tokens=MAX_NEW, repeats=3,
    )
    assert result["speedup"] >= 3.0, (
        f"KV-cached decoding only {result['speedup']:.2f}x full recompute "
        f"({result['cached_tokens_per_sec']:.0f} vs "
        f"{result['full_tokens_per_sec']:.0f} tok/s); "
        "the incremental-decoding headline requires >= 3x"
    )
