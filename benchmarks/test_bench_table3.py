"""Table III: the full training + inferencing matrix.

This is the long benchmark (~5-8 minutes): every model family trains twice
(FP32 and MX9 from identical initialization), is direct-cast to MX9/MX6,
and is quantization-aware fine-tuned at MX6.
"""

import math


def test_table3_training_and_inference(experiment):
    result = experiment("table3", quick=True)
    by_model = {}
    for row in result.rows:
        by_model.setdefault(row["model"], []).append(row)

    # every row family produced all five columns
    for rows in by_model.values():
        for row in rows:
            for column in (
                "baseline_fp32", "mx9_train", "direct_cast_mx9",
                "direct_cast_mx6", "finetune_mx6",
            ):
                assert row[column] is not None
                assert math.isfinite(row[column])

    # MX9 training tracks FP32 on the classification rows (paper: within
    # run-to-run variation)
    for name in ("DeiT-Tiny", "ResNet-18"):
        row = by_model[name][0]
        assert abs(row["mx9_train"] - row["baseline_fp32"]) <= 15.0

    # MX9 direct cast is a drop-in on BLEU/accuracy rows
    for name in ("GNMT (LSTM)", "ResNet-18", "DeiT-Tiny"):
        row = by_model[name][0]
        assert abs(row["direct_cast_mx9"] - row["baseline_fp32"]) <= 10.0
