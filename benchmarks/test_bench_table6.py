"""Table VI: recommendation-model NE deltas under MX9 / mixed precision."""


def test_table6_recommendation_ne(experiment):
    result = experiment("table6", quick=True)
    assert len(result.rows) == 3
    for row in result.rows:
        # NE itself must be meaningful (below the base-rate 1.0)
        assert row["ne_fp32"] < 1.0
        # the MX9 delta stays small in both directions (percent scale)
        assert abs(row["mx9_delta_pct"]) < 2.5
