"""Table II: MX format definitions, measured QSNR and the Theorem 1 bound."""


def test_table2_mx_definitions(experiment):
    result = experiment("table2", quick=True)
    bits = [row["bits_per_element"] for row in result.rows]
    assert bits == [9.0, 6.0, 4.0]
    for row in result.rows:
        assert row["qsnr_db"] >= row["theorem1_bound_db"]
