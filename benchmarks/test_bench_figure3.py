"""Figure 3: coarse SW INT scaling vs fine HW BFP scaling."""


def test_figure3_int_vs_bfp(experiment):
    result = experiment("figure3", quick=True)
    bfp16 = next(r for r in result.rows if r["family"].startswith("BFP") and r["k"] == 16)
    int1k = next(r for r in result.rows if r["family"].startswith("INT") and r["k"] == 1024)
    assert bfp16["qsnr_db"] > int1k["qsnr_db"]
