"""Table I: the two-level-scaling taxonomy."""


def test_table1_taxonomy(experiment):
    result = experiment("table1")
    assert [row["format"] for row in result.rows] == [
        "INT", "MSFP/BFP", "FP8", "VSQ", "MX",
    ]
