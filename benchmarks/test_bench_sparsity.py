"""Sparsity affinity: the intro's small-block claim under 2:4 pruning."""


def test_sparsity_block_size_affinity(experiment):
    result = experiment("sparsity", quick=True)
    by_k1 = {}
    for row in result.rows:
        if row["config"].startswith("BFP"):
            by_k1[row["k1"]] = row["qsnr_vs_pruned_db"]
    # fidelity after pruning degrades monotonically with block size
    assert by_k1[16] > by_k1[64] > by_k1[256]
    # the MX point (with microexponents) tops the plain BFP point
    mx_row = next(r for r in result.rows if r["config"].startswith("MX6"))
    assert mx_row["qsnr_vs_pruned_db"] > by_k1[16]
