"""Section IV-A: QSNR predicts end-to-end LM loss (Pearson validation)."""


def test_qsnr_loss_correlation(experiment):
    result = experiment("correlation", quick=True)
    # losses must be ordered consistently with QSNR at the extremes
    by_fmt = {row["format"]: row for row in result.rows}
    assert by_fmt["mx9"]["final_lm_loss"] <= by_fmt["mx4"]["final_lm_loss"]
    # the Pearson note records a strong positive correlation
    note = next(n for n in result.notes if "Pearson" in n)
    r_value = float(note.split("=")[1].split("(")[0])
    assert r_value > 0.5
