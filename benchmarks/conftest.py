"""Shared benchmark plumbing.

Each benchmark module regenerates one paper table/figure through
``pytest-benchmark`` (one timed round — these are experiment harnesses, not
micro-benchmarks) and prints the resulting table; run with ``-s`` to stream
the tables to the console (pytest captures stdout of passing tests
otherwise).  EXPERIMENTS.md records a full set of outputs.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


def run_and_print(benchmark, exp_id: str, **kwargs):
    """Benchmark one experiment runner and print its table."""
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result)
    return result


@pytest.fixture
def experiment(benchmark):
    """Fixture exposing the run-and-print helper."""

    def runner(exp_id: str, **kwargs):
        return run_and_print(benchmark, exp_id, **kwargs)

    return runner
