"""Serving-tier throughput benchmarks (the ``bench-serve`` regression gate).

Two benchmarks over the same GPT-S request stream establish the serving
headline: ``naive_per_request`` times the historical deployment (direct-cast
model, one legacy ``score_candidates`` call per request), and
``batched_session`` times the quantize-once compiled model behind a
micro-batched :class:`~repro.serve.InferenceSession`.  The batched median
must stay >= 3x the naive one (asserted here), and
``benchmarks/check_regression.py`` gates both medians against the committed
``benchmarks/BENCH_serving.json`` baseline.
"""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.data.tasks import make_task
from repro.flow.cast import direct_cast
from repro.models.gpt import GPT, GPT_SIZES, score_candidates
from repro.serve import SessionConfig, compile_model

N_REQUESTS = 48
MAX_BATCH = 16
FORMAT = "mx6"


@pytest.fixture(scope="module")
def serving_setup():
    """One GPT-S over the synthetic language plus a fixed request stream."""
    lang = SyntheticLanguage(seed=0)
    model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
    examples = make_task("recall", lang, n_examples=N_REQUESTS, seed=1)
    requests = [
        {"task": "score", "context": ex.context, "candidates": ex.candidates}
        for ex in examples
    ]
    return model, requests


def test_serving_naive_per_request(benchmark, serving_setup):
    """The pre-serving deployment: per-request legacy calls."""
    model, requests = serving_setup
    direct_cast(model, FORMAT)
    pairs = [(r["context"], r["candidates"]) for r in requests]
    score_candidates(model, *pairs[0])  # warm weight memo outside the timer

    def naive():
        return [score_candidates(model, context, cands) for context, cands in pairs]

    choices = benchmark.pedantic(naive, rounds=3, iterations=1)
    assert len(choices) == N_REQUESTS


def test_serving_batched_session(benchmark, serving_setup):
    """Quantize-once + micro-batched session over the same stream."""
    model, requests = serving_setup
    config = SessionConfig(format=FORMAT, max_batch=MAX_BATCH, max_wait=0.05)
    compiled = compile_model(model, config=config)
    compiled.run(requests[:2])  # warm

    def batched():
        with compiled.session(config) as session:
            return session.map(requests)

    results = benchmark.pedantic(batched, rounds=3, iterations=1)
    assert len(results) == N_REQUESTS
    assert compiled.check_frozen()


def test_serving_speedup_headline(serving_setup):
    """Batched quantize-once serving >= 3x naive per-request throughput.

    Uses the same shared measurement protocol as ``python -m repro
    bench-serve`` (:func:`repro.serve.bench.measure_serving_speedup`), so
    the gated number and the CLI-reported number cannot drift apart.
    """
    from repro.serve.bench import measure_serving_speedup

    model, requests = serving_setup
    result = measure_serving_speedup(
        model, requests, fmt=FORMAT, max_batch=MAX_BATCH, repeats=3
    )
    assert result["speedup"] >= 3.0, (
        f"batched serving only {result['speedup']:.2f}x naive "
        f"({result['batched_rps']:.0f} vs {result['naive_rps']:.0f} req/s); "
        "the quantize-once headline requires >= 3x"
    )
