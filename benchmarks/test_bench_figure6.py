"""Figure 6: dot-product pipeline area accounting."""


def test_figure6_pipeline_breakdown(experiment):
    result = experiment("figure6")
    total = next(r for r in result.rows if r["stage"] == "TOTAL")
    assert total["mx4"] < total["mx6"] < total["mx9"]
