"""Forward-path throughput benchmarks (the ``bench-forward`` regression gate).

Four benchmarks time one batched ``model.forward`` pass for GPT-S and the
MoE variant, each under the pre-residency schedule
(:func:`~repro.nn.residency.fusion_disabled` — the historical execution,
kernels included) and under quantized activation residency + the fused
projection/epilogue pipeline.  ``benchmarks/check_regression.py`` gates
every median against the committed ``benchmarks/BENCH_forward.json``
baseline.

The headline assertion uses the same shared measurement protocol as
``python -m repro bench-forward``
(:func:`repro.serve.bench.measure_forward_speedup`): interleaved
baseline/fused passes over the serve bench's batched score stream, with
the median per-repeat ratio as the drift-cancelling estimator.  It
requires the fused schedule to sustain >= 1.5x (GPT-S) and >= 1.3x (MoE)
the pre-residency throughput, and asserts the *structural* win alongside
the wall-clock one: a steady-state fused forward enters the quantization
engine exactly once per unique activation (two consecutive passes cost
the same), and never more often than the unfused schedule.
"""

import numpy as np
import pytest

from repro.core.quantize import quantize_call_count
from repro.data.synthetic import SyntheticLanguage
from repro.models.gpt import GPT, GPT_SIZES
from repro.models.moe import MoEGPT
from repro.nn.residency import fusion_disabled
from repro.nn.tensor import no_grad
from repro.serve.compile import compile_model

FORMAT = "mx6"
BATCH = 8
SEQ_LEN = 64


def _compiled_model(model_cls):
    lang = SyntheticLanguage(seed=0)
    model = model_cls(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
    compile_model(model, FORMAT)
    tokens = np.random.default_rng(1).integers(
        0, lang.vocab_size, size=(BATCH, SEQ_LEN), dtype=np.int64
    )
    return model, tokens


@pytest.fixture(scope="module")
def gpt_setup():
    model, tokens = _compiled_model(GPT)
    with no_grad():
        model.forward(tokens)  # warm fused-weight payloads + plan cache
        with fusion_disabled():
            model.forward(tokens)
    return model, tokens


@pytest.fixture(scope="module")
def moe_setup():
    model, tokens = _compiled_model(MoEGPT)
    with no_grad():
        model.forward(tokens)
        with fusion_disabled():
            model.forward(tokens)
    return model, tokens


def _run_fused(model, tokens):
    with no_grad():
        return model.forward(tokens)


def _run_unfused(model, tokens):
    with no_grad(), fusion_disabled():
        return model.forward(tokens)


def test_forward_gpt_unfused(benchmark, gpt_setup):
    """The pre-residency schedule: per-consumer quantization, unfused ops."""
    model, tokens = gpt_setup
    out = benchmark.pedantic(lambda: _run_unfused(model, tokens), rounds=5, iterations=2)
    assert out.shape == (BATCH, SEQ_LEN, model.vocab_size)


def test_forward_gpt_fused(benchmark, gpt_setup):
    """Residency + fused projections/epilogues (the serving default)."""
    model, tokens = gpt_setup
    out = benchmark.pedantic(lambda: _run_fused(model, tokens), rounds=5, iterations=2)
    assert out.shape == (BATCH, SEQ_LEN, model.vocab_size)


def test_forward_moe_unfused(benchmark, moe_setup):
    model, tokens = moe_setup
    out = benchmark.pedantic(lambda: _run_unfused(model, tokens), rounds=5, iterations=2)
    assert out.shape == (BATCH, SEQ_LEN, model.vocab_size)


def test_forward_moe_fused(benchmark, moe_setup):
    model, tokens = moe_setup
    out = benchmark.pedantic(lambda: _run_fused(model, tokens), rounds=5, iterations=2)
    assert out.shape == (BATCH, SEQ_LEN, model.vocab_size)


@pytest.mark.parametrize("model_cls", [GPT, MoEGPT], ids=["gpt", "moe"])
def test_forward_fused_bit_identical(model_cls):
    """The fused schedule may not change one output bit."""
    model, tokens = _compiled_model(model_cls)
    with no_grad():
        fused = model.forward(tokens).data
        with fusion_disabled():
            baseline = model.forward(tokens).data
    np.testing.assert_array_equal(fused, baseline)


@pytest.mark.parametrize("model_cls", [GPT, MoEGPT], ids=["gpt", "moe"])
def test_forward_quantize_call_residency(model_cls):
    """One engine entry per unique activation per step, steady state.

    Two consecutive fused passes over the same geometry must cost the
    same number of quantization-engine entries (no warm-up work leaking
    into steady state, weights never requantized), and the fused schedule
    must enter the engine strictly fewer times than the pre-residency
    schedule, which requantizes the same activation once per consumer.
    """
    model, tokens = _compiled_model(model_cls)
    with no_grad():
        model.forward(tokens)
        before = quantize_call_count()
        model.forward(tokens)
        first = quantize_call_count() - before
        before = quantize_call_count()
        model.forward(tokens)
        second = quantize_call_count() - before
        with fusion_disabled():
            model.forward(tokens)
            before = quantize_call_count()
            model.forward(tokens)
            unfused = quantize_call_count() - before
    assert first == second, "fused steady state requantized something"
    assert first < unfused, (
        f"residency did not reduce engine entries: fused {first} vs "
        f"unfused {unfused}"
    )


def test_forward_speedup_headline():
    """Fused batched forward >= 1.5x (GPT-S) and >= 1.3x (MoE) pre-residency.

    Shared protocol with ``python -m repro bench-forward``
    (:func:`repro.serve.bench.measure_forward_speedup`), so the gated
    number and the CLI-reported number cannot drift apart.  The measured
    speedups on this machine run well above the gates (~2.5-2.9x); the
    gate values are the acceptance floors.
    """
    from repro.serve.bench import measure_forward_speedup

    lang = SyntheticLanguage(seed=0)
    for model_cls, floor in ((GPT, 1.5), (MoEGPT, 1.3)):
        model = model_cls(
            lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0)
        )
        result = measure_forward_speedup(model, fmt=FORMAT, requests=48, repeats=8)
        assert result["speedup"] >= floor, (
            f"{result['family']} fused schedule only {result['speedup']:.2f}x "
            f"the pre-residency baseline ({result['fused_rps']:.0f} vs "
            f"{result['baseline_rps']:.0f} req/s); the residency headline "
            f"requires >= {floor}x"
        )
        assert (
            result["fused_quant_calls_per_request"]
            <= result["baseline_quant_calls_per_request"]
        )
