"""Figure 9: LM loss vs normalized training cost, MX9 vs MX6."""


def test_figure9_mx6_cheaper_to_quality(experiment):
    result = experiment("figure9", quick=True)
    by_model = {}
    for row in result.rows:
        by_model.setdefault(row["model"], {})[row["format"]] = row
    for name, formats in by_model.items():
        mx9, mx6 = formats["MX9"], formats["MX6"]
        # MX6 reaches (near) the MX9 loss at lower total cost
        assert mx6["lm_loss"] <= mx9["lm_loss"] + 0.05, name
        assert mx6["total_cost"] < mx9["total_cost"], name
