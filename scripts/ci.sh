#!/usr/bin/env bash
# One-command CI gate: tier-1 tests, perf regression (kernels + serving),
# CLI smoke including the serving tier.
#
# Usage:
#   scripts/ci.sh                 # full gate
#   SKIP_BENCH=1 scripts/ci.sh    # skip the perf gate (e.g. noisy machines)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "=== [1/4] tier-1 pytest ==="
python -m pytest -x -q

if [ -z "${SKIP_BENCH:-}" ]; then
    echo "=== [2/4] perf regression gate (kernels + serving + decode + forward) ==="
    python benchmarks/check_regression.py
else
    echo "=== [2/4] perf regression gate (skipped: SKIP_BENCH set) ==="
fi

echo "=== [3/4] spec-layer CLI smoke ==="
python -m repro list > /dev/null
python -m repro list-formats > /dev/null
python -m repro describe "bdr(m=4,k1=16,d1=8,k2=2,d2=1,ss=pow2)" > /dev/null
python -m repro describe "mx9?rounding=stochastic" > /dev/null
python -m repro qsnr mx6 --n-vectors 200 > /dev/null
# unknown specs must fail with exit code 2
if python -m repro describe mx7 2> /dev/null; then
    echo "describe mx7 should have failed" >&2
    exit 1
fi

echo "=== [4/4] serving CLI smoke ==="
# tiny model, ~2s budget: exercises compile -> session -> metrics end to end
python -m repro serve --model gpt-xs --requests 8 --max-batch 4 > /dev/null
python -m repro bench-serve --quick > /dev/null
python -m repro bench-decode --quick > /dev/null
python -m repro bench-forward --quick > /dev/null
# the pre-residency schedule must stay a working end-to-end configuration
REPRO_FUSION=0 python -m repro bench-forward --quick > /dev/null

echo "ci: all gates passed"
