#!/usr/bin/env bash
# One-command CI gate: tier-1 tests, perf regression (kernels + serving),
# CLI smoke including the serving tier, seeded chaos smoke (classic and
# continuous-scheduler), and the invariant static analyzer (docs/ANALYSIS.md).
#
# Usage:
#   scripts/ci.sh                 # full gate
#   SKIP_BENCH=1 scripts/ci.sh    # skip the perf gate (e.g. noisy machines)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "=== [1/6] tier-1 pytest ==="
python -m pytest -x -q

if [ -z "${SKIP_BENCH:-}" ]; then
    echo "=== [2/6] perf regression gate (kernels + serving + decode + forward + continuous) ==="
    python benchmarks/check_regression.py
else
    echo "=== [2/6] perf regression gate (skipped: SKIP_BENCH set) ==="
fi

echo "=== [3/6] spec-layer CLI smoke ==="
python -m repro list > /dev/null
python -m repro list-formats > /dev/null
python -m repro describe "bdr(m=4,k1=16,d1=8,k2=2,d2=1,ss=pow2)" > /dev/null
python -m repro describe "mx9?rounding=stochastic" > /dev/null
python -m repro qsnr mx6 --n-vectors 200 > /dev/null
# unknown specs must fail with exit code 2
if python -m repro describe mx7 2> /dev/null; then
    echo "describe mx7 should have failed" >&2
    exit 1
fi

echo "=== [4/6] serving CLI smoke ==="
# tiny model, ~2s budget: exercises compile -> session -> metrics end to end
python -m repro serve --model gpt-xs --requests 8 --max-batch 4 > /dev/null
python -m repro bench-serve --quick > /dev/null
# continuous batching: bit-identity to serial decode is asserted inside
# the measurement (it refuses to report a speedup on wrong tokens)
python -m repro bench-serve --continuous --quick > /dev/null
python -m repro bench-decode --quick > /dev/null
python -m repro bench-forward --quick > /dev/null
# the pre-residency schedule must stay a working end-to-end configuration
REPRO_FUSION=0 python -m repro bench-forward --quick > /dev/null

echo "=== [5/6] seeded chaos smoke ==="
# fixed seed: the same faults inject at the same sites on every CI run.
# the session must stay available, isolate the failures, retry the
# transients, and leave zero unresolved futures (asserted by the suite).
REPRO_FAULTS="seed=11 adapter.run_batch:kind=transient,rate=0.2" \
    python -m pytest tests/serve/test_chaos.py -q
# scheduler storm: preemption churn + admit/preempt faults under a tiny
# page pool; asserts bit-identity and zero leaked pages
python -m pytest tests/serve/test_sched_chaos.py -q
# CLI under injected transients: served N/N with retries absorbed
python -m repro serve --model gpt-xs --requests 16 --max-batch 4 --retries 3 \
    --faults "seed=7 adapter.run_batch:kind=transient,rate=0.3" > /dev/null

echo "=== [6/6] static analysis gate ==="
# every repo invariant rule (exactness, locks, lifecycle, taxonomy,
# determinism) must run clean modulo the committed, justified baseline
python -m repro analyze --baseline

echo "ci: all gates passed"
