"""Explore the BDR design space and reproduce the Figure 7 Pareto frontier.

Run:  python examples/pareto_explorer.py [--full]

--full sweeps the complete BDR grid (several hundred configurations, a few
minutes); the default sweeps a reduced grid plus every named format.
"""

import argparse

from repro.core.bdr import BDRConfig
from repro.fidelity import run_sweep
from repro.fidelity.sweep import bdr_design_space, sweep_frontier


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="sweep the full BDR grid")
    parser.add_argument("--vectors", type=int, default=1000, help="QSNR ensemble size")
    args = parser.parse_args()

    if args.full:
        configs = bdr_design_space()
    else:
        configs = bdr_design_space(
            mantissa_bits=(2, 4, 7), k1_values=(16, 32), k2_values=(1, 2, 4),
        )
    print(f"sweeping {len(configs)} BDR grid points + named formats ...")
    points = run_sweep(configs=configs, include_named=True, n_vectors=args.vectors)

    frontier = sweep_frontier(points)
    frontier_labels = {p.label for p in frontier}

    print(f"\n{'design point':34s} {'bits':>5s} {'cost':>6s} {'QSNR':>7s}  frontier")
    for p in sorted(points, key=lambda p: p.cost):
        marker = "  <-- Pareto" if p.label in frontier_labels else ""
        named = not p.label.startswith("bdr(")
        if named or marker:
            print(f"{p.label:34s} {p.bits_per_element:5.2f} {p.cost:6.3f} "
                  f"{p.qsnr_db:7.2f}{marker}")

    mx_points = {p.label: p for p in points if p.label in ("MX4", "MX6", "MX9")}
    print(f"\n{len(frontier)} frontier points out of {len(points)} evaluated")
    print("MX family positions:",
          ", ".join(f"{n} (cost {p.cost:.2f}, {p.qsnr_db:.1f} dB)"
                    for n, p in sorted(mx_points.items())))


if __name__ == "__main__":
    main()
