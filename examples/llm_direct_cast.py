"""Direct-cast LLM inferencing and QAT recovery (Tables IV / III).

Trains a small GPT, then:

1. direct-casts it to (weight, activation) format pairs and measures
   few-shot choice accuracy (the Table IV protocol), and
2. recovers MX4 direct-cast loss with quantization-aware fine-tuning
   (MX4 forward / FP32 backward, the Section VI-B recipe).

Run:  python examples/llm_direct_cast.py
"""

import numpy as np

from repro.data import SyntheticLanguage, make_task
from repro.flow import TrainConfig, clear_quantization, direct_cast, finetune, train_with_format
from repro.models import GPT, GPTConfig, score_candidates


def accuracy(model, examples):
    hits = sum(
        score_candidates(model, ex.context, ex.candidates) == ex.answer
        for ex in examples
    )
    return 100.0 * hits / len(examples)


def main():
    lang = SyntheticLanguage(seed=0)
    model = GPT(
        lang.vocab_size,
        GPTConfig(dim=32, num_layers=2, num_heads=4),
        rng=np.random.default_rng(3),
    )
    print("pre-training in FP32 ...")
    train_with_format(
        model, lang.batches(8, 32, 300, seed=1), None, TrainConfig(steps=300, lr=3e-3)
    )
    examples = make_task("recall", lang, 40, seed=11)

    print("\n(weight, activation)   recall accuracy")
    for w, a in ((None, None), ("mx9", "mx9"), ("mx6", "mx6"), ("mx4", "mx4")):
        if w is None:
            clear_quantization(model)
            label = "FP32 baseline"
        else:
            direct_cast(model, w, a)
            label = f"({w.upper()}, {a.upper()})"
        print(f"{label:22s} {accuracy(model, examples):6.1f}%")
    clear_quantization(model)

    # --- QAT recovery at MX4 -------------------------------------------
    direct_cast(model, "mx4")
    before_loss = model.eval_loss(lang.batches(16, 32, 4, seed=99))
    print(f"\nMX4 direct-cast eval loss: {before_loss:.4f}")
    finetune(model, lang.batches(8, 32, 80, seed=5), "mx4", steps=80, lr=3e-4)
    after_loss = model.eval_loss(lang.batches(16, 32, 4, seed=99))
    print(f"after {80} steps of QAT (MX4 fwd / FP32 bwd): {after_loss:.4f}")


if __name__ == "__main__":
    main()
