"""Train a GPT with the Figure 8 MX compute flow: FP32 vs MX9 vs MX6.

The headline claim of the paper: MX9 is a drop-in replacement for FP32
training — same recipe, same hyper-parameters, same loss curve.

Run:  python examples/mx_training.py
"""

import numpy as np

from repro.data import SyntheticLanguage
from repro.flow import TrainConfig, train_with_format
from repro.formats import get_format
from repro.hardware import hardware_cost
from repro.models import GPT, GPTConfig


def main():
    lang = SyntheticLanguage(seed=0)
    config = GPTConfig(dim=24, num_layers=2, num_heads=2)
    train_config = TrainConfig(steps=120, lr=3e-3)

    losses = {}
    for fmt in (None, "mx9", "mx6"):
        # identical initialization and data order for every format
        model = GPT(lang.vocab_size, config, rng=np.random.default_rng(7))
        batches = lang.batches(8, 24, train_config.steps, seed=1)
        result = train_with_format(model, batches, fmt, train_config)
        eval_loss = model.eval_loss(lang.batches(16, 24, 4, seed=999))
        losses[fmt or "fp32"] = (result, eval_loss)

    print("format  first-loss  final-train-loss  eval-loss  rel.iteration-cost")
    mx9_cost = hardware_cost(get_format("mx9")).area_memory_product
    for fmt, (result, eval_loss) in losses.items():
        cost = (
            1.0
            if fmt == "fp32"
            else hardware_cost(get_format(fmt)).area_memory_product / mx9_cost
        )
        print(f"{fmt:6s}  {result.losses[0]:10.4f}  {result.final_loss:16.4f}  "
              f"{eval_loss:9.4f}  {cost:8.2f}x")

    gap = abs(losses["mx9"][1] - losses["fp32"][1])
    print(f"\nMX9 vs FP32 eval-loss gap: {gap:.4f} "
          "(the paper reports identical losses — Table VII)")


if __name__ == "__main__":
    main()
