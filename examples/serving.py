"""Quantize-once serving: compile -> session -> streaming (Section V).

Trains a small GPT, freezes it into MX6 with ``repro.compile``, then

1. serves likelihood-ranked choice requests through a micro-batched
   :class:`~repro.serve.InferenceSession` and prints the latency /
   throughput / occupancy summary,
2. compares the batched throughput against the naive per-request path,
3. streams a greedy continuation token by token.

Run:  python examples/serving.py
"""

import time

import numpy as np

import repro
from repro.data import SyntheticLanguage, make_task
from repro.flow import TrainConfig, direct_cast, train_with_format
from repro.models import GPT, GPTConfig, score_candidates


def main():
    lang = SyntheticLanguage(seed=0)
    model = GPT(
        lang.vocab_size,
        GPTConfig(dim=24, num_layers=2, num_heads=2),
        rng=np.random.default_rng(0),
    )
    print("training a small GPT (FP32)...")
    train_with_format(
        model, lang.batches(8, 24, 200, seed=1), None, TrainConfig(steps=200, lr=3e-3)
    )

    examples = make_task("recall", lang, n_examples=48, seed=2)
    requests = [
        {"task": "score", "context": ex.context, "candidates": ex.candidates}
        for ex in examples
    ]

    # -- naive per-request deployment ----------------------------------
    direct_cast(model, "mx6")
    start = time.perf_counter()
    naive = [score_candidates(model, ex.context, ex.candidates) for ex in examples]
    naive_rps = len(examples) / (time.perf_counter() - start)

    # -- quantize-once + micro-batched session -------------------------
    compiled = repro.compile(model, "mx6")
    with compiled.session(max_batch=16, max_wait=0.02) as session:
        start = time.perf_counter()
        results = session.map(requests)
        batched_rps = len(requests) / (time.perf_counter() - start)
        summary = session.summary()

    assert [r["choice"] for r in results] == naive  # same answers, batched
    accuracy = 100.0 * sum(
        r["choice"] == ex.answer for r, ex in zip(results, examples)
    ) / len(examples)
    latency = summary["latency_ms"]
    print(f"accuracy        : {accuracy:.1f}%")
    print(f"naive           : {naive_rps:8.1f} req/s")
    print(f"batched session : {batched_rps:8.1f} req/s  ({batched_rps / naive_rps:.1f}x)")
    print(f"latency p50/p99 : {latency['p50']:.2f} / {latency['p99']:.2f} ms")
    print(f"batch occupancy : {summary['batch']['occupancy']:.2f}")

    # -- streaming generation ------------------------------------------
    prompt = examples[0].context[:6]
    print(f"streaming from prompt {prompt.tolist()}: ", end="", flush=True)
    for token in compiled.stream(prompt, max_new_tokens=8):
        print(token, end=" ", flush=True)
    print()

    # -- incremental decoding: KV caches vs full recompute -------------
    from repro.serve.bench import measure_decode_speedup

    decode = measure_decode_speedup(
        model, fmt=None, batch=4, prompt_len=48, max_new_tokens=16, repeats=1
    )
    print(
        f"decode          : {decode['cached_tokens_per_sec']:8.1f} tok/s cached vs "
        f"{decode['full_tokens_per_sec']:8.1f} full "
        f"({decode['speedup']:.1f}x, bit-identical tokens)"
    )


if __name__ == "__main__":
    main()
