"""Quickstart: quantize tensors with MX and friends, measure fidelity and cost.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro import MX9, get_format, qsnr_lower_bound
from repro.fidelity import measure_qsnr, qsnr
from repro.hardware import hardware_cost

def main():
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. Quantize a tensor to MX9 along its reduction dimension.  Any
    #    spec spelling works: "mx9", "bdr(m=7,k1=16,d1=8,k2=2,d2=1,
    #    ss=pow2)", "mx9?rounding=stochastic", ...
    # ------------------------------------------------------------------
    activations = rng.normal(size=(4, 256))
    quantized = repro.quantize(activations, "mx9", axis=-1)
    print("MX9 round-trip QSNR on one tensor: "
          f"{qsnr(activations, quantized):.1f} dB "
          f"(Theorem 1 guarantees >= {qsnr_lower_bound(MX9):.1f} dB)")

    # ------------------------------------------------------------------
    # 2. Compare formats with the paper's statistical methodology.
    # ------------------------------------------------------------------
    print("\nformat          bits  QSNR(dB)  norm.area  memory  cost")
    for name in ("mx9", "mx6", "mx4", "fp8_e4m3", "fp8_e5m2", "msfp16", "int8"):
        fmt = get_format(name)
        q = measure_qsnr(fmt, n_vectors=2000)
        hc = hardware_cost(fmt)
        print(f"{fmt.name:14s}  {fmt.bits_per_element:4.1f}  {q:8.2f}  "
              f"{hc.normalized_area:9.2f}  {hc.memory:6.2f}  {hc.area_memory_product:5.2f}")

    # ------------------------------------------------------------------
    # 3. The directionality rule: MX quantizes along the reduction dim.
    # ------------------------------------------------------------------
    weights = rng.normal(size=(256, 64))
    forward_copy = get_format("mx9").quantize(weights, axis=0)       # blocks along K
    backward_copy = get_format("mx9").quantize(weights.T, axis=0)    # transpose FIRST
    agree = np.allclose(forward_copy.T, backward_copy)
    print(f"\nquantize-then-transpose == transpose-then-quantize? {agree} "
          "(Section V: they differ — keep two quantized weight copies)")


if __name__ == "__main__":
    main()
