"""Inspect the Figure 6 dot-product pipeline cost model.

Prints the per-stage area account for several formats, showing where each
design spends its silicon — the paper's "a little shifting goes a long way"
argument made concrete: scalar FP pays for per-element alignment shifters,
MX replaces them with 1-2-bit conditional shifts plus per-block alignment.

Run:  python examples/hardware_costing.py
"""

from repro.formats import get_format
from repro.hardware import (
    fp8_baseline_area,
    hardware_cost,
    lines_needed,
    pipeline_area,
    storage_spec,
)


def main():
    print(f"FP8 (E4M3+E5M2) baseline unit: {fp8_baseline_area():,.0f} GE\n")

    for name in ("fp8_e4m3", "mx9", "mx6", "mx4"):
        fmt = get_format(name)
        breakdown = pipeline_area(fmt)
        print(breakdown.summary())
        hc = hardware_cost(fmt)
        spec = storage_spec(fmt)
        print(
            f"  -> normalized area {hc.normalized_area:.2f}, "
            f"{lines_needed(spec)} interface lines / 256-elem tile, "
            f"area-memory product {hc.area_memory_product:.2f}\n"
        )


if __name__ == "__main__":
    main()
