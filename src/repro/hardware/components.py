"""Standard-cell area primitives for the dot-product cost model.

The paper synthesizes each configuration with Synopsys Design Compiler at a
relaxed 10 ns constraint so that "synthesis implementation selection targets
the minimum area in all designs" (Section IV-B).  Without EDA tooling we
model minimum-area implementations analytically in NAND2 gate equivalents
(GE): ripple-carry adders, array multipliers, mux-based barrel shifters.
Absolute GE values are rough; every result in the library uses *ratios* of
these areas (normalized to the FP8 baseline), mirroring the paper.
"""

from __future__ import annotations

import math

__all__ = [
    "GE",
    "adder",
    "subtractor",
    "incrementer",
    "comparator",
    "max_unit",
    "max_tree",
    "adder_tree",
    "multiplier",
    "barrel_shifter",
    "leading_zero_counter",
    "twos_complement",
    "xor_gates",
    "registers",
    "fp32_accumulator",
]


class GE:
    """NAND2-equivalent areas of basic cells (typical standard-cell ratios)."""

    NAND2 = 1.0
    INV = 0.6
    AND2 = 1.3
    XOR2 = 2.5
    MUX2 = 2.3
    HALF_ADDER = 3.0
    FULL_ADDER = 6.0
    DFF = 5.5


def adder(bits: int) -> float:
    """Ripple-carry adder (the minimum-area choice at relaxed timing)."""
    return max(bits, 0) * GE.FULL_ADDER


def subtractor(bits: int) -> float:
    """Adder plus operand inversion."""
    return max(bits, 0) * (GE.FULL_ADDER + GE.INV)


def incrementer(bits: int) -> float:
    return max(bits, 0) * GE.HALF_ADDER


def comparator(bits: int) -> float:
    """Magnitude comparator (borrow chain, no sum outputs)."""
    return max(bits, 0) * 2.0


def max_unit(bits: int) -> float:
    """Two-input max: comparator + mux per bit."""
    return comparator(bits) + max(bits, 0) * GE.MUX2


def max_tree(count: int, bits: int) -> float:
    """Max-reduce ``count`` values of ``bits`` bits."""
    if count <= 1:
        return 0.0
    return (count - 1) * max_unit(bits)


def adder_tree(count: int, bits_in: int) -> float:
    """Binary adder tree summing ``count`` operands of ``bits_in`` bits.

    Widths grow by one bit per level, matching the carry growth of an exact
    fixed-point reduction.
    """
    if count <= 1:
        return 0.0
    total = 0.0
    width = bits_in
    remaining = count
    while remaining > 1:
        pairs = remaining // 2
        total += pairs * adder(width + 1)
        remaining = remaining - pairs
        width += 1
    return total


def multiplier(bits_a: int, bits_b: int) -> float:
    """Unsigned array multiplier: AND partial products + carry-save reduction.

    Degenerates gracefully: a 1x1 multiplier is a single AND gate, and a
    zero-width operand (e.g. an E3M0 mantissa with the implicit bit only)
    costs nothing beyond the AND plane.
    """
    a, b = max(bits_a, 0), max(bits_b, 0)
    if a == 0 or b == 0:
        return 0.0
    partial_products = a * b * GE.AND2
    reduction_cells = max(a * b - a - b + 1, 0) * GE.FULL_ADDER
    final_add = adder(a + b)
    if a == 1 and b == 1:
        return GE.AND2
    return partial_products + reduction_cells + final_add


def barrel_shifter(width: int, max_shift: int) -> float:
    """Mux-stage barrel shifter over ``width`` bits, up to ``max_shift``."""
    if width <= 0 or max_shift <= 0:
        return 0.0
    stages = math.ceil(math.log2(max_shift + 1))
    return width * stages * GE.MUX2


def leading_zero_counter(bits: int) -> float:
    """Priority-encoder LZC."""
    return max(bits, 0) * 1.5


def twos_complement(bits: int) -> float:
    """Conditional negation: XOR plane + increment."""
    return max(bits, 0) * (GE.XOR2 + GE.HALF_ADDER)


def xor_gates(count: int) -> float:
    return max(count, 0) * GE.XOR2


def registers(bits: int) -> float:
    return max(bits, 0) * GE.DFF


def fp32_accumulator() -> float:
    """Serial FP32 accumulate stage: align, add, renormalize, round.

    Composed from the primitives over a 24-bit significand datapath with a
    48-bit alignment window, as in a fused accumulate unit.
    """
    align = barrel_shifter(48, 48)
    add = adder(48)
    lzc = leading_zero_counter(48)
    normalize = barrel_shifter(48, 48)
    exponent_logic = adder(8) + subtractor(8) + comparator(8)
    rounding = incrementer(24)
    return align + add + lzc + normalize + exponent_logic + rounding
