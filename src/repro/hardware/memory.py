"""Memory footprint model: packing tiles into a fixed-width interface.

Per Section IV-B: "for the memory footprint analysis, we consider the
packing efficiency of a typical tile size of 256 elements ... into a 64B
memory interface."  DRAM/HBM interfaces are fixed-width; payloads that do
not fill a line waste capacity *and* bandwidth.

Scale-factor storage rules:

* scales whose block granularity is at least the tile size (software
  per-tensor scales, ``k1 ~ 1K-10K``) travel out-of-band with the tensor
  descriptor and do not occupy tile lines;
* fine-grained scales and sub-scales (``k1 ~ 10``, ``k2 ~ 1``) are part of
  the tile payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "StorageSpec",
    "TILE_ELEMENTS",
    "INTERFACE_BITS",
    "tile_bits",
    "lines_needed",
    "packing_efficiency",
    "memory_cost",
]

#: Typical hardware tile, per the paper.
TILE_ELEMENTS = 256
#: 64-byte memory interface.
INTERFACE_BITS = 512


@dataclass(frozen=True)
class StorageSpec:
    """Storage shape of a format, sufficient for packing analysis.

    Attributes:
        element_bits: bits per element payload (sign + mantissa, or the
            full scalar-float encoding).
        scale_bits: bits per level-1 scale factor.
        scale_block: elements sharing one level-1 scale (``k1``).
        subscale_bits: bits per level-2 sub-scale (0 if none).
        subscale_block: elements sharing one sub-scale (``k2``).
    """

    element_bits: int
    scale_bits: int = 0
    scale_block: int = 1
    subscale_bits: int = 0
    subscale_block: int = 1


def tile_bits(spec: StorageSpec, tile: int = TILE_ELEMENTS) -> int:
    """Total payload bits of one tile, applying the out-of-band scale rule."""
    bits = tile * spec.element_bits
    if spec.scale_bits and spec.scale_block < tile:
        bits += math.ceil(tile / spec.scale_block) * spec.scale_bits
    if spec.subscale_bits and spec.subscale_block < tile:
        bits += math.ceil(tile / spec.subscale_block) * spec.subscale_bits
    return bits


def lines_needed(
    spec: StorageSpec, tile: int = TILE_ELEMENTS, interface_bits: int = INTERFACE_BITS
) -> int:
    """Interface lines required to move one tile."""
    return math.ceil(tile_bits(spec, tile) / interface_bits)


def packing_efficiency(
    spec: StorageSpec, tile: int = TILE_ELEMENTS, interface_bits: int = INTERFACE_BITS
) -> float:
    """Fraction of the fetched lines occupied by payload, in (0, 1]."""
    bits = tile_bits(spec, tile)
    return bits / (lines_needed(spec, tile, interface_bits) * interface_bits)


def memory_cost(
    spec: StorageSpec,
    baseline: StorageSpec | None = None,
    tile: int = TILE_ELEMENTS,
    interface_bits: int = INTERFACE_BITS,
) -> float:
    """Lines per tile relative to the FP8 baseline (lower is better).

    The paper's "memory efficiency" axis is the inverse of packing
    efficiency; normalizing line counts to the 8-bit baseline yields the
    same ordering with a dimensionless scale.
    """
    if baseline is None:
        baseline = StorageSpec(element_bits=8)
    return lines_needed(spec, tile, interface_bits) / lines_needed(
        baseline, tile, interface_bits
    )
