"""Area model of the Figure 6 dot-product pipeline.

One parameterized pipeline implements every BDR variant:

* ``k1 = k2 = 1`` — a standard scalar floating-point dot product (elements
  normalized to the running max and reduced in fixed point, the paper's
  optimistic approximation for scalar FP).
* ``d2 = 0`` — conventional block floating-point (MSFP).
* ``k1 > 1, d2 > 0`` — MX: the pipeline performs a conditional right shift
  of up to ``2^d2 - 1`` bits at depth ``log2(k2)`` while summing.

VSQ requires a *separate* pipeline with integer rescaling (the paper notes
this too); see :mod:`repro.hardware.vsq_pipeline`.

``r`` is the dot-product reduction length and ``f`` the fixed-point
reduction precision, chosen as ``min(25, dynamic range)`` per the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from . import components as c

__all__ = [
    "AreaBreakdown",
    "mx_pipeline_area",
    "scalar_float_pipeline_area",
    "int_pipeline_area",
    "fp8_baseline_area",
    "fixed_point_bits",
    "DEFAULT_R",
]

#: Default reduction length: the paper normalizes to a 64-element FP8 unit.
DEFAULT_R = 64

#: Cap on the fixed-point reduction precision (Figure 6 caption).
F_CAP = 25


@dataclass
class AreaBreakdown:
    """Per-stage area account of one pipeline instance, in gate equivalents."""

    label: str
    stages: dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, area: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + area

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def summary(self) -> str:
        lines = [f"{self.label}: {self.total:,.0f} GE"]
        for stage, area in sorted(self.stages.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {stage:<28s} {area:>12,.0f}  ({100 * area / self.total:5.1f}%)")
        return "\n".join(lines)


def fixed_point_bits(m: int, d2: int, k1: int) -> int:
    """Reduction precision ``f``: min(25, format dynamic range).

    A block format's partial products span ``2m`` product bits, up to
    ``2 * (2^d2 - 1)`` bits of microexponent shift, and ``log2 k1`` bits of
    carry growth, plus sign and rounding guard.
    """
    beta = (1 << d2) - 1
    dyn = 2 * m + 2 * beta + math.ceil(math.log2(max(k1, 1))) + 3
    return min(F_CAP, max(dyn, 4))


def mx_pipeline_area(
    m: int,
    d1: int = 8,
    d2: int = 1,
    k1: int = 16,
    k2: int = 2,
    r: int = DEFAULT_R,
) -> AreaBreakdown:
    """Area of the Figure 6 pipeline for an MX/BFP configuration.

    Args:
        m: explicit mantissa bits (no implicit bit for block formats).
        d1: shared exponent width.
        d2: microexponent width (0 for plain BFP).
        k1, k2: block and sub-block granularities.
        r: dot-product reduction length (must be a multiple of ``k1``).
    """
    if r % k1 != 0:
        raise ValueError(f"r ({r}) must be a multiple of k1 ({k1})")
    beta = (1 << d2) - 1
    blocks = r // k1
    f = fixed_point_bits(m, d2, k1)
    product_bits = 2 * m  # m x m magnitude product
    bd = AreaBreakdown(f"mx(m={m},d1={d1},d2={d2},k1={k1},k2={k2},r={r})")

    # --- element lane: signs, mantissa products, microexponent handling ---
    bd.add("sign xor", c.xor_gates(r))
    bd.add("mantissa multipliers", r * c.multiplier(m, m))
    if d2 > 0:
        # combine the two operands' sub-scales: r/k2 adders of d2 bits
        bd.add("sub-scale add", (r // k2) * c.adder(d2))
        # conditional right shift of each product by up to 2*beta bits
        bd.add(
            "microexponent shift",
            r * c.barrel_shifter(product_bits + 1 + 2 * beta, 2 * beta),
        )
    bd.add("tc convert", r * c.twos_complement(product_bits + 1))

    # --- intra-block reduction: k1 products -> 1 partial sum per block ---
    bd.add(
        "intra-block adder tree",
        blocks * c.adder_tree(k1, product_bits + 1 + 2 * beta),
    )

    # --- inter-block alignment and fixed-point reduction ---
    bd.add("exponent add", blocks * c.adder(d1))
    bd.add("exponent max tree", c.max_tree(blocks, d1 + 1))
    bd.add("exponent subtract", blocks * c.subtractor(d1 + 1))
    bd.add("normalize shift", blocks * c.barrel_shifter(f, f))
    bd.add("fixed-point reduction", c.adder_tree(blocks, f))

    # --- output stage ---
    out_bits = f + math.ceil(math.log2(max(blocks, 2)))
    bd.add("lzc + fp32 convert", c.leading_zero_counter(out_bits) + c.barrel_shifter(out_bits, out_bits))
    bd.add("fp32 accumulate", c.fp32_accumulator())

    # --- I/O registers (the paper registers only inputs and outputs) ---
    in_bits = 2 * r * (1 + m) + 2 * blocks * d1
    if d2 > 0:
        in_bits += 2 * (r // k2) * d2
    bd.add("i/o registers", c.registers(in_bits + 32))
    return bd


def scalar_float_pipeline_area(e: int, m: int, r: int = DEFAULT_R) -> AreaBreakdown:
    """Scalar floating-point dot product (the ``k1 = k2 = 1`` degenerate case).

    Mantissa multipliers include the implicit leading one (``m + 1`` wide);
    every element carries a private exponent, so alignment happens per
    element at full fixed-point width — the cost MX amortizes per block.
    """
    f = F_CAP  # scalar exponent ranges exceed the cap for every format here
    product_bits = 2 * (m + 1)
    bd = AreaBreakdown(f"scalar_fp(e={e},m={m},r={r})")

    bd.add("sign xor", c.xor_gates(r))
    bd.add("mantissa multipliers", r * c.multiplier(m + 1, m + 1))
    bd.add("exponent add", r * c.adder(e))
    bd.add("tc convert", r * c.twos_complement(product_bits + 1))
    bd.add("exponent max tree", c.max_tree(r, e + 1))
    bd.add("exponent subtract", r * c.subtractor(e + 1))
    bd.add("normalize shift", r * c.barrel_shifter(f, f))
    bd.add("fixed-point reduction", c.adder_tree(r, f))

    out_bits = f + math.ceil(math.log2(r))
    bd.add("lzc + fp32 convert", c.leading_zero_counter(out_bits) + c.barrel_shifter(out_bits, out_bits))
    bd.add("fp32 accumulate", c.fp32_accumulator())
    bd.add("i/o registers", c.registers(2 * r * (1 + e + m) + 32))
    return bd


def int_pipeline_area(m: int, r: int = DEFAULT_R) -> AreaBreakdown:
    """Software-scaled integer dot product: multiply, sum, one FP32 rescale."""
    product_bits = 2 * m
    bd = AreaBreakdown(f"int(m={m},r={r})")
    bd.add("sign xor", c.xor_gates(r))
    bd.add("mantissa multipliers", r * c.multiplier(m, m))
    bd.add("tc convert", r * c.twos_complement(product_bits + 1))
    bd.add("fixed-point reduction", c.adder_tree(r, product_bits + 1))
    out_bits = product_bits + 1 + math.ceil(math.log2(r))
    bd.add("fp32 rescale", c.multiplier(24, 24) / 4 + c.adder(8))
    bd.add("lzc + fp32 convert", c.leading_zero_counter(out_bits) + c.barrel_shifter(out_bits, out_bits))
    bd.add("fp32 accumulate", c.fp32_accumulator())
    bd.add("i/o registers", c.registers(2 * r * (1 + m) + 32))
    return bd


def fp8_baseline_area(r: int = DEFAULT_R, sharing_overhead: float = 0.10) -> float:
    """The normalization baseline: a dual-format FP8 unit (E4M3 + E5M2).

    Modeled as a merged datapath sized for the wider of each field (5-bit
    exponent path, 3-bit mantissa path) plus a configurability overhead for
    the format muxing, as commercial multi-format units share sub-circuits.
    """
    merged = scalar_float_pipeline_area(e=5, m=3, r=r)
    return merged.total * (1.0 + sharing_overhead)
