"""Area model of the separate VSQ pipeline.

The paper: "We use a separate pipeline (not shown here due to space
limitations) for settings that require a second-level INT-based scaling
(e.g., VSQ)" — and earlier, "This approach requires additional logic to
handle integer rescaling at a fine granularity within an AI accelerator's
dot product unit."

The extra logic relative to a plain integer unit: per-sub-block products of
the two operands' integer sub-scales, and a fine-grained integer rescale of
every sub-block partial sum before the global reduction.
"""

from __future__ import annotations

import math

from . import components as c
from .dot_product import DEFAULT_R, F_CAP, AreaBreakdown

__all__ = ["vsq_pipeline_area"]


def vsq_pipeline_area(m: int, d2: int, k2: int = 16, r: int = DEFAULT_R) -> AreaBreakdown:
    """Area of a VSQ dot product: INT elements with INT sub-scale rescaling.

    Args:
        m: element magnitude bits (INT4 -> m = 3, etc.).
        d2: unsigned sub-scale width.
        k2: sub-block (per-vector) granularity, 16 in [23].
        r: reduction length (multiple of ``k2``).
    """
    if r % k2 != 0:
        raise ValueError(f"r ({r}) must be a multiple of k2 ({k2})")
    subblocks = r // k2
    product_bits = 2 * m
    sub_sum_bits = product_bits + 1 + math.ceil(math.log2(k2))
    rescaled_bits = sub_sum_bits + 2 * d2
    f = min(F_CAP, rescaled_bits + math.ceil(math.log2(max(subblocks, 2))))
    bd = AreaBreakdown(f"vsq(m={m},d2={d2},k2={k2},r={r})")

    bd.add("sign xor", c.xor_gates(r))
    bd.add("mantissa multipliers", r * c.multiplier(m, m))
    bd.add("tc convert", r * c.twos_complement(product_bits + 1))
    # per-sub-block partial sums of k2 element products
    bd.add("sub-block adder tree", subblocks * c.adder_tree(k2, product_bits + 1))
    # integer rescale: combine the two operands' sub-scales, then multiply
    # the partial sum by the combined (2*d2-bit) sub-scale
    bd.add("sub-scale multipliers", subblocks * c.multiplier(d2, d2))
    bd.add("partial-sum rescale", subblocks * c.multiplier(sub_sum_bits, 2 * d2))
    # global fixed-point reduction of the rescaled partial sums
    bd.add("fixed-point reduction", c.adder_tree(subblocks, min(rescaled_bits, f)))

    out_bits = f
    bd.add("fp32 rescale", c.multiplier(24, 24) / 4 + c.adder(8))
    bd.add("lzc + fp32 convert", c.leading_zero_counter(out_bits) + c.barrel_shifter(out_bits, out_bits))
    bd.add("fp32 accumulate", c.fp32_accumulator())

    in_bits = 2 * r * (1 + m) + 2 * subblocks * d2
    bd.add("i/o registers", c.registers(in_bits + 32))
    return bd
