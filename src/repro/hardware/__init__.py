"""Hardware cost models: the Figure 6 dot-product pipeline (analytical
standard-cell area), the VSQ rescaling pipeline, and memory tile packing."""

from .components import GE
from .cost import HardwareCost, hardware_cost, pipeline_area, storage_spec
from .dot_product import (
    DEFAULT_R,
    AreaBreakdown,
    fixed_point_bits,
    fp8_baseline_area,
    int_pipeline_area,
    mx_pipeline_area,
    scalar_float_pipeline_area,
)
from .power import PowerEstimate, pipeline_power, power_cost
from .memory import (
    INTERFACE_BITS,
    TILE_ELEMENTS,
    StorageSpec,
    lines_needed,
    memory_cost,
    packing_efficiency,
    tile_bits,
)
from .vsq_pipeline import vsq_pipeline_area

__all__ = [
    "GE",
    "HardwareCost",
    "hardware_cost",
    "pipeline_area",
    "storage_spec",
    "DEFAULT_R",
    "AreaBreakdown",
    "fixed_point_bits",
    "fp8_baseline_area",
    "int_pipeline_area",
    "mx_pipeline_area",
    "scalar_float_pipeline_area",
    "INTERFACE_BITS",
    "TILE_ELEMENTS",
    "StorageSpec",
    "lines_needed",
    "memory_cost",
    "packing_efficiency",
    "tile_bits",
    "vsq_pipeline_area",
    "PowerEstimate",
    "pipeline_power",
    "power_cost",
]
