"""Power model companion to the area model.

Section I/IV: the paper's methodology "enables the computation of
synthesized power and area for different quantization configurations".
Without EDA power reports we estimate relative dynamic and leakage power
from the same component inventory the area model uses:

* **dynamic** power scales with switched capacitance — proportional to the
  area of a stage times its switching activity (multipliers and adders
  toggle heavily; registers toggle once per cycle; max/compare trees are
  data-gated and toggle less);
* **leakage** power scales with total gate area.

Like the area numbers, only *ratios* (normalized to the FP8 baseline) are
meaningful, which is how the paper uses them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dot_product import DEFAULT_R, AreaBreakdown, fp8_baseline_area, scalar_float_pipeline_area

__all__ = ["PowerEstimate", "pipeline_power", "power_cost"]

#: Switching-activity factors per pipeline stage family (relative units).
#: Datapath arithmetic toggles on most cycles; comparison/max logic is
#: value-gated; registers are clocked (activity ~ clock toggle + data).
ACTIVITY = {
    "mantissa multipliers": 0.50,
    "intra-block adder tree": 0.45,
    "fixed-point reduction": 0.45,
    "sub-block adder tree": 0.45,
    "microexponent shift": 0.35,
    "normalize shift": 0.35,
    "tc convert": 0.30,
    "sub-scale add": 0.30,
    "sub-scale multipliers": 0.40,
    "partial-sum rescale": 0.40,
    "exponent add": 0.30,
    "exponent subtract": 0.30,
    "exponent max tree": 0.20,
    "lzc + fp32 convert": 0.25,
    "fp32 accumulate": 0.40,
    "fp32 rescale": 0.35,
    "sign xor": 0.50,
    "i/o registers": 0.60,
}

#: Default activity for stages not listed above.
DEFAULT_ACTIVITY = 0.35

#: Leakage power per gate-equivalent, relative to dynamic units.
LEAKAGE_PER_GE = 0.08


@dataclass(frozen=True)
class PowerEstimate:
    """Relative power of one pipeline instance."""

    label: str
    dynamic: float
    leakage: float

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage


def pipeline_power(breakdown: AreaBreakdown) -> PowerEstimate:
    """Estimate relative power from a pipeline's area breakdown."""
    dynamic = sum(
        area * ACTIVITY.get(stage, DEFAULT_ACTIVITY)
        for stage, area in breakdown.stages.items()
    )
    leakage = breakdown.total * LEAKAGE_PER_GE
    return PowerEstimate(breakdown.label, dynamic, leakage)


def _fp8_baseline_power(r: int = DEFAULT_R) -> float:
    """Dual-format FP8 baseline power (same construction as the area one)."""
    merged = scalar_float_pipeline_area(e=5, m=3, r=r)
    sharing = fp8_baseline_area(r=r) / merged.total
    return pipeline_power(merged).total * sharing


def power_cost(fmt, r: int = DEFAULT_R) -> float:
    """Normalized power of a format's dot-product unit (FP8 baseline = 1)."""
    from .cost import pipeline_area  # local import avoids a cycle

    breakdown = pipeline_area(fmt, r=r)
    return pipeline_power(breakdown).total / _fp8_baseline_power(r=r)
