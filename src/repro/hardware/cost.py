"""The Figure 7 x-axis: normalized area x memory-efficiency product.

`hardware_cost` accepts any of the library's format descriptions — a
:class:`~repro.formats.base.Format` instance, a
:class:`~repro.core.bdr.BDRConfig`, or a
:class:`~repro.formats.scalar_float.FloatSpec` — dispatches to the right
pipeline model, computes the memory packing cost, and combines the two with
equal weight (their product), normalized to the dual-format FP8 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bdr import BDRConfig
from ..formats.base import Format, IdentityFormat
from ..formats.bdr_format import BDRFormat
from ..formats.scalar_float import FloatSpec, ScalarFloatFormat
from .dot_product import (
    DEFAULT_R,
    AreaBreakdown,
    fp8_baseline_area,
    int_pipeline_area,
    mx_pipeline_area,
    scalar_float_pipeline_area,
)
from .memory import StorageSpec, memory_cost, packing_efficiency
from .vsq_pipeline import vsq_pipeline_area

__all__ = ["HardwareCost", "hardware_cost", "pipeline_area", "storage_spec"]


@dataclass(frozen=True)
class HardwareCost:
    """Cost summary of one design point (all values normalized to FP8)."""

    label: str
    area_ge: float
    normalized_area: float
    memory: float
    packing_efficiency: float

    @property
    def area_memory_product(self) -> float:
        """The Figure 7 x-axis (equal weight to area and memory)."""
        return self.normalized_area * self.memory


def storage_spec(fmt) -> StorageSpec:
    """Derive the packing shape of any supported format description."""
    fmt = getattr(fmt, "inner", fmt)  # delegating wrappers (PinnedRounding)
    if isinstance(fmt, IdentityFormat):
        return StorageSpec(element_bits=32)
    if isinstance(fmt, ScalarFloatFormat):
        return StorageSpec(
            element_bits=fmt.spec.total_bits, scale_bits=32, scale_block=fmt.k1
        )
    if isinstance(fmt, FloatSpec):
        return StorageSpec(element_bits=fmt.total_bits, scale_bits=32, scale_block=10240)
    config = fmt.config if isinstance(fmt, BDRFormat) else fmt
    if not isinstance(config, BDRConfig):
        raise TypeError(f"cannot derive a storage spec from {fmt!r}")
    return StorageSpec(
        element_bits=config.m + 1,
        scale_bits=config.d1,
        scale_block=config.k1,
        subscale_bits=config.d2 if config.ss_type != "none" else 0,
        subscale_block=config.k2,
    )


def pipeline_area(fmt, r: int = DEFAULT_R) -> AreaBreakdown:
    """Dispatch to the right pipeline area model."""
    fmt = getattr(fmt, "inner", fmt)  # delegating wrappers (PinnedRounding)
    if isinstance(fmt, IdentityFormat):
        return scalar_float_pipeline_area(e=8, m=23, r=r)
    if isinstance(fmt, ScalarFloatFormat):
        fmt = fmt.spec
    if isinstance(fmt, FloatSpec):
        return scalar_float_pipeline_area(e=fmt.exponent_bits, m=fmt.mantissa_bits, r=r)
    config = fmt.config if isinstance(fmt, BDRFormat) else fmt
    if not isinstance(config, BDRConfig):
        raise TypeError(f"cannot derive a pipeline from {fmt!r}")
    if config.s_type == "pow2":
        return mx_pipeline_area(
            m=config.m, d1=config.d1, d2=config.d2, k1=config.k1, k2=config.k2, r=r
        )
    if config.ss_type == "int":
        return vsq_pipeline_area(m=config.m, d2=config.d2, k2=config.k2, r=r)
    return int_pipeline_area(m=config.m, r=r)


def hardware_cost(fmt, r: int = DEFAULT_R) -> HardwareCost:
    """Full cost analysis of one format, normalized to the FP8 baseline."""
    breakdown = pipeline_area(fmt, r=r)
    spec = storage_spec(fmt)
    baseline = fp8_baseline_area(r=r)
    label = getattr(fmt, "name", None) or getattr(fmt, "label", None) or breakdown.label
    return HardwareCost(
        label=label,
        area_ge=breakdown.total,
        normalized_area=breakdown.total / baseline,
        memory=memory_cost(spec),
        packing_efficiency=packing_efficiency(spec),
    )
