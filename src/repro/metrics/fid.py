"""Generative-model metrics for the diffusion rows of Table III.

The paper reports FID and Inception Score over generated ImageNet-64
samples.  Our stand-in computes the same two statistics over feature
vectors — the Frechet distance between Gaussian fits, and the
classifier-based score — noting the paper's own caveat that "FID is known
to have a high variance" while IS "has less variance".
"""

from __future__ import annotations

import numpy as np

__all__ = ["frechet_distance", "inception_score"]


def _sqrtm_psd(matrix: np.ndarray) -> np.ndarray:
    """Matrix square root of a symmetric PSD matrix via eigendecomposition."""
    sym = (matrix + matrix.T) / 2.0
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return eigenvectors @ np.diag(np.sqrt(eigenvalues)) @ eigenvectors.T


def frechet_distance(real: np.ndarray, generated: np.ndarray) -> float:
    """Frechet (2-Wasserstein between Gaussian fits) distance — the FID
    formula applied to (n, d) feature matrices.

        ||mu_r - mu_g||^2 + Tr(S_r + S_g - 2 (S_r S_g)^{1/2})
    """
    real = np.atleast_2d(np.asarray(real, dtype=np.float64))
    generated = np.atleast_2d(np.asarray(generated, dtype=np.float64))
    if real.shape[1] != generated.shape[1]:
        raise ValueError("feature dimensionality mismatch")
    mu_r, mu_g = real.mean(axis=0), generated.mean(axis=0)
    cov_r = np.cov(real, rowvar=False)
    cov_g = np.cov(generated, rowvar=False)
    cov_r = np.atleast_2d(cov_r)
    cov_g = np.atleast_2d(cov_g)
    diff = float(np.sum((mu_r - mu_g) ** 2))
    sqrt_rg = _sqrtm_psd(_sqrtm_psd(cov_r) @ cov_g @ _sqrtm_psd(cov_r))
    trace = float(np.trace(cov_r + cov_g - 2.0 * sqrt_rg))
    return diff + max(trace, 0.0)


def inception_score(class_probabilities: np.ndarray) -> float:
    """exp(E_x[ KL(p(y|x) || p(y)) ]) from per-sample class probabilities.

    ``class_probabilities`` is (n_samples, n_classes) from a reference
    classifier (our "inception network" is a classifier trained on the same
    synthetic distribution).
    """
    p = np.clip(np.asarray(class_probabilities, dtype=np.float64), 1e-12, 1.0)
    p = p / p.sum(axis=1, keepdims=True)
    marginal = p.mean(axis=0, keepdims=True)
    kl = np.sum(p * (np.log(p) - np.log(marginal)), axis=1)
    return float(np.exp(np.mean(kl)))
