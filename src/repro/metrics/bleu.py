"""Corpus-level BLEU (Papineni et al.), used by the translation rows of
Table III."""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

__all__ = ["bleu_score"]


def _ngrams(tokens: Sequence, n: int) -> Counter:
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def bleu_score(
    references: Sequence[Sequence],
    hypotheses: Sequence[Sequence],
    max_n: int = 4,
    smooth: float = 1e-9,
) -> float:
    """Corpus BLEU in [0, 100] with brevity penalty.

    Args:
        references: one reference token sequence per sentence.
        hypotheses: one hypothesis token sequence per sentence.
        max_n: largest n-gram order (standard BLEU-4).
        smooth: additive smoothing guarding empty matches.
    """
    if len(references) != len(hypotheses):
        raise ValueError(
            f"reference/hypothesis count mismatch: {len(references)} vs {len(hypotheses)}"
        )
    if not references:
        raise ValueError("empty corpus")

    matched = [0] * max_n
    total = [0] * max_n
    ref_len = 0
    hyp_len = 0
    for ref, hyp in zip(references, hypotheses):
        ref, hyp = list(ref), list(hyp)
        ref_len += len(ref)
        hyp_len += len(hyp)
        for n in range(1, max_n + 1):
            hyp_grams = _ngrams(hyp, n)
            ref_grams = _ngrams(ref, n)
            overlap = sum(min(count, ref_grams[g]) for g, count in hyp_grams.items())
            matched[n - 1] += overlap
            total[n - 1] += max(len(hyp) - n + 1, 0)

    if hyp_len == 0:
        return 0.0
    log_precision = 0.0
    for n in range(max_n):
        precision = (matched[n] + smooth) / (total[n] + smooth) if total[n] else smooth
        log_precision += math.log(precision)
    geometric_mean = math.exp(log_precision / max_n)
    brevity = 1.0 if hyp_len > ref_len else math.exp(1.0 - ref_len / hyp_len)
    return 100.0 * brevity * geometric_mean
