"""Word error rate via Levenshtein distance, for the speech row of
Table III."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["edit_distance", "wer", "collapse_repeats"]


def edit_distance(reference: Sequence, hypothesis: Sequence) -> int:
    """Levenshtein distance (insertions + deletions + substitutions)."""
    ref, hyp = list(reference), list(hypothesis)
    if not ref:
        return len(hyp)
    if not hyp:
        return len(ref)
    previous = np.arange(len(hyp) + 1)
    for i, r in enumerate(ref, start=1):
        current = np.empty(len(hyp) + 1, dtype=np.int64)
        current[0] = i
        for j, h in enumerate(hyp, start=1):
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + (r != h),  # substitution
            )
        previous = current
    return int(previous[-1])


def collapse_repeats(sequence: Sequence) -> list:
    """CTC-style greedy collapse: merge adjacent duplicates."""
    out = []
    last = object()
    for token in sequence:
        if token != last:
            out.append(token)
            last = token
    return out


def wer(references: Sequence[Sequence], hypotheses: Sequence[Sequence]) -> float:
    """Corpus word error rate in percent (can exceed 100)."""
    if len(references) != len(hypotheses):
        raise ValueError("reference/hypothesis count mismatch")
    errors = sum(edit_distance(r, h) for r, h in zip(references, hypotheses))
    words = sum(len(list(r)) for r in references)
    if words == 0:
        raise ValueError("empty reference corpus")
    return 100.0 * errors / words
