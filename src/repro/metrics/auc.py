"""Ranking metrics for the recommendation rows (Table III / VI)."""

from __future__ import annotations

import numpy as np

__all__ = ["auc", "normalized_entropy"]


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) statistic.

    Handles score ties by average ranking.
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs at least one positive and one negative")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = float(ranks[labels].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def normalized_entropy(labels: np.ndarray, probabilities: np.ndarray) -> float:
    """Normalized [cross] entropy: log loss over the base-rate log loss.

    The production recommendation metric of Table VI — lower is better and
    a value of 1.0 means no better than predicting the CTR prior.
    """
    labels = np.asarray(labels, dtype=np.float64)
    p = np.clip(np.asarray(probabilities, dtype=np.float64), 1e-12, 1 - 1e-12)
    ce = -np.mean(labels * np.log(p) + (1 - labels) * np.log(1 - p))
    base = float(np.mean(labels))
    base = min(max(base, 1e-12), 1 - 1e-12)
    base_ce = -(base * np.log(base) + (1 - base) * np.log(1 - base))
    return float(ce / base_ce)
