"""From-scratch metric implementations for every benchmark family."""

from .auc import auc, normalized_entropy
from .bleu import bleu_score
from .classification import exact_match, squad_scores, token_f1, top1_accuracy
from .fid import frechet_distance, inception_score
from .lm import pearson_correlation, perplexity
from .wer import collapse_repeats, edit_distance, wer

__all__ = [
    "auc",
    "normalized_entropy",
    "bleu_score",
    "exact_match",
    "squad_scores",
    "token_f1",
    "top1_accuracy",
    "frechet_distance",
    "inception_score",
    "pearson_correlation",
    "perplexity",
    "collapse_repeats",
    "edit_distance",
    "wer",
]
