"""Language-model metrics."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["perplexity", "pearson_correlation"]


def perplexity(mean_cross_entropy: float) -> float:
    """Perplexity of a mean next-token cross entropy in nats."""
    return math.exp(mean_cross_entropy)


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson r — used to validate that QSNR predicts end-to-end LM loss
    (Section IV-A reports a strong correlation in the narrow-bit regime)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need two equally sized samples with n >= 2")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = float(np.sqrt(np.sum(xc**2) * np.sum(yc**2)))
    if denom == 0.0:
        raise ValueError("zero variance input")
    return float(np.sum(xc * yc) / denom)
