"""Classification and span-extraction metrics."""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

__all__ = ["top1_accuracy", "exact_match", "token_f1", "squad_scores"]


def top1_accuracy(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Fraction of exact label matches, in percent."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape:
        raise ValueError("labels/predictions shape mismatch")
    if labels.size == 0:
        raise ValueError("empty evaluation set")
    return 100.0 * float(np.mean(labels == predictions))


def exact_match(gold: Sequence, predicted: Sequence) -> float:
    """1.0 when the two token sequences are identical."""
    return float(list(gold) == list(predicted))


def token_f1(gold: Sequence, predicted: Sequence) -> float:
    """Token-overlap F1, the SQuAD span metric."""
    gold, predicted = list(gold), list(predicted)
    if not gold and not predicted:
        return 1.0
    if not gold or not predicted:
        return 0.0
    common = Counter(gold) & Counter(predicted)
    overlap = sum(common.values())
    if overlap == 0:
        return 0.0
    precision = overlap / len(predicted)
    recall = overlap / len(gold)
    return 2.0 * precision * recall / (precision + recall)


def squad_scores(
    gold_spans: Sequence[Sequence], predicted_spans: Sequence[Sequence]
) -> tuple[float, float]:
    """(Exact Match, F1) averaged over a QA evaluation set, in percent."""
    if len(gold_spans) != len(predicted_spans):
        raise ValueError("gold/predicted count mismatch")
    if not gold_spans:
        raise ValueError("empty evaluation set")
    em = np.mean([exact_match(g, p) for g, p in zip(gold_spans, predicted_spans)])
    f1 = np.mean([token_f1(g, p) for g, p in zip(gold_spans, predicted_spans)])
    return 100.0 * float(em), 100.0 * float(f1)
