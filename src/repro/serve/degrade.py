"""Graceful degradation: shed fidelity, not requests.

The shared-microexponent ladder (mx9 → mx6 → mx4) is a set of
pre-compilable accuracy/cost points over the *same* trained weights, so
an overloaded server has a better option than rejecting work: route
requests to a cheaper :class:`~repro.serve.compile.CompiledModel` replica
down the format ladder and tag each response with the fidelity actually
served.  Two triggers drive the routing:

* **overload** — the session queue depth crossing multiples of
  ``degrade_queue_depth`` steps the ladder down one level per multiple
  (deeper backlog, cheaper format), recovering automatically as the
  queue drains;
* a tripped **circuit breaker** — ``breaker_threshold`` consecutive
  execution failures open the breaker, routing traffic down-ladder for
  ``breaker_cooldown`` seconds; the first request after the cool-down is
  a half-open probe served at full fidelity, and its outcome closes or
  re-opens the breaker.

Replicas are compiled exactly once (at session startup, from a deep copy
of the model, so the full-fidelity weights are never touched) and reused
for every degraded batch.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker", "DegradationPolicy"]


class CircuitBreaker:
    """Classic closed → open → half-open breaker over execution outcomes.

    ``closed``: normal service; ``threshold`` *consecutive* failures trip
    it open.  ``open``: degraded routing for ``cooldown`` seconds.
    ``half-open``: the cool-down elapsed; traffic runs at full fidelity
    as a probe — the next recorded success closes the breaker, the next
    failure re-opens it (and restarts the cool-down).
    """

    def __init__(self, threshold: int, cooldown: float, clock=time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._trips = 0
        self._opened_at: float | None = None  # None = closed

    # ------------------------------------------------------------------
    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` (time-lazy)."""
        with self._lock:
            return self._state_locked()

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == "half-open":
                # failed probe: re-open and restart the cool-down
                self._opened_at = self._clock()
                self._trips += 1
                return
            self._failures += 1
            if state == "closed" and self._failures >= self.threshold:
                self._opened_at = self._clock()
                self._trips += 1

    def record_success(self) -> None:
        with self._lock:
            if self._state_locked() == "half-open":
                self._opened_at = None  # probe succeeded: close
            self._failures = 0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._failures,
                "trips": self._trips,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown,
            }


class DegradationPolicy:
    """Routes executions across the fidelity ladder under stress.

    ``ladder`` is an ordered sequence of format spec strings, cheapest
    last; each entry is compiled once into a replica via
    :meth:`CompiledModel.replica`.  :meth:`select` maps the instantaneous
    queue depth and breaker state to a ladder level and returns the
    compiled model to execute on plus the spec string to tag responses
    with (``None`` at full fidelity).
    """

    def __init__(
        self,
        base,
        ladder=(),
        *,
        breaker: CircuitBreaker | None = None,
        queue_trigger: int = 0,
    ):
        self.base = base
        self.ladder = [(spec, base.replica(spec)) for spec in ladder]
        self.breaker = breaker
        self.queue_trigger = int(queue_trigger)

    # ------------------------------------------------------------------
    def level_for(self, queue_depth: int) -> int:
        """Ladder level (0 = full fidelity) for the current stress state."""
        if not self.ladder:
            return 0
        level = 0
        if self.queue_trigger > 0 and queue_depth >= self.queue_trigger:
            level = min(queue_depth // self.queue_trigger, len(self.ladder))
        if self.breaker is not None and self.breaker.state == "open":
            level = max(level, 1)
        return level

    def select(self, queue_depth: int):
        """``(compiled, served_format | None)`` for the next execution."""
        level = self.level_for(queue_depth)
        if level == 0:
            return self.base, None
        spec, replica = self.ladder[level - 1]
        return replica, spec

    def record_result(self, success: bool) -> None:
        """Feed one execution outcome to the breaker (if configured)."""
        if self.breaker is None:
            return
        if success:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    def snapshot(self) -> dict:
        return {
            "ladder": [spec for spec, _ in self.ladder],
            "queue_trigger": self.queue_trigger,
            "breaker": self.breaker.snapshot() if self.breaker is not None else None,
        }
