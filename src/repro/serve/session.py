"""The inference session: micro-batched, futures-based request serving.

An :class:`InferenceSession` owns a compiled model, a request queue, and a
pool of worker threads.  Each worker pops a request, waits up to
``max_wait`` seconds for co-riders (up to ``max_batch`` per batch), runs
the coalesced batch through the model's task adapter under ``no_grad``,
and resolves each request's future.  Shared-scale formats make this cheap:
the quantized weights were frozen at compile time, so a batch pays one
activation quantization per tensor op regardless of how many requests ride
in it.

Streaming generation (the GPT ladder) runs as singleton jobs whose tokens
are handed to the consumer through a queue as they are produced.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from ..nn.tensor import no_grad
from ..spec.serving import SessionConfig
from .adapters import Request
from .metrics import SessionMetrics

__all__ = ["InferenceSession"]

_SHUTDOWN = object()
_STREAM_END = object()


@dataclass
class _Job:
    request: Request
    future: Future
    enqueued: float
    stream: "queue.Queue | None" = None
    stream_kwargs: dict = field(default_factory=dict)


class InferenceSession:
    """Micro-batching front end over a :class:`~repro.serve.CompiledModel`.

    Use as a context manager, or call :meth:`close` when done::

        with compiled.session(max_batch=16) as session:
            futures = [session.submit(r) for r in requests]
            results = [f.result() for f in futures]
    """

    def __init__(self, compiled, config: SessionConfig | None = None):
        self.compiled = compiled
        self.config = config or SessionConfig()
        self.metrics = SessionMetrics()
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        # serializes submit/close so no job can be enqueued behind the
        # shutdown sentinel (where workers would never see it)
        self._submit_lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker, name=f"serve-worker-{i}", daemon=True)
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def _enqueue(self, job: _Job) -> None:
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("session is closed")
            self._queue.put(job)

    def submit(self, request) -> Future:
        """Enqueue one request; the returned future resolves to its result.

        Unknown tasks are rejected here, before enqueueing — one bad
        request must never ride in (and poison) a batch of valid ones.
        """
        coerced = Request.coerce(request)
        if coerced.task not in self.compiled.tasks:
            raise ValueError(
                f"{type(self.compiled.adapter).__name__} serves tasks "
                f"{self.compiled.tasks}, got {coerced.task!r}"
            )
        job = _Job(
            request=coerced,
            future=Future(),
            enqueued=time.perf_counter(),
        )
        self._enqueue(job)
        return job.future

    def map(self, requests, timeout: float | None = None) -> list:
        """Submit many requests and wait for all results, in order."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout=timeout) for future in futures]

    def stream(self, request):
        """Submit a streaming generation request; yields tokens as produced.

        Only meaningful for adapters exposing ``generate_stream`` (the
        causal LM families).  The request runs as a singleton job on a
        worker thread; this generator blocks on its token queue.
        """
        coerced = Request.coerce(request)
        if coerced.task != "generate":
            raise ValueError(f"streaming requires task 'generate', got {coerced.task!r}")
        if not hasattr(self.compiled.adapter, "generate_stream"):
            raise TypeError(
                f"{type(self.compiled.adapter).__name__} does not support streaming"
            )
        job = _Job(
            request=coerced,
            future=Future(),
            enqueued=time.perf_counter(),
            stream=queue.Queue(),
        )
        self._enqueue(job)

        def consume():
            while True:
                item = job.stream.get()
                if item is _STREAM_END:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
            # surface any terminal state (also marks the future consumed)
            job.future.result()

        return consume()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _collect_batch(self, first: _Job) -> tuple[list[_Job], _Job | None]:
        """Coalesce up to ``max_batch`` jobs, waiting at most ``max_wait``.

        Returns ``(batch, stream_job)``; a stream job encountered while
        collecting stops the batch and is carried out-of-band (never
        re-queued: after close() a re-queued job could land behind the
        shutdown sentinel and be dropped with its future unresolved).
        """
        batch = [first]
        if first.stream is not None:
            return [], first  # streams run as singletons
        deadline = time.perf_counter() + self.config.max_wait
        while len(batch) < self.config.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                nxt = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if nxt is _SHUTDOWN:
                # repost for the other workers and stop collecting
                self._queue.put(_SHUTDOWN)
                break
            if nxt.stream is not None:
                # don't mix a stream into a batch: run the batch first,
                # then the carried stream
                return batch, nxt
            batch.append(nxt)
        return batch, None

    def _execute_batch(self, batch: list[_Job]) -> None:
        try:
            with no_grad():
                results = self.compiled.adapter.run_batch(
                    [job.request for job in batch]
                )
        except BaseException as error:  # noqa: BLE001
            # a bad payload must not poison its co-riders: retry each job
            # alone so only the offender(s) fail
            if len(batch) > 1:
                for job in batch:
                    self._execute_batch([job])
            else:
                self.metrics.record_error(1)
                batch[0].future.set_exception(error)
            return
        done = time.perf_counter()
        for job, result in zip(batch, results):
            job.future.set_result(result)
        self.metrics.record_batch(
            len(batch), [done - job.enqueued for job in batch]
        )

    def _execute_stream(self, job: _Job) -> None:
        tokens = 0
        try:
            # generate_stream scopes no_grad per step itself
            payload = dict(job.request.payload)
            iterator = self.compiled.adapter.generate_stream(
                payload.pop("prompt"),
                int(payload.pop("max_new_tokens", 16)),
                eos=payload.pop("eos", None),
            )
            produced = []
            last = time.perf_counter()
            for token in iterator:
                now = time.perf_counter()
                produced.append(token)
                tokens += 1
                self.metrics.record_tokens(1, latency=now - last)
                last = now
                job.stream.put(token)
        except BaseException as error:  # noqa: BLE001
            self.metrics.record_error(1)
            job.future.set_exception(error)
            job.stream.put(error)
            job.stream.put(_STREAM_END)
            return
        done = time.perf_counter()
        job.future.set_result({"tokens": produced})
        job.stream.put(_STREAM_END)
        self.metrics.record_batch(1, [done - job.enqueued])

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SHUTDOWN:
                self._queue.put(_SHUTDOWN)  # let sibling workers exit too
                return
            batch, stream_job = self._collect_batch(job)
            if batch:
                self._execute_batch(batch)
            if stream_job is not None:
                self._execute_stream(stream_job)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting work, drain the queue, and join the workers."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            # under the lock: every accepted job is already in the queue
            # ahead of the sentinel, so the drain covers all of them
            self._queue.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join(timeout=timeout)

    def __enter__(self) -> "InferenceSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def summary(self) -> dict:
        """Metrics snapshot including the session configuration label."""
        out = self.metrics.summary(max_batch=self.config.max_batch)
        out["config"] = self.config.to_dict()
        return out
