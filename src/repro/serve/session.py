"""The inference session: micro-batched, fault-tolerant request serving.

An :class:`InferenceSession` owns a compiled model, a request queue, and a
pool of worker threads.  Each worker pops a request, waits up to
``max_wait`` seconds for co-riders (up to ``max_batch`` per batch), runs
the coalesced batch through the model's task adapter under ``no_grad``,
and resolves each request's future.  Shared-scale formats make this cheap:
the quantized weights were frozen at compile time, so a batch pays one
activation quantization per tensor op regardless of how many requests ride
in it.

On top of the micro-batcher sits the reliability layer (all off by
default — the zero-config session behaves exactly like the plain
batcher):

* **admission control** — a bounded queue (``max_queue``) with shed
  policies (:data:`~repro.spec.serving.SHED_POLICIES`), plus per-request
  deadlines (``timeout`` at submit or in the request payload,
  ``default_timeout`` in the config) enforced at admission, at batch
  formation, and between stream decode steps;
* **fault isolation** — a failing batch is bisected to isolate the
  poison payload in O(log n) extra executions; failures classified
  transient (:func:`~repro.serve.faults.is_transient`) are retried with
  exponential backoff first; every job's terminal outcome is recorded in
  :class:`~repro.serve.metrics.SessionMetrics` exactly once;
* **hung-worker watchdog** — workers heartbeat; one stalled mid-batch
  past ``hang_timeout`` is declared hung, its in-flight futures fail
  with :class:`~repro.serve.faults.WorkerHung`, and a replacement thread
  takes its slot.  :meth:`health` reports the live picture;
* **graceful degradation** — under overload or a tripped circuit
  breaker, batches route to reduced-fidelity ladder replicas
  (:mod:`repro.serve.degrade`); responses carry the fidelity actually
  served in ``"served_format"``;
* **clean shutdown** — :meth:`close` drains the queue; if workers fail
  to join in time, every still-unresolved future is failed with
  :class:`~repro.serve.faults.SessionClosed` so no caller ever blocks on
  a future that cannot resolve.

Streaming generation (the GPT ladder) runs as singleton jobs whose tokens
are handed to the consumer through a queue as they are produced; closing
the consumer generator cancels the decode promptly and releases the
worker.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

from ..nn.tensor import no_grad
from ..spec.serving import SessionConfig
from .adapters import Request
from .degrade import CircuitBreaker, DegradationPolicy
from .faults import (
    DeadlineExceeded,
    QueueFull,
    RequestShed,
    SessionClosed,
    WorkerHung,
    ensure_env_faults,
    fault_point,
    is_transient,
)
from .metrics import SessionMetrics

__all__ = ["InferenceSession"]

_STREAM_END = object()


@dataclass(eq=False)  # identity hash: jobs live in the _jobs registry set
class _Job:
    request: Request
    future: Future
    enqueued: float
    deadline: float | None = None  # absolute perf_counter time
    stream: "queue.Queue | None" = None
    cancel: threading.Event | None = None


class _WorkerState:
    """Per-worker bookkeeping read by the watchdog and :meth:`health`."""

    __slots__ = ("slot", "thread", "beat", "jobs", "abandoned")

    def __init__(self, slot: int):
        self.slot = slot
        self.thread: threading.Thread | None = None
        self.beat = time.monotonic()
        self.jobs: list[_Job] | None = None  # in-flight batch, if any
        self.abandoned = False


class InferenceSession:
    """Micro-batching front end over a :class:`~repro.serve.CompiledModel`.

    Use as a context manager, or call :meth:`close` when done::

        with compiled.session(max_batch=16) as session:
            futures = [session.submit(r) for r in requests]
            results = [f.result() for f in futures]
    """

    def __init__(self, compiled, config: SessionConfig | None = None):
        self.compiled = compiled
        self.config = config or SessionConfig()
        self.metrics = SessionMetrics()
        ensure_env_faults()
        # one condition guards the queue, the job registry, and lifecycle
        # flags; it is an RLock underneath, so helpers may re-enter
        self._cv = threading.Condition()
        self._pending: deque[_Job] = deque()
        self._jobs: set[_Job] = set()  # every unresolved job
        self._closing = False
        self._closed = False
        cfg = self.config
        breaker = (
            CircuitBreaker(cfg.breaker_threshold, cfg.breaker_cooldown)
            if cfg.breaker_threshold > 0
            else None
        )
        if cfg.degrade_ladder or breaker is not None:
            self._degrade = DegradationPolicy(
                compiled,
                cfg.degrade_ladder,
                breaker=breaker,
                queue_trigger=cfg.degrade_queue_depth,
            )
        else:
            self._degrade = None
        if cfg.scheduler is not None:
            from ..spec.serving import SchedulerConfig
            from .sched import ContinuousScheduler

            self._sched = ContinuousScheduler(
                self, SchedulerConfig.from_dict(cfg.scheduler)
            )
        else:
            self._sched = None
        self._worker_states: list[_WorkerState] = [
            _WorkerState(slot) for slot in range(cfg.workers)
        ]
        for state in self._worker_states:
            self._start_worker(state)
        self._watchdog: threading.Thread | None = None
        if cfg.watchdog_interval > 0:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="serve-watchdog", daemon=True
            )
            self._watchdog.start()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def _resolve_timeout(self, payload: dict, timeout: float | None) -> float | None:
        if timeout is None:
            timeout = payload.get("timeout")
        if timeout is None:
            timeout = self.config.default_timeout
        return None if timeout is None else float(timeout)

    def submit(self, request, *, timeout: float | None = None) -> Future:
        """Enqueue one request; the returned future resolves to its result.

        ``timeout`` (seconds from now; also accepted as a ``"timeout"``
        key in a request dict) sets the request's deadline — enforced at
        admission, batch formation, and between stream decode steps.
        Admission control may raise :class:`QueueFull` (bounded queue,
        ``shed_policy="reject"``) or :class:`DeadlineExceeded` (deadline
        already expired).  Unknown tasks are rejected here, before
        enqueueing — one bad request must never ride in (and poison) a
        batch of valid ones.
        """
        coerced = Request.coerce(request)
        if coerced.task not in self.compiled.tasks:
            raise ValueError(
                f"{type(self.compiled.adapter).__name__} serves tasks "
                f"{self.compiled.tasks}, got {coerced.task!r}"
            )
        timeout = self._resolve_timeout(coerced.payload, timeout)
        if timeout is not None and timeout <= 0:
            self.metrics.record_event("timeouts")
            raise DeadlineExceeded(
                f"request timeout {timeout}s expired before admission"
            )
        now = time.perf_counter()
        job = _Job(
            request=coerced,
            future=Future(),
            enqueued=now,
            deadline=None if timeout is None else now + timeout,
        )
        if (
            self._sched is not None
            and coerced.task == "generate"
            and self._sched.accepts(coerced.payload)
        ):
            # continuous-batching path: the scheduler owns execution, the
            # session keeps exactly-once accounting via the job registry
            with self._cv:
                if self._closing:
                    raise SessionClosed("session is closed")
                self._jobs.add(job)
            try:
                self._sched.submit(job)
            # repro: allow(broad-except): registry cleanup only — the error (typed or not) is re-raised to the submitter untouched
            except BaseException:
                self._forget(job)
                raise
            return job.future
        self._admit(job)
        return job.future

    def _admit(self, job: _Job) -> None:
        with self._cv:
            if self._closing:
                raise SessionClosed("session is closed")
            cap = self.config.max_queue
            if cap and len(self._pending) >= cap:
                if self.config.shed_policy == "reject":
                    self.metrics.record_event("sheds")
                    raise QueueFull(
                        f"queue full ({cap} requests pending); request rejected"
                    )
                victim = self._pending.popleft()
                self._fail_job(
                    victim,
                    RequestShed("shed by drop-oldest admission (queue full)"),
                    event="sheds",
                )
            self._pending.append(job)
            self._jobs.add(job)
            self._cv.notify_all()

    def map(self, requests, timeout: float | None = None) -> list:
        """Submit many requests and wait for all results, in order.

        On a result timeout, futures whose jobs have not started executing
        are cancelled before the :class:`TimeoutError` propagates, so
        abandoned work never keeps occupying workers.
        """
        futures = [self.submit(request) for request in requests]
        try:
            return [future.result(timeout=timeout) for future in futures]
        except FutureTimeoutError:
            for future in futures:
                future.cancel()  # only succeeds for not-yet-started jobs
            raise

    def stream(self, request, *, timeout: float | None = None):
        """Submit a streaming generation request; yields tokens as produced.

        Only meaningful for adapters exposing ``generate_stream`` (the
        causal LM families).  The request runs as a singleton job on a
        worker thread; this generator blocks on its token queue.  Closing
        the generator mid-iteration cancels the decode job promptly: the
        worker observes the cancellation at the next token boundary and
        moves on.
        """
        coerced = Request.coerce(request)
        if coerced.task != "generate":
            raise ValueError(f"streaming requires task 'generate', got {coerced.task!r}")
        if not hasattr(self.compiled.adapter, "generate_stream"):
            raise TypeError(
                f"{type(self.compiled.adapter).__name__} does not support streaming"
            )
        timeout = self._resolve_timeout(coerced.payload, timeout)
        now = time.perf_counter()
        job = _Job(
            request=coerced,
            future=Future(),
            enqueued=now,
            deadline=None if timeout is None else now + timeout,
            stream=queue.Queue(),
            cancel=threading.Event(),
        )
        self._admit(job)

        def consume():
            try:
                while True:
                    item = job.stream.get()
                    if item is _STREAM_END:
                        break
                    if isinstance(item, BaseException):
                        raise item
                    yield item
                # surface any terminal state (also marks the future consumed)
                job.future.result()
            finally:
                # reached on exhaustion AND on generator close/abandonment:
                # the flag tells the worker to stop decoding; cancel() only
                # succeeds when the job never started
                job.cancel.set()
                job.future.cancel()

        return consume()

    # ------------------------------------------------------------------
    # Job resolution (exactly-once accounting)
    # ------------------------------------------------------------------
    # Every terminal transition goes through one of these helpers; metrics
    # are recorded only when the future actually transitions here, so a
    # job can never be double-counted — not by bisection re-execution, not
    # by a hung worker completing after its watchdog replacement, not by a
    # forced close racing an in-flight batch.
    def _forget(self, job: _Job) -> None:
        with self._cv:
            self._jobs.discard(job)

    def _resolve_job(self, job: _Job, result, served: str | None = None) -> bool:
        if served is not None and isinstance(result, dict):
            result = {**result, "served_format": served}
        try:
            job.future.set_result(result)
        except InvalidStateError:
            self._forget(job)
            return False
        if served is not None:
            self.metrics.record_event("degraded")
        self.metrics.record_done(time.perf_counter() - job.enqueued)
        self._forget(job)
        return True

    def _fail_job(self, job: _Job, error: BaseException, event: str = "errors") -> bool:
        try:
            job.future.set_exception(error)
        except InvalidStateError:
            self._forget(job)
            return False
        if event == "errors":
            self.metrics.record_error(1)
        else:
            self.metrics.record_event(event)
        if job.stream is not None:
            job.stream.put(error)
            job.stream.put(_STREAM_END)
        self._forget(job)
        return True

    def _drop_cancelled(self, job: _Job) -> None:
        """A future cancelled before execution: account it and let go."""
        self.metrics.record_event("cancelled")
        if job.stream is not None:
            job.stream.put(_STREAM_END)
        self._forget(job)

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _start_worker(self, state: _WorkerState) -> None:
        state.thread = threading.Thread(
            target=self._worker_loop,
            args=(state,),
            name=f"serve-worker-{state.slot}",
            daemon=True,
        )
        state.thread.start()

    def _job_live(self, job: _Job) -> bool:
        """Formation-time liveness: cancellation first, then the deadline.

        Marks the job RUNNING on success, so a later ``future.cancel()``
        (e.g. from :meth:`map`'s timeout path) can no longer steal it.
        """
        if not job.future.set_running_or_notify_cancel():
            self._drop_cancelled(job)
            return False
        if job.deadline is not None and time.perf_counter() > job.deadline:
            self._fail_job(
                job,
                DeadlineExceeded("deadline expired while queued"),
                event="timeouts",
            )
            return False
        return True

    def _take(self, state: _WorkerState):
        """Pop the next unit of work: ``(batch, stream_job, depth)``.

        Returns ``None`` when the session has closed and the queue is
        drained (or this worker was abandoned).  ``depth`` is the queue
        depth observed when the first job was popped — the overload signal
        for degradation routing.
        """
        idle_wait = (
            self.config.watchdog_interval / 2 if self.config.watchdog_interval else None
        )
        with self._cv:
            first = None
            while first is None:
                if state.abandoned:
                    return None
                state.beat = time.monotonic()
                depth = len(self._pending)
                while self._pending:
                    job = self._pending.popleft()
                    if self._job_live(job):
                        first = job
                        break
                if first is not None:
                    break
                if self._closing:
                    return None
                self._cv.wait(idle_wait)
            if first.stream is not None:
                state.jobs = [first]
                return [], first, depth
            batch = [first]
            deadline = time.perf_counter() + self.config.max_wait
            while len(batch) < self.config.max_batch:
                if self._pending:
                    head = self._pending[0]
                    if head.stream is not None:
                        break  # streams never mix into a batch
                    self._pending.popleft()
                    if self._job_live(head):
                        batch.append(head)
                    continue
                if self._closing:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cv.wait(remaining)
            state.jobs = list(batch)
            return batch, None, depth

    def _worker_loop(self, state: _WorkerState) -> None:
        while True:
            taken = self._take(state)
            if taken is None:
                return
            batch, stream_job, depth = taken
            try:
                if stream_job is not None:
                    self._execute_stream(stream_job, depth)
                elif batch:
                    self._execute_batch(batch, depth)
            # repro: allow(broad-except): last-resort worker survival — any escape must fail the batch's futures, not kill the thread
            except BaseException as error:
                for job in batch or [stream_job]:
                    self._fail_job(job, error)
            finally:
                state.jobs = None
                state.beat = time.monotonic()
            if state.abandoned:
                return

    # ------------------------------------------------------------------
    # Batch execution: route, retry, bisect
    # ------------------------------------------------------------------
    def _select_route(self, depth: int):
        """``(adapter, served_format | None)`` for the next execution."""
        if self._degrade is None:
            return self.compiled.adapter, None
        compiled, served = self._degrade.select(depth)
        return compiled.adapter, served

    def _record_outcome(self, success: bool) -> None:
        if self._degrade is not None:
            self._degrade.record_result(success)

    def _sweep_expired(self, batch: list[_Job]) -> list[_Job]:
        """Drop (and fail) jobs whose deadline passed; returns survivors."""
        now = time.perf_counter()
        live = []
        for job in batch:
            if job.deadline is not None and now > job.deadline:
                self._fail_job(
                    job,
                    DeadlineExceeded("deadline expired before execution"),
                    event="timeouts",
                )
            else:
                live.append(job)
        return live

    def _execute_batch(self, batch: list[_Job], depth: int) -> None:
        adapter, served = self._select_route(depth)
        self._run_isolating(batch, adapter, served)

    def _run_isolating(self, batch: list[_Job], adapter, served: str | None) -> None:
        """Execute ``batch``; isolate failures without poisoning co-riders.

        Transient failures retry the whole batch with exponential backoff
        (up to ``max_retries``).  A terminal failure of a multi-job batch
        bisects: each half re-executes independently, so one poison
        payload is isolated in O(log n) extra runs instead of the O(n)
        one-by-one sweep.  Results/errors resolve through the
        exactly-once helpers.
        """
        attempt = 0
        while True:
            batch = self._sweep_expired(batch)
            if not batch:
                return
            try:
                fault_point("worker.batch")
                with no_grad():
                    results = adapter.run_batch([job.request for job in batch])
            # repro: allow(broad-except): adapter code is arbitrary — escapes are classified by is_transient() then retried or routed into futures via bisection
            except BaseException as error:
                if is_transient(error) and attempt < self.config.max_retries:
                    attempt += 1
                    self.metrics.record_event("retries")
                    time.sleep(self.config.retry_backoff * (2 ** (attempt - 1)))
                    continue
                self._record_outcome(False)
                if len(batch) == 1:
                    event = (
                        "timeouts" if isinstance(error, DeadlineExceeded) else "errors"
                    )
                    self._fail_job(batch[0], error, event=event)
                else:
                    mid = len(batch) // 2
                    self._run_isolating(batch[:mid], adapter, served)
                    self._run_isolating(batch[mid:], adapter, served)
                return
            self._record_outcome(True)
            self.metrics.record_execution(len(batch))
            for job, result in zip(batch, results):
                self._resolve_job(job, result, served)
            return

    # ------------------------------------------------------------------
    # Stream execution
    # ------------------------------------------------------------------
    def _execute_stream(self, job: _Job, depth: int) -> None:
        adapter, served = self._select_route(depth)
        produced = []
        try:
            fault_point("worker.stream")
            # generate_stream scopes no_grad per step itself
            payload = dict(job.request.payload)
            iterator = adapter.generate_stream(
                payload.pop("prompt"),
                int(payload.pop("max_new_tokens", 16)),
                eos=payload.pop("eos", None),
            )
            last = time.perf_counter()
            for token in iterator:
                now = time.perf_counter()
                if job.cancel is not None and job.cancel.is_set():
                    # consumer abandoned the stream: stop decoding, release
                    # the worker, account the cancellation once
                    try:
                        job.future.set_result(
                            {"tokens": produced, "cancelled": True}
                        )
                    except InvalidStateError:
                        pass
                    self.metrics.record_event("cancelled")
                    self._forget(job)
                    return
                if job.deadline is not None and now > job.deadline:
                    self._record_outcome(True)
                    self._fail_job(
                        job,
                        DeadlineExceeded("deadline expired mid-stream"),
                        event="timeouts",
                    )
                    return
                produced.append(token)
                self.metrics.record_tokens(1, latency=now - last)
                last = now
                job.stream.put(token)
        # repro: allow(broad-except): streaming adapter code is arbitrary — the escape is forwarded into the stream job's future and queue
        except BaseException as error:
            self._record_outcome(False)
            self._fail_job(job, error)
            return
        self._record_outcome(True)
        self.metrics.record_execution(1)
        self._resolve_job(job, {"tokens": produced}, served)
        job.stream.put(_STREAM_END)

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        interval = self.config.watchdog_interval
        while True:
            time.sleep(interval)
            with self._cv:
                if self._closing:
                    return
                states = list(self._worker_states)
            now = time.monotonic()
            for state in states:
                jobs = state.jobs
                if state.abandoned or not jobs:
                    continue
                if now - state.beat <= self.config.hang_timeout:
                    continue
                # hung mid-execution: abandon the thread (it cannot be
                # killed; its late resolutions will no-op), fail its
                # in-flight futures, and take over the slot
                state.abandoned = True
                stall = now - state.beat
                for job in list(jobs):
                    self._fail_job(
                        job,
                        WorkerHung(
                            f"worker {state.slot} unresponsive for {stall:.2f}s "
                            f"(hang_timeout={self.config.hang_timeout}s); replaced"
                        ),
                        event="hung",
                    )
                self.metrics.record_event("workers_replaced")
                replacement = _WorkerState(state.slot)
                with self._cv:
                    self._worker_states[state.slot] = replacement
                self._start_worker(replacement)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting work, drain the queue, and join the workers.

        Workers finish everything already accepted.  If a worker fails to
        join within ``timeout`` (it is hung, or mid-way through a very
        long batch), the remaining queue is drained and **every**
        still-unresolved future — pending or in-flight — is failed with
        :class:`SessionClosed`, so no caller is ever left holding a
        future that cannot resolve.
        """
        with self._cv:
            if self._closed:
                return
            self._closing = True
            self._cv.notify_all()
        if self._sched is not None:
            self._sched.close(timeout=timeout)
        for state in list(self._worker_states):
            if state.thread is not None:
                state.thread.join(timeout=timeout)
        stalled = [
            s
            for s in self._worker_states
            if s.thread is not None and s.thread.is_alive()
        ]
        if stalled:
            for state in stalled:
                state.abandoned = True
            with self._cv:
                self._pending.clear()
                outstanding = list(self._jobs)
            error = SessionClosed("session closed with the request unresolved")
            for job in outstanding:
                if not self._fail_job(job, error, event="closed"):
                    # already cancelled/resolved concurrently; just ensure
                    # stream consumers unblock
                    if job.stream is not None:
                        job.stream.put(_STREAM_END)
        if self._watchdog is not None:
            self._watchdog.join(timeout=self.config.watchdog_interval * 2 + 0.2)
        # under the cv like every other _closed/_closing transition: a
        # concurrent close() must observe the flag (the early-return above
        # reads it under the cv) and submit()'s closed-check must never
        # race a half-finished shutdown
        with self._cv:
            self._closed = True

    def __enter__(self) -> "InferenceSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Live reliability picture: queue, workers, breaker, fidelity.

        ``state`` is ``"ok"``, ``"overloaded"`` (bounded queue at
        capacity), ``"degraded"`` (currently routing down-ladder), or
        ``"closed"``.
        """
        with self._cv:
            depth = len(self._pending)
            outstanding = len(self._jobs)
            closing = self._closing
            states = list(self._worker_states)
        now = time.monotonic()
        alive = [
            s
            for s in states
            if s.thread is not None and s.thread.is_alive() and not s.abandoned
        ]
        served = None
        degrade = None
        if self._degrade is not None:
            _, served = self._degrade.select(depth)
            degrade = self._degrade.snapshot()
        if closing:
            state = "closed"
        elif served is not None:
            state = "degraded"
        elif self.config.max_queue and depth >= self.config.max_queue:
            state = "overloaded"
        else:
            state = "ok"
        replaced = self.metrics.events().get("workers_replaced", 0)
        # the kv section reads only the page pool's own lock (never the
        # session cv), so it stays truthful mid-watchdog-replacement
        kv = self._sched.kv_snapshot() if self._sched is not None else {"enabled": False}
        return {
            "state": state,
            "queue_depth": depth,
            "in_flight": outstanding - depth,
            "kv": kv,
            "workers": {
                "configured": self.config.workers,
                "alive": len(alive),
                "replaced": replaced,
                "busy": sum(1 for s in alive if s.jobs),
                "max_heartbeat_age_s": max(
                    (now - s.beat for s in alive), default=0.0
                ),
            },
            "fidelity": served or self.compiled.fidelity or "fp32",
            "degradation": degrade,
        }

    def summary(self) -> dict:
        """Metrics snapshot including the session configuration label."""
        out = self.metrics.summary(max_batch=self.config.max_batch)
        out["config"] = self.config.to_dict()
        return out
