"""The serving tier: compile once, batch everything, serve every family.

Built on the Section V deployment story — quantize-once inference over
shared-microexponent formats::

    import repro
    from repro.models.gpt import GPT, GPT_SIZES

    compiled = repro.compile(model, "mx6")          # freeze weights once
    compiled("score", context=ctx, candidates=[a, b])

    with compiled.session(max_batch=16) as session:  # micro-batched traffic
        futures = [session.submit(r) for r in requests]
        results = [f.result() for f in futures]
        print(session.summary())                     # latency/throughput

    for token in compiled.stream(prompt, max_new_tokens=8):
        ...                                          # streaming generation

Layers:

* :mod:`repro.serve.adapters` — the task-adapter protocol (``classify`` /
  ``score`` / ``generate`` / ``embed`` / ``denoise``) over all eight
  model families.
* :mod:`repro.serve.compile` — :func:`compile_model` freezes quantized
  weights (memoized on the data-version counter, or storage-cast).
* :mod:`repro.serve.session` — :class:`InferenceSession`, the
  micro-batching futures front end with worker threads.
* :mod:`repro.serve.metrics` — per-session latency/throughput/occupancy
  plus the reliability-event taxonomy
  (:data:`~repro.serve.metrics.RELIABILITY_EVENTS`).
* :mod:`repro.serve.faults` — the serving error taxonomy and the
  deterministic seeded fault-injection framework (``REPRO_FAULTS``).
* :mod:`repro.serve.degrade` — fidelity-ladder graceful degradation and
  the execution circuit breaker.
* :mod:`repro.serve.sched` — continuous batching: the paged KV pool
  (:class:`~repro.serve.sched.PagePool`) and the token-granularity
  :class:`~repro.serve.sched.ContinuousScheduler` (``docs/SCHEDULER.md``).
* :class:`~repro.spec.serving.SessionConfig` /
  :class:`~repro.spec.serving.SchedulerConfig` — the declarative (JSON)
  serving configuration, re-exported from :mod:`repro.spec`.
"""

from ..spec.serving import SchedulerConfig, SessionConfig
from .adapters import Request, TaskAdapter, TASKS, adapter_for, register_adapter
from .compile import CompiledModel, compile_model
from .degrade import CircuitBreaker, DegradationPolicy
from .faults import (
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    InjectedFault,
    QueueFull,
    RequestShed,
    ServingError,
    SessionClosed,
    TransientFault,
    WorkerHung,
    active_faults,
    configure_faults,
    inject_faults,
    is_transient,
    parse_faults,
)
from .metrics import RELIABILITY_EVENTS, SessionMetrics
from .sched import ContinuousScheduler, PagePool, PoolExhausted
from .session import InferenceSession

__all__ = [
    "TASKS",
    "Request",
    "TaskAdapter",
    "adapter_for",
    "register_adapter",
    "CompiledModel",
    "compile_model",
    "InferenceSession",
    "SessionConfig",
    "SchedulerConfig",
    "SessionMetrics",
    "RELIABILITY_EVENTS",
    "serve",
    # continuous batching
    "PagePool",
    "PoolExhausted",
    "ContinuousScheduler",
    # error taxonomy
    "ServingError",
    "SessionClosed",
    "DeadlineExceeded",
    "QueueFull",
    "RequestShed",
    "WorkerHung",
    "InjectedFault",
    "TransientFault",
    "is_transient",
    # fault injection
    "FaultPlan",
    "FaultRule",
    "parse_faults",
    "configure_faults",
    "inject_faults",
    "active_faults",
    # graceful degradation
    "CircuitBreaker",
    "DegradationPolicy",
]


def serve(model, config: SessionConfig | None = None, **kwargs) -> InferenceSession:
    """One-call deployment: compile ``model`` and open a session.

    ``kwargs`` build a :class:`SessionConfig` when ``config`` is omitted::

        session = repro.serve.serve(model, format="mx6", max_batch=16)
    """
    if config is None:
        config = SessionConfig(**kwargs)
    elif kwargs:
        config = config.replace(**kwargs)
    return compile_model(model, config=config).session(config)
