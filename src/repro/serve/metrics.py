"""Per-session serving metrics: latency percentiles, throughput, occupancy.

Counters are updated by the session workers under a lock and summarized on
demand; everything is plain floats/ints so a summary can be logged as JSON
by the CLI and the benches.  Summaries also snapshot the process-wide
cache layer — the bounded ``causal_mask`` / ``sinusoidal_positions`` LRUs,
the kernel plan cache, and the quantize-call counter — so residency
regressions show up in serving telemetry, not just wall-clock.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..core.quantize import quantize_call_count

__all__ = ["SessionMetrics", "RELIABILITY_EVENTS", "percentile", "cache_stats"]

#: The serving error/recovery taxonomy tracked per session (disjoint from
#: ``errors``, which counts terminal adapter/payload failures):
#: ``timeouts`` — requests failed with DeadlineExceeded;
#: ``sheds`` — requests rejected or dropped by admission control;
#: ``retries`` — transient-failure batch re-executions;
#: ``cancelled`` — requests cancelled before/while running (map timeout,
#: abandoned stream consumers);
#: ``degraded`` — responses served by a reduced-fidelity ladder replica;
#: ``hung`` — requests failed because their worker hung;
#: ``workers_replaced`` — workers the watchdog replaced;
#: ``closed`` — futures resolved with SessionClosed at forced shutdown.
RELIABILITY_EVENTS = (
    "timeouts",
    "sheds",
    "retries",
    "cancelled",
    "degraded",
    "hung",
    "workers_replaced",
    "closed",
)


def _lru_info(cached_fn) -> dict:
    info = cached_fn.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "size": info.currsize,
        "max_size": info.maxsize,
    }


def cache_stats() -> dict:
    """Process-wide cache snapshot (the residency observables).

    Keys: ``causal_mask`` and ``sinusoidal_positions`` (bounded LRU
    stats), ``quant_plans`` (kernel plan cache + scratch accounting), and
    ``quantize_calls`` (total BDR engine invocations so far).
    """
    from ..kernels.plan import plan_cache_info
    from ..nn.attention import causal_mask
    from ..nn.transformer import sinusoidal_positions

    return {
        "causal_mask": _lru_info(causal_mask),
        "sinusoidal_positions": _lru_info(sinusoidal_positions),
        "quant_plans": plan_cache_info(),
        "quantize_calls": quantize_call_count(),
    }


def _decode_fallbacks() -> int:
    """Process-wide serial-fallback count (lazy import: adapters is heavy)."""
    from .adapters import decode_fallback_count

    return decode_fallback_count()


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample list."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(np.ceil(q / 100.0 * len(ordered))) - 1))
    return ordered[rank]


class SessionMetrics:
    """Thread-safe accumulator for one :class:`InferenceSession`."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._start = clock()
        self._latencies: list[float] = []
        self._batch_sizes: list[int] = []
        self._token_latencies: list[float] = []
        self._requests = 0
        self._errors = 0
        self._tokens = 0
        self._events = dict.fromkeys(RELIABILITY_EVENTS, 0)
        # baseline for the per-session quantize-call delta; process-wide,
        # so concurrent sessions each see every session's calls — the
        # counter is a residency observable, not an accounting ledger
        self._quant_calls_start = quantize_call_count()
        # same caveat for the ragged-prompt serial-fallback counter
        self._fallbacks_start = _decode_fallbacks()
        self._sections: dict = {}

    def register_section(self, name: str, provider) -> None:
        """Attach a callable whose dict payload appears under ``name`` in
        :meth:`summary` (e.g. the continuous scheduler's pool/SLO stats)."""
        with self._lock:
            self._sections[name] = provider

    # ------------------------------------------------------------------
    def record_batch(self, batch_size: int, latencies: list[float]) -> None:
        """One executed micro-batch: its size and per-request latencies."""
        with self._lock:
            self._batch_sizes.append(int(batch_size))
            self._latencies.extend(float(l) for l in latencies)
            self._requests += int(batch_size)

    def record_execution(self, batch_size: int) -> None:
        """One model execution of ``batch_size`` requests (occupancy stat).

        Split from :meth:`record_done` so the bisection path can account
        each job's terminal outcome exactly once while still counting
        every real model call toward batch-size/occupancy statistics.
        """
        with self._lock:
            self._batch_sizes.append(int(batch_size))

    def record_done(self, latency: float) -> None:
        """One request served successfully, ``latency`` seconds after
        submission.  Every job is recorded exactly once, at the moment its
        future resolves — never per retry level or re-execution."""
        with self._lock:
            self._latencies.append(float(latency))
            self._requests += 1

    def record_error(self, batch_size: int) -> None:
        with self._lock:
            self._errors += int(batch_size)

    def record_event(self, kind: str, n: int = 1) -> None:
        """Bump one reliability-taxonomy counter (see RELIABILITY_EVENTS)."""
        if kind not in self._events:
            raise ValueError(
                f"unknown reliability event {kind!r}; known: {RELIABILITY_EVENTS}"
            )
        with self._lock:
            self._events[kind] += int(n)

    def events(self) -> dict:
        """Snapshot of the reliability-event counters."""
        with self._lock:
            return dict(self._events)

    def record_tokens(self, n: int, latency: float | None = None) -> None:
        """Tokens produced by streaming generation.

        ``latency`` is the wall-clock gap since the previous token of the
        same stream (or since the stream started, for its first token) —
        the per-token decode latency surfaced in :meth:`summary`.
        """
        with self._lock:
            self._tokens += int(n)
            if latency is not None:
                self._token_latencies.append(float(latency))

    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        with self._lock:
            return self._requests

    def summary(self, max_batch: int | None = None) -> dict:
        """Snapshot of everything recorded so far.

        Keys: ``requests``, ``errors``, ``throughput_rps``, ``tokens``,
        ``latency_ms`` (mean/p50/p90/p99), ``batch`` (count, mean_size,
        max_size, occupancy when ``max_batch`` is given), ``quantize_calls``
        (BDR engine invocations since this accumulator was created, plus
        per-request mean), ``caches`` (see :func:`cache_stats`), and —
        once any stream produced tokens — ``decode`` (``tokens_per_sec``
        plus ``token_latency_ms`` percentiles of the inter-token gaps).
        """
        with self._lock:
            elapsed = max(self._clock() - self._start, 1e-12)
            latencies = list(self._latencies)
            batch_sizes = list(self._batch_sizes)
            token_latencies = list(self._token_latencies)
            requests, errors, tokens = self._requests, self._errors, self._tokens
            events = dict(self._events)
            sections = dict(self._sections)
            # clamped: a bench calling reset_quantize_calls() mid-session
            # would otherwise drive the delta negative
            quant_calls = max(0, quantize_call_count() - self._quant_calls_start)
            fallbacks = max(0, _decode_fallbacks() - self._fallbacks_start)
        out: dict = {
            "requests": requests,
            "errors": errors,
            "tokens": tokens,
            "elapsed_s": elapsed,
            "throughput_rps": requests / elapsed,
            "quantize_calls": {
                "total": quant_calls,
                "per_request": quant_calls / requests if requests else 0.0,
            },
            "caches": cache_stats(),
            # the full error/recovery taxonomy in one place ("errors"
            # repeated here so dashboards need a single key)
            "reliability": {"errors": errors, **events},
        }
        if latencies:
            ms = [l * 1e3 for l in latencies]
            out["latency_ms"] = {
                "mean": float(np.mean(ms)),
                "p50": percentile(ms, 50),
                "p90": percentile(ms, 90),
                "p99": percentile(ms, 99),
            }
        if batch_sizes:
            batch = {
                "count": len(batch_sizes),
                "mean_size": float(np.mean(batch_sizes)),
                "max_size": int(max(batch_sizes)),
            }
            if max_batch:
                batch["occupancy"] = float(np.mean(batch_sizes)) / max_batch
            out["batch"] = batch
        if tokens or fallbacks:
            decode = {"tokens": tokens, "serial_fallbacks": fallbacks}
            if token_latencies:
                # rate over time actually spent decoding (the sum of
                # inter-token gaps), not the whole session lifetime — a
                # long-lived mixed-traffic session would otherwise report
                # a near-zero tok/s for its occasional streams
                decode_time = max(sum(token_latencies), 1e-12)
                decode["tokens_per_sec"] = len(token_latencies) / decode_time
                ms = [l * 1e3 for l in token_latencies]
                decode["token_latency_ms"] = {
                    "mean": float(np.mean(ms)),
                    "p50": percentile(ms, 50),
                    "p90": percentile(ms, 90),
                    "p99": percentile(ms, 99),
                }
            else:
                decode["tokens_per_sec"] = tokens / elapsed
            out["decode"] = decode
        # registered sections last (called without the lock: providers may
        # take their own locks, e.g. the scheduler's page pool)
        for name, provider in sections.items():
            out[name] = provider()
        return out
