"""Deterministic, seeded fault injection and the serving error taxonomy.

Chaos testing only works when a failure can be *scheduled*: the same seed
must inject the same faults at the same sites on every run, so a test (or
the CI chaos gate) can assert recovery behavior instead of hoping to
catch a race.  This module provides that substrate:

* a typed **error taxonomy** for everything the reliability layer can do
  to a request (:class:`DeadlineExceeded`, :class:`QueueFull`,
  :class:`RequestShed`, :class:`SessionClosed`, :class:`WorkerHung`) plus
  the injected-fault types (:class:`InjectedFault`,
  :class:`TransientFault`);
* a :class:`FaultPlan` — an ordered list of :class:`FaultRule`\\ s, each
  targeting a named **site** with a kind (``error`` / ``transient`` /
  ``latency`` / ``hang``), an injection ``rate``, and scheduling knobs
  (``after``, ``limit``).  Decisions are drawn from a counter-keyed
  seeded stream, so a plan replays identically run to run;
* :func:`fault_point` — the probe the serving/kernel layers call at the
  instrumented sites.  With no active plan it is a single global read,
  so production traffic pays nothing.

Instrumented sites:

=====================  ====================================================
``kernel.quantize``    every BDR engine invocation (installed as a probe
                       into :mod:`repro.core.quantize` only while a plan
                       watching ``kernel`` is active)
``adapter.run_batch``  entry of every task-adapter batch execution
``adapter.decode_step``each streamed decode step (causal LM families)
``worker.batch``       a session worker about to execute a batch
``worker.stream``      a session worker about to execute a stream job
``sched.admit``        the continuous scheduler admitting a stream (an
                       injected error fails that request; a transient
                       leaves it queued for the next tick)
``sched.preempt``      the continuous scheduler about to preempt a victim
                       (any injected fault aborts the preemption attempt;
                       the scheduler retries next tick)
=====================  ====================================================

Activate a plan programmatically (:func:`configure_faults`, or the
:func:`inject_faults` context manager for tests) or through the
``REPRO_FAULTS`` environment variable, e.g.::

    REPRO_FAULTS="seed=7 adapter.run_batch:kind=transient,rate=0.25"

Grammar: whitespace-separated clauses.  ``seed=N`` sets the plan seed;
every other clause is ``site`` or ``site:key=value,key=value`` with keys
``kind`` (default ``error``), ``rate`` (default 1.0), ``after`` (skip the
first N matches), ``limit`` (max injections), ``latency`` (sleep seconds
for ``kind=latency``), and ``hang`` (stall seconds for ``kind=hang``).
A rule site matches a probe site exactly or as a dotted prefix
(``adapter`` matches ``adapter.run_batch``); ``*`` matches everything.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from dataclasses import dataclass

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "ServingError",
    "SessionClosed",
    "DeadlineExceeded",
    "QueueFull",
    "RequestShed",
    "WorkerHung",
    "InjectedFault",
    "TransientFault",
    "is_transient",
    "FaultRule",
    "FaultPlan",
    "parse_faults",
    "configure_faults",
    "inject_faults",
    "active_faults",
    "faults_from_env",
    "ensure_env_faults",
    "fault_point",
]

#: Environment variable holding a fault-plan spec (see module docstring).
ENV_VAR = "REPRO_FAULTS"

#: What an injected fault does at its site.
FAULT_KINDS = ("error", "transient", "latency", "hang")


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class ServingError(RuntimeError):
    """Base of every typed error the serving reliability layer raises."""


class SessionClosed(ServingError):
    """The session closed before (or while) the request could be served."""


class DeadlineExceeded(ServingError, TimeoutError):
    """The request's deadline passed before a result was produced."""


class QueueFull(ServingError):
    """Admission control rejected the request (bounded queue, shed=reject)."""


class RequestShed(ServingError):
    """The request was dropped by the shed policy to admit newer work."""


class WorkerHung(ServingError):
    """The worker executing the request stalled and was replaced."""


class InjectedFault(ServingError):
    """A fault injected by the active :class:`FaultPlan` (chaos testing)."""

    #: retriable by the session's transient-retry policy?
    transient = False


class TransientFault(InjectedFault):
    """An injected fault classified transient: retry-with-backoff applies."""

    transient = True


def is_transient(error: BaseException) -> bool:
    """Whether the retry policy may re-execute after ``error``.

    True for :class:`TransientFault` and for any exception carrying a
    truthy ``transient`` attribute — applications can mark their own
    retriable error types without registering anything.
    """
    return bool(getattr(error, "transient", False))


# ----------------------------------------------------------------------
# Fault rules and plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultRule:
    """One injection rule of a :class:`FaultPlan` (see module docstring)."""

    site: str
    kind: str = "error"
    rate: float = 1.0
    after: int = 0
    limit: int | None = None
    latency: float = 0.05
    hang: float = 1.0

    def __post_init__(self):
        if not self.site:
            raise ValueError("a fault rule needs a site")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"limit must be >= 0, got {self.limit}")
        if self.latency < 0 or self.hang < 0:
            raise ValueError("latency and hang must be >= 0")

    def matches(self, site: str) -> bool:
        """Exact, dotted-prefix, or ``*`` site match."""
        return self.site == "*" or site == self.site or site.startswith(self.site + ".")


@dataclass
class _RuleState:
    hits: int = 0
    injected: int = 0


class FaultPlan:
    """A seeded, deterministic schedule of injections across named sites.

    Each rule keeps a private hit counter; the decision for hit ``n`` of a
    rule is drawn from ``random.Random(f"{seed}:{site}:{kind}:{n}")``, so
    the injection schedule is a pure function of (seed, rule, hit index) —
    independent of wall clock and of *which* thread reaches the site.
    The first rule that fires wins; rules are consulted in order.
    """

    def __init__(self, rules, seed: int = 0):
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._states = [_RuleState() for _ in self.rules]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={list(self.rules)!r})"

    def watches(self, prefix: str) -> bool:
        """Whether any rule could fire at sites under ``prefix``."""
        return any(
            r.site == "*" or r.site == prefix or r.site.startswith(prefix + ".")
            for r in self.rules
        )

    def decide(self, site: str) -> FaultRule | None:
        """The rule injecting at this ``site`` visit, or None."""
        with self._lock:
            for rule, state in zip(self.rules, self._states):
                if not rule.matches(site):
                    continue
                n = state.hits
                state.hits += 1
                if n < rule.after:
                    continue
                if rule.limit is not None and state.injected >= rule.limit:
                    continue
                draw = random.Random(f"{self.seed}:{rule.site}:{rule.kind}:{n}").random()
                if draw < rule.rate:
                    state.injected += 1
                    return rule
        return None

    def stats(self) -> list[dict]:
        """Per-rule ``{site, kind, hits, injected}`` counters (snapshot)."""
        with self._lock:
            return [
                {"site": r.site, "kind": r.kind, "hits": s.hits, "injected": s.injected}
                for r, s in zip(self.rules, self._states)
            ]


_COERCERS = {
    "kind": str,
    "rate": float,
    "after": int,
    "limit": int,
    "latency": float,
    "hang": float,
}


def parse_faults(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    See the module docstring for the grammar.  A ``seed=N`` clause in the
    spec overrides the ``seed`` argument.
    """
    rules: list[FaultRule] = []
    for token in spec.replace(";", " ").split():
        if token.startswith("seed="):
            seed = int(token[len("seed="):])
            continue
        site, _, options = token.partition(":")
        kwargs: dict = {}
        if options:
            for option in options.split(","):
                key, sep, value = option.partition("=")
                if not sep or key not in _COERCERS:
                    raise ValueError(
                        f"bad fault option {option!r} in clause {token!r}; "
                        f"known keys: {sorted(_COERCERS)}"
                    )
                kwargs[key] = _COERCERS[key](value)
        rules.append(FaultRule(site=site, **kwargs))
    if not rules:
        raise ValueError(f"fault spec {spec!r} declares no rules")
    return FaultPlan(rules, seed=seed)


# ----------------------------------------------------------------------
# Active-plan management and the probe
# ----------------------------------------------------------------------
_ACTIVE: FaultPlan | None = None


def _sync_kernel_probe() -> None:
    """(Un)install :func:`fault_point` into the quantize engine.

    The kernel probe costs one ``None``-check per engine call, but only
    while a plan watching ``kernel`` sites is active — otherwise the hot
    path stays untouched.
    """
    from ..core.quantize import set_fault_probe

    if _ACTIVE is not None and _ACTIVE.watches("kernel"):
        set_fault_probe(fault_point)
    else:
        set_fault_probe(None)


def configure_faults(plan: FaultPlan | str | None, seed: int = 0) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previously active plan.

    Accepts a :class:`FaultPlan`, a spec string (parsed with ``seed``), or
    ``None`` to disable injection entirely.
    """
    global _ACTIVE
    if isinstance(plan, str):
        plan = parse_faults(plan, seed=seed)
    previous = _ACTIVE
    _ACTIVE = plan
    _sync_kernel_probe()
    return previous


@contextlib.contextmanager
def inject_faults(plan: FaultPlan | str, seed: int = 0):
    """Scoped fault injection for tests; restores the previous plan."""
    previous = configure_faults(plan, seed=seed)
    try:
        yield _ACTIVE
    finally:
        configure_faults(previous)


def active_faults() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _ACTIVE


def faults_from_env(environ=os.environ) -> FaultPlan | None:
    """A plan parsed from ``REPRO_FAULTS``, or None when unset/empty."""
    spec = environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    return parse_faults(spec)


def ensure_env_faults() -> FaultPlan | None:
    """Install the ``REPRO_FAULTS`` plan unless a plan is already active.

    Called by :class:`~repro.serve.session.InferenceSession` on startup so
    chaos runs need no code changes; programmatic plans always win.
    """
    if _ACTIVE is None:
        plan = faults_from_env()
        if plan is not None:
            configure_faults(plan)
    return _ACTIVE


def fault_point(site: str) -> None:
    """Probe called by instrumented code; injects per the active plan.

    ``error`` / ``transient`` raise; ``latency`` sleeps briefly; ``hang``
    stalls the calling thread long enough for hung-worker detection to
    observe a missed heartbeat.  No-op (one global read) without a plan.
    """
    plan = _ACTIVE
    if plan is None:
        return
    rule = plan.decide(site)
    if rule is None:
        return
    if rule.kind == "latency":
        time.sleep(rule.latency)
    elif rule.kind == "hang":
        time.sleep(rule.hang)
    elif rule.kind == "transient":
        raise TransientFault(f"injected transient fault at {site}")
    else:
        raise InjectedFault(f"injected fault at {site}")
