"""Compile once, serve forever: the quantize-once deployment path.

``compile_model`` is the paper's Section V deployment story as an API: a
trained FP32 model is cast into a BDR format a single time, and every
subsequent request reuses the frozen quantized weights.  Concretely it

1. puts the model in eval mode;
2. installs inference :class:`~repro.nn.quantized.QuantSpec`\\ s (per-role
   format instances, no backward role) from a format spec string — or any
   declarative :class:`~repro.spec.policy.PolicySpec` for mixed-precision
   deployments;
3. freezes the quantized weights: ``freeze="memo"`` (default) warms the
   data-version-keyed memo caches so no request ever re-quantizes a
   weight; ``freeze="cast"`` additionally bakes the quantization into the
   stored arrays via :func:`~repro.flow.cast.cast_weights`;
4. resolves the family's task adapter and returns a :class:`CompiledModel`.

A ``CompiledModel`` executes requests directly (``run`` / ``run_one`` /
``stream``) or spawns an :class:`~repro.serve.session.InferenceSession`
for micro-batched concurrent traffic.
"""

from __future__ import annotations

from ..flow.cast import cast_weights
from ..flow.policy import apply_quant_policy, quantizable_modules
from ..nn.layers import Embedding, Linear, Module
from ..nn.quantized import memo_quantize
from ..nn.tensor import no_grad
from ..spec.grammar import as_format, format_to_spec, parse_spec, render_spec
from ..spec.policy import PolicySpec, UniformPolicy, policy_from_dict
from ..spec.serving import SessionConfig
from .adapters import Request, TaskAdapter, adapter_for

__all__ = ["CompiledModel", "compile_model"]


def _spec_string(fmt) -> str:
    """Canonical spec string for any format spelling."""
    from ..formats.base import Format

    if isinstance(fmt, Format):
        return format_to_spec(fmt)
    return render_spec(parse_spec(fmt))


def _inference_policy(fmt, activation) -> UniformPolicy:
    """The uniform direct-cast policy: weight+activation, no backward."""
    weight_spec = _spec_string(fmt)
    act_spec = _spec_string(activation) if activation is not None else weight_spec
    return UniformPolicy(
        quant={"activation": act_spec, "weight": weight_spec, "backward": None},
        name=f"serve[{weight_spec}]",
    )


def _coerce_policy(policy) -> PolicySpec:
    if isinstance(policy, PolicySpec):
        return policy
    if isinstance(policy, dict):
        return policy_from_dict(policy)
    raise TypeError(
        f"policy must be a PolicySpec or its to_dict payload, got {type(policy).__name__}"
    )


def _warm_weight_caches(model: Module) -> int:
    """Pre-quantize every frozen weight into its memo cache.

    Returns the number of parameters warmed.  Linear weights quantize
    along their reduction dim; conv weights through the same reshaped-
    transposed derivation the forward uses.  Stateful (non-memoizable)
    formats are skipped — they re-quantize by design.
    """
    from ..nn.conv import Conv2d, _quantized_conv_weight

    warmed = 0
    for _, module in quantizable_modules(model):
        spec = module.quant
        if spec is None or spec.weight is None:
            continue
        if spec.rounding == "stochastic" or spec.weight.cache_key() is None:
            continue
        if isinstance(module, Conv2d):
            if module.groups == 1:
                _quantized_conv_weight(module.weight, spec)
                warmed += 1
        elif isinstance(module, Linear) or (
            hasattr(module, "weight") and getattr(module.weight, "ndim", 0) == 2
        ):
            memo_quantize(
                module.weight, spec.weight, axis=0,
                rounding=spec.rounding, rng=spec.rng,
            )
            warmed += 1
    for _, module in model.named_modules():
        if isinstance(module, Embedding) and module.storage_quant is not None:
            if module.storage_quant.cache_key() is not None:
                memo_quantize(module.weight, module.storage_quant, axis=-1, tag="storage")
                warmed += 1
    return warmed


class CompiledModel:
    """A model frozen for inference behind its task adapter.

    Execution always runs under ``no_grad`` (the inference fast path in
    :func:`~repro.nn.quantized.quantized_matmul`), and quantized weight
    payloads are memoized — :meth:`check_frozen` verifies no parameter
    changed since compile.
    """

    def __init__(
        self,
        model: Module,
        adapter: TaskAdapter,
        config: SessionConfig,
        warmed: int = 0,
    ):
        self.model = model
        self.adapter = adapter
        self.config = config
        self.warmed = warmed
        self._weight_versions = {
            name: param.version for name, param in model.named_parameters()
        }
        # reduced-fidelity replicas, compiled once per spec (degradation)
        self._replicas: dict[str, "CompiledModel"] = {}

    # ------------------------------------------------------------------
    @property
    def tasks(self) -> tuple[str, ...]:
        """Task verbs this compiled model serves."""
        return self.adapter.tasks

    def run(self, requests) -> list:
        """Execute a batch of requests serially under ``no_grad``."""
        with no_grad():
            return self.adapter.run_batch([Request.coerce(r) for r in requests])

    def run_one(self, request):
        return self.run([request])[0]

    def __call__(self, task: str, **payload):
        """One-request convenience: ``compiled("score", context=..., ...)``."""
        return self.run_one(Request(task=task, payload=payload))

    def stream(self, prompt, max_new_tokens: int = 16, eos: int | None = None):
        """Token-by-token greedy generation (causal LM families only).

        The adapter scopes ``no_grad`` per step, so the caller's grad mode
        is untouched while the generator is suspended between tokens.
        """
        if not hasattr(self.adapter, "generate_stream"):
            raise TypeError(
                f"{type(self.adapter).__name__} does not support streaming"
            )
        yield from self.adapter.generate_stream(prompt, max_new_tokens, eos=eos)

    def session(self, config: SessionConfig | None = None, **overrides):
        """Spawn an :class:`~repro.serve.session.InferenceSession`.

        ``overrides`` patch the compile-time config (``max_batch=16``, ...).
        """
        from .session import InferenceSession

        config = config or self.config
        if overrides:
            config = config.replace(**overrides)
        return InferenceSession(self, config)

    @property
    def fidelity(self) -> str | None:
        """The format spec this model serves at (None = policy/FP32)."""
        return self.config.format

    def replica(self, fmt) -> "CompiledModel":
        """A reduced-fidelity copy of this model, compiled exactly once.

        The degradation ladder's workhorse: the model (weights included)
        is deep-copied so the full-fidelity deployment is untouched, then
        compiled for ``fmt`` with the same freeze mode.  Replicas are
        cached per canonical spec string, so repeated requests for the
        same rung never recompile.
        """
        import copy as _copy

        spec = _spec_string(fmt)
        cached = self._replicas.get(spec)
        if cached is not None:
            return cached
        model_copy = _copy.deepcopy(self.model)
        # the deep copy carries the cached adapter; drop it so the replica
        # resolves a fresh one bound to its own model object
        model_copy.__dict__.pop("_serve_adapter", None)
        replica = compile_model(
            model_copy,
            spec,
            freeze=self.config.freeze,
            quantize_embeddings=self.config.quantize_embeddings,
        )
        self._replicas[spec] = replica
        return replica

    # ------------------------------------------------------------------
    def check_frozen(self) -> bool:
        """True when no parameter data changed since compile."""
        current = {name: p.version for name, p in self.model.named_parameters()}
        return current == self._weight_versions

    def describe(self) -> dict:
        """Plain-data summary: family, tasks, config, parameter count."""
        return {
            "family": type(self.model).__name__,
            "adapter": type(self.adapter).__name__,
            "tasks": list(self.tasks),
            "parameters": self.model.num_parameters(),
            "warmed_weights": self.warmed,
            "config": self.config.to_dict(),
        }


def compile_model(
    model: Module,
    fmt=None,
    *,
    activation=None,
    policy=None,
    freeze: str | None = None,
    quantize_embeddings: bool = False,
    config: SessionConfig | None = None,
) -> CompiledModel:
    """Freeze ``model`` for quantized serving; see the module docstring.

    Args:
        model: a trained model from any of the eight families.
        fmt: weight format spelling (``"mx6"``, a spec dict, a Format);
            ``None`` with no policy keeps whatever the model has installed
            (including full FP32).
        activation: activation format override (defaults to ``fmt``).
        policy: a declarative :class:`~repro.spec.policy.PolicySpec` (or
            payload dict) for per-layer deployments; exclusive with ``fmt``.
        freeze: ``"memo"`` or ``"cast"`` (see :data:`FREEZE_MODES`).
        quantize_embeddings: also storage-quantize embedding tables (the
            DLRM memory optimization).
        config: a full :class:`SessionConfig`; its format/policy fields are
            used when the direct arguments are omitted.
    """
    if config is not None:
        fmt = fmt if fmt is not None else config.format
        activation = activation if activation is not None else config.activation
        policy = policy if policy is not None else config.policy
        freeze = freeze if freeze is not None else config.freeze
        quantize_embeddings = quantize_embeddings or config.quantize_embeddings
    freeze = freeze if freeze is not None else "memo"
    if fmt is not None and policy is not None:
        raise ValueError("fmt and policy are mutually exclusive")

    model.eval()
    applied: PolicySpec | None = None
    if policy is not None:
        applied = _coerce_policy(policy)
    elif fmt is not None:
        applied = _inference_policy(fmt, activation)
    if applied is not None:
        apply_quant_policy(model, applied)
    if quantize_embeddings and fmt is not None:
        for _, module in model.named_modules():
            if isinstance(module, Embedding):
                module.storage_quant = as_format(_spec_string(fmt))

    if freeze == "cast":
        if applied is None:
            raise ValueError("freeze='cast' requires a format or policy")
        cast_weights(model, applied)
    elif freeze != "memo":
        raise ValueError(f"freeze must be 'memo' or 'cast', got {freeze!r}")
    warmed = _warm_weight_caches(model)

    resolved = SessionConfig(
        format=_spec_string(fmt) if fmt is not None else None,
        activation=_spec_string(activation) if activation is not None else None,
        policy=applied.to_dict() if policy is not None and applied is not None else None,
        freeze=freeze,
        quantize_embeddings=quantize_embeddings,
        max_batch=config.max_batch if config else SessionConfig.max_batch,
        max_wait=config.max_wait if config else SessionConfig.max_wait,
        workers=config.workers if config else SessionConfig.workers,
    )
    return CompiledModel(model, adapter_for(model), resolved, warmed=warmed)
