"""Continuous batching: paged KV memory + token-granularity scheduling.

:class:`PagePool` owns KV memory as fixed-size k1-aligned pages;
:class:`ContinuousScheduler` runs the join/leave decode loop on top of an
:class:`~repro.serve.session.InferenceSession`.  See ``docs/SCHEDULER.md``.
"""

from .pages import PagePool, PoolExhausted
from .scheduler import ContinuousScheduler

__all__ = ["PagePool", "PoolExhausted", "ContinuousScheduler"]
