"""Token-granularity continuous batching over a paged KV pool.

The classic micro-batcher (:class:`~repro.serve.session.InferenceSession`
workers) executes whole requests: a ``generate`` request occupies its
worker until the last token, equal-shape prompts ride in lockstep, and
ragged prompts silently degrade to serial decode.  The
:class:`ContinuousScheduler` replaces that for ``generate`` traffic:
requests join and leave one running decode batch *between steps*, so a
short completion never waits behind a long one and ragged prompts batch
from the first token.

Design (vLLM-style, adapted to BDR block structure):

* **Memory** comes from one :class:`~repro.serve.sched.pages.PagePool`
  whose page equals the format's level-1 block — each stream's
  :class:`~repro.nn.decode.PagedKVCache` maps sealed blocks to frozen
  pages and keeps one open tail page per layer.
* **Admission** is FCFS over arrival with starvation-proof aging: a
  younger request may jump a waiter blocked on pool headroom only while
  the waiter is younger than ``starvation_age_s``; past that, admission
  stalls behind it.  ``max_waiting`` bounds the queue with the session's
  shed policy.
* **Preemption** is recompute-based and copy-free: a victim (youngest
  admitted first) releases every page and keeps only its token window;
  on re-admission the window re-prefills through the same sealed-block
  quantization path, so greedy decode resumes bit-identically.
* **Stepping** uses the fused ragged batch step
  (:func:`~repro.nn.decode.batched_causal_decode_step`) when
  :func:`~repro.nn.decode.supports_batched_decode` certifies it
  bit-identical, and per-stream cached decode otherwise.  Either way,
  every stream's output is exactly its serial ``generate`` output.
* **Reliability** reuses the PR 6 vocabulary: per-request deadlines are
  enforced while waiting and between tokens; fault sites ``sched.admit``
  and ``sched.preempt`` inject errors/transients/latency (an injected
  admit error fails that request; a preempt fault aborts the preemption
  attempt for the tick); all futures resolve through the session's
  exactly-once helpers.

One decode thread owns all scheduler state except the waiting queue
(guarded by the scheduler condition) and the page pool (its own lock), so
the session's lock is never held together with the scheduler's.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ...nn.decode import (
    batched_causal_decode_step,
    causal_decode_step,
    init_paged_decode_state,
    supports_batched_decode,
    supports_cached_decode,
)
from ...nn.tensor import no_grad
from ...spec.serving import SchedulerConfig
from ..faults import (
    DeadlineExceeded,
    InjectedFault,
    QueueFull,
    RequestShed,
    SessionClosed,
    TransientFault,
    fault_point,
)
from ..metrics import percentile
from .pages import PagePool, PoolExhausted

__all__ = ["ContinuousScheduler"]


class _Stream:
    """One request's decode stream: token window + paged cache state."""

    __slots__ = (
        "job", "window", "n", "n_prompt", "max_new", "eos", "owner",
        "arrival", "state", "started", "preemptions", "first_token_t",
        "last_token_t",
    )

    def __init__(self, job, prompt: np.ndarray, max_new: int, eos, owner: str):
        self.job = job
        self.window = np.empty(len(prompt) + max_new, dtype=np.int64)
        self.window[: len(prompt)] = prompt
        self.n = len(prompt)
        self.n_prompt = len(prompt)
        self.max_new = max_new
        self.eos = eos
        self.owner = owner
        self.arrival = job.enqueued
        self.state = None  # DecodeState while admitted; None when swapped out
        self.started = False
        self.preemptions = 0
        self.first_token_t = None
        self.last_token_t = 0.0

    def window_view(self) -> np.ndarray:
        return self.window[: self.n]

    def append(self, token: int) -> None:
        self.window[self.n] = token
        self.n += 1

    @property
    def produced(self) -> list[int]:
        return [int(t) for t in self.window[self.n_prompt : self.n]]


class ContinuousScheduler:
    """Continuous-batching decode loop attached to an InferenceSession.

    Constructed by the session when its config carries a ``scheduler``
    payload; ``generate`` requests the scheduler :meth:`accepts` route
    here instead of the worker queue.  Always serves full fidelity (the
    compiled model itself — degradation ladders stay on the batch path).
    """

    def __init__(self, session, config: SchedulerConfig):
        self.session = session
        self.scfg = config
        self.model = session.compiled.model
        self.metrics = session.metrics
        model = self.model
        blocks = getattr(model, "blocks", None)
        model_cfg = getattr(model, "config", None)
        if not blocks or model_cfg is None or not all(
            hasattr(block, "attn") for block in blocks
        ):
            raise ValueError(
                "continuous batching needs a causal LM exposing config and "
                "attention-bearing blocks"
            )
        if not supports_cached_decode(model):
            raise ValueError(
                "continuous batching requires bit-identical cached decode "
                "(stateless formats with deterministic rounding); this "
                "model/format combination cannot page its KV state"
            )
        k1s = set()
        for block in blocks:
            spec = block.attn.quant
            fmt = spec.activation if spec is not None else None
            k1 = fmt.block_size() if fmt is not None else 1
            if k1 is not None and k1 > 1:
                k1s.add(k1)
        if len(k1s) > 1:
            raise ValueError(
                f"attention layers disagree on k1 block size {sorted(k1s)}; "
                "one page size cannot hold exactly one sealed block for all"
            )
        page_size = k1s.pop() if k1s else (config.page_size or 16)
        if config.page_size and config.page_size != page_size:
            raise ValueError(
                f"configured page_size {config.page_size} != compiled "
                f"format's k1 block {page_size}"
            )
        head_dim = model_cfg.dim // model_cfg.num_heads
        self._pages_per_position_unit = len(blocks)  # pages grow per layer
        per_stream = len(blocks) * (-(-model_cfg.max_len // page_size))
        total_pages = config.page_budget or config.max_streams * per_stream
        self.pool = PagePool(model_cfg.num_heads, head_dim, page_size, total_pages)
        with no_grad():
            self._fused = supports_batched_decode(model)

        self._cv = threading.Condition()
        self._waiting: deque[_Stream] = deque()  # kept sorted by arrival
        self._active: list[_Stream] = []  # admission order; decode-thread-only
        self._closing = False
        self._closed = False
        self._seq = 0
        # decode-thread-only counters (reads from other threads are
        # snapshots, racy but internally consistent per key)
        self._counters = {
            "admitted": 0,
            "completed": 0,
            "preempted": 0,
            "resumed": 0,
            "serial_steps": 0,
            "admit_faults": 0,
            "preempt_faults": 0,
        }
        self._ttft: list[float] = []
        self._e2e: list[float] = []
        self.metrics.register_section("sched", self._section)
        self._thread = threading.Thread(
            target=self._loop, name="serve-sched", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Submission (caller threads)
    # ------------------------------------------------------------------
    def accepts(self, payload: dict) -> bool:
        """Whether this ``generate`` payload can run as a paged stream.

        Prompts needing the sliding-window fallback (prompt + budget
        beyond the model window) stay on the classic path: window shifts
        change absolute positions for every cached entry, which pages
        cannot express without a wholesale rebuild.
        """
        prompt = payload.get("prompt")
        if prompt is None:
            return False
        prompt = np.asarray(prompt)
        if prompt.ndim != 1 or prompt.shape[0] == 0:
            return False
        max_new = int(payload.get("max_new_tokens", 16))
        return prompt.shape[0] + max_new <= self.model.config.max_len

    def submit(self, job) -> None:
        """Enqueue an admitted-by-the-session job as a decode stream."""
        payload = job.request.payload
        prompt = np.asarray(payload["prompt"], dtype=np.int64)
        max_new = int(payload.get("max_new_tokens", 16))
        eos = payload.get("eos")
        shed = None
        with self._cv:
            if self._closing:
                raise SessionClosed("session is closed")
            cap = self.scfg.max_waiting
            if cap and len(self._waiting) >= cap:
                if self.session.config.shed_policy == "reject":
                    self.metrics.record_event("sheds")
                    raise QueueFull(
                        f"scheduler queue full ({cap} waiting); request rejected"
                    )
                shed = self._waiting.popleft()
            entry = _Stream(job, prompt, max_new, eos, f"s{self._seq}")
            self._seq += 1
            self._insert_waiting_locked(entry)
            self._cv.notify_all()
        if shed is not None:
            self.session._fail_job(
                shed.job,
                RequestShed("shed by drop-oldest admission (scheduler queue full)"),
                event="sheds",
            )

    def _insert_waiting_locked(self, entry: _Stream) -> None:
        """Insert by arrival time (preempted streams re-enter in order).

        Caller holds ``self._cv``.
        """
        pos = len(self._waiting)
        for i, current in enumerate(self._waiting):
            if current.arrival > entry.arrival:
                pos = i
                break
        self._waiting.insert(pos, entry)

    def _remove_waiting(self, entry: _Stream) -> bool:
        with self._cv:
            try:
                self._waiting.remove(entry)
                return True
            except ValueError:
                return False

    # ------------------------------------------------------------------
    # Decode loop (single thread owns _active and all stream state)
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cv:
                if self._closing and not self._waiting and not self._active:
                    break
                if not self._active and not self._waiting:
                    self._cv.wait(timeout=0.05)
                    continue
            try:
                self._admit_ready()
                if not self._active:
                    # every waiter is blocked (headroom or injected
                    # faults); tick briefly so aging/deadlines advance
                    with self._cv:
                        if not self._waiting and not self._closing:
                            continue
                        self._cv.wait(timeout=0.002)
                    continue
                self._step()
            # repro: allow(broad-except): a scheduler bug must fail requests, never strand them on futures no thread will ever resolve
            except Exception as error:
                for entry in list(self._active):
                    self._fail_entry(entry, error)

    def _pages_for_first_step(self, entry: _Stream) -> int:
        per_layer = -(-entry.n // self.pool.page_size)
        return self._pages_per_position_unit * per_layer

    def _admit_ready(self) -> None:
        """Admit waiters while concurrency and pool headroom allow.

        Scans in arrival order.  A waiter blocked on headroom may be
        jumped only while younger than the aging threshold — an aged
        blocked waiter halts the scan, so it can never starve behind a
        stream of younger, smaller requests.
        """
        while len(self._active) < self.scfg.max_streams:
            with self._cv:
                candidates = list(self._waiting)
            if not candidates:
                return
            now = time.perf_counter()
            free = self.pool.pages_free()
            pick = None
            for entry in candidates:
                job = entry.job
                if job.deadline is not None and now > job.deadline:
                    if self._remove_waiting(entry):
                        self.session._fail_job(
                            job,
                            DeadlineExceeded(
                                "deadline expired while waiting for admission"
                            ),
                            event="timeouts",
                        )
                    continue
                need = self._pages_for_first_step(entry)
                if not self._active and need > self.pool.total_pages:
                    # can never fit, even with the whole pool to itself
                    if self._remove_waiting(entry):
                        self._fail_entry(
                            entry,
                            PoolExhausted(
                                f"request needs {need} pages to start; the "
                                f"pool holds {self.pool.total_pages}"
                            ),
                        )
                    continue
                if need <= free:
                    pick = entry
                    break
                if now - entry.arrival >= self.scfg.starvation_age_s:
                    return  # aged head-of-line waiter: nobody may jump it
            if pick is None or not self._remove_waiting(pick):
                return
            try:
                fault_point("sched.admit")
            except TransientFault:
                with self._cv:
                    self._counters["admit_faults"] += 1
                    self._insert_waiting_locked(pick)  # retry next tick
                return
            except InjectedFault as error:
                with self._cv:
                    self._counters["admit_faults"] += 1
                self._fail_entry(pick, error)
                continue
            if not pick.started:
                if not self.session._job_live(pick.job):
                    continue
                pick.started = True
            now = time.perf_counter()
            if pick.last_token_t == 0.0:
                pick.last_token_t = now
            with self._cv:
                self._active.append(pick)
                self._counters["admitted"] += 1
                if pick.preemptions:
                    self._counters["resumed"] += 1

    def _retire(self, entry: _Stream) -> None:
        """Drop from the running batch and return every page."""
        with self._cv:
            if entry in self._active:
                self._active.remove(entry)
        if entry.state is not None:
            for kv in entry.state.layers:
                kv.free()
            entry.state = None

    def _fail_entry(self, entry: _Stream, error: BaseException,
                    event: str = "errors") -> None:
        self._retire(entry)
        self.session._fail_job(entry.job, error, event=event)

    def _preempt(self, victim: _Stream) -> bool:
        """Swap a stream out: free its pages, requeue it for recompute.

        An injected fault at ``sched.preempt`` aborts this preemption
        attempt (the scheduler stays live and simply retries next tick).
        """
        try:
            fault_point("sched.preempt")
        except (TransientFault, InjectedFault):
            with self._cv:
                self._counters["preempt_faults"] += 1
            return False
        if victim.state is not None:
            for kv in victim.state.layers:
                kv.free()
            victim.state = None
        victim.preemptions += 1
        with self._cv:
            self._counters["preempted"] += 1
            self._active.remove(victim)
            self._insert_waiting_locked(victim)
        return True

    def _reserve(self, entry: _Stream, stepping: list) -> bool:
        """Pre-reserve every page this step needs, preempting on pressure.

        All growth happens before the model runs, so ``PoolExhausted``
        can never interrupt a half-appended cache.  Victims are the
        youngest admitted streams; a stream alone in the batch that still
        cannot fit fails terminally.
        """
        while True:
            try:
                if entry.state is None:
                    entry.state = init_paged_decode_state(
                        self.model, self.pool, entry.owner
                    )
                for kv in entry.state.layers:
                    kv.reserve(entry.n)
                return True
            except PoolExhausted as error:
                victim = None
                for candidate in reversed(self._active):
                    # only streams actually holding pages are worth
                    # evicting; a just-admitted stream frees nothing
                    if candidate is not entry and self.pool.pages_held(candidate.owner):
                        victim = candidate
                        break
                if victim is None:
                    self._fail_entry(entry, error)
                    return False
                if not self._preempt(victim):
                    return False
                if victim in stepping:
                    stepping.remove(victim)

    def _step(self) -> None:
        now = time.perf_counter()
        stepping: list[_Stream] = []
        for entry in list(self._active):
            job = entry.job
            if job.deadline is not None and now > job.deadline:
                self._fail_entry(
                    entry,
                    DeadlineExceeded("deadline expired mid-decode"),
                    event="timeouts",
                )
                continue
            if entry in self._active and self._reserve(entry, stepping):
                stepping.append(entry)
        if not stepping:
            return
        windows = [entry.window_view() for entry in stepping]
        states = [entry.state for entry in stepping]
        with no_grad():
            if self._fused:
                logits = batched_causal_decode_step(self.model, windows, states)
            else:
                rows = []
                for window, state in zip(windows, states):
                    out = causal_decode_step(self.model, window[None], state)
                    rows.append(out.data[0, -1])
                logits = np.stack(rows)
                with self._cv:
                    self._counters["serial_steps"] += len(stepping)
        finished = []
        for i, entry in enumerate(stepping):
            token = int(np.argmax(logits[i]))
            entry.append(token)
            t = time.perf_counter()
            self.metrics.record_tokens(1, latency=t - entry.last_token_t)
            entry.last_token_t = t
            if entry.first_token_t is None:
                entry.first_token_t = t
                with self._cv:
                    self._ttft.append(t - entry.job.enqueued)
            done_eos = entry.eos is not None and token == entry.eos
            if done_eos or entry.n - entry.n_prompt >= entry.max_new:
                finished.append(entry)
        for entry in finished:
            produced = entry.produced
            self._retire(entry)
            with self._cv:
                self._counters["completed"] += 1
                self._e2e.append(time.perf_counter() - entry.job.enqueued)
            self.session._resolve_job(entry.job, {"tokens": produced})

    # ------------------------------------------------------------------
    # Lifecycle and observability
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Drain accepted streams, stop the loop, fail whatever remains."""
        with self._cv:
            if self._closed:
                return
            self._closing = True
            self._cv.notify_all()
        self._thread.join(timeout=timeout)
        leftovers: list[_Stream] = []
        with self._cv:
            leftovers.extend(self._waiting)
            self._waiting.clear()
        if not self._thread.is_alive():
            leftovers.extend(self._active)
            del self._active[:]
        error = SessionClosed("session closed with the request unresolved")
        for entry in leftovers:
            if entry.state is not None:
                for kv in entry.state.layers:
                    kv.free()
                entry.state = None
            self.session._fail_job(entry.job, error, event="closed")
        with self._cv:
            self._closed = True

    def kv_snapshot(self) -> dict:
        """Pool occupancy for :meth:`InferenceSession.health` — touches
        only the pool's own lock and the scheduler condition, so it stays
        available while the session watchdog is mid-replacement."""
        stats = self.pool.stats()
        return {
            "enabled": True,
            "page_size": stats["page_size"],
            "pages_total": stats["pages_total"],
            "pages_free": stats["pages_free"],
            "pages_used": stats["pages_used"],
            "high_water": stats["high_water"],
            "per_stream_high_water": stats["per_stream_high_water"],
            "streams_active": len(self._active),
            "streams_waiting": len(self._waiting),
            "preemptions": self._counters["preempted"],
        }

    def _section(self) -> dict:
        """The ``sched`` section of :meth:`SessionMetrics.summary`."""
        stats = self.pool.stats()
        counters = dict(self._counters)
        ttft = list(self._ttft)
        e2e = list(self._e2e)
        out = {
            "pool": stats,
            "streams": {
                "active": len(self._active),
                "waiting": len(self._waiting),
            },
            **counters,
        }
        slo = {}
        if ttft:
            ms = [t * 1e3 for t in ttft]
            slo["ttft_ms"] = {
                "p50": percentile(ms, 50),
                "p90": percentile(ms, 90),
                "p99": percentile(ms, 99),
            }
        if e2e:
            ms = [t * 1e3 for t in e2e]
            slo["e2e_ms"] = {
                "p50": percentile(ms, 50),
                "p90": percentile(ms, 90),
                "p99": percentile(ms, 99),
            }
        if slo:
            out["slo"] = slo
        return out
