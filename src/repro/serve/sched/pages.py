"""Fixed-size KV page pool: k1-aligned pages with checkout/release accounting.

The BDR decode cache (:mod:`repro.nn.decode`) already stores V in k1-aligned
level-1 blocks — sealed blocks are frozen forever and only the open tail
requantizes.  A **page** here is exactly one such block of one attention
layer of one sequence: ``(num_heads, page_size, head_dim)`` V rows plus the
matching pre-transposed K columns and a raw-tail staging area.  Because a
sealed block's payload never changes, pages need no copy-on-write: a
sequence's history is fully described by its page table, reclamation is
"return the page numbers", and a freshly checked-out page may hold stale
bytes (readers only ever touch the rows a cache has written).

The pool is the *only* shared-memory object in the continuous-batching
scheduler, so it owns its own lock: ``stats()`` snapshots are safe to take
from ``health()`` even while the session watchdog is mid-replacement.
Checkout is atomic — ``checkout_pages(owner, n)`` either returns ``n`` pages
or raises :class:`PoolExhausted` having taken none, so a cache can never be
left half-grown.
"""

from __future__ import annotations

import threading

import numpy as np

from ..faults import ServingError

__all__ = ["PagePool", "PoolExhausted"]


class PoolExhausted(ServingError):
    """The pool cannot supply the requested pages (admission/growth denied)."""


class PagePool:
    """Preallocated KV page arenas plus per-owner checkout accounting.

    ``kT`` holds pre-transposed K columns ``(pages, H, head_dim, page_size)``,
    ``v`` the quantized V payloads ``(pages, H, page_size, head_dim)``, and
    ``v_raw`` the raw open-tail rows awaiting requantization.  Owners are
    opaque strings (one per decode stream); ``release_all(owner)`` is the
    eviction path — O(pages held), no data movement.
    """

    def __init__(self, num_heads: int, head_dim: int, page_size: int, total_pages: int):
        if page_size < 1 or total_pages < 1:
            raise ValueError(
                f"PagePool needs positive page_size/total_pages; got "
                f"{page_size}/{total_pages}"
            )
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.page_size = page_size
        self.total_pages = total_pages
        self.kT = np.zeros((total_pages, num_heads, head_dim, page_size))
        self.v = np.zeros((total_pages, num_heads, page_size, head_dim))
        self.v_raw = np.zeros((total_pages, num_heads, page_size, head_dim))
        self._lock = threading.Lock()
        # LIFO free list: recently released pages are likely cache-warm
        self._free = list(range(total_pages - 1, -1, -1))
        self._owned: dict[str, set[int]] = {}
        self._checkouts = 0
        self._releases = 0
        self._high_water = 0
        self._owner_high_water: dict[str, int] = {}

    # ------------------------------------------------------------------
    def checkout_pages(self, owner: str, n: int) -> list[int]:
        """Atomically take ``n`` pages for ``owner`` (all or nothing)."""
        if n < 0:
            raise ValueError(f"cannot checkout {n} pages")
        with self._lock:
            if n > len(self._free):
                raise PoolExhausted(
                    f"pool exhausted: {owner!r} wants {n} pages, "
                    f"{len(self._free)} of {self.total_pages} free"
                )
            pages = [self._free.pop() for _ in range(n)]
            held = self._owned.setdefault(owner, set())
            held.update(pages)
            self._checkouts += n
            used = self.total_pages - len(self._free)
            self._high_water = max(self._high_water, used)
            prior = self._owner_high_water.get(owner, 0)
            self._owner_high_water[owner] = max(prior, len(held))
            return pages

    def checkout_page(self, owner: str) -> int:
        """Take a single page for ``owner`` (raises :class:`PoolExhausted`)."""
        return self.checkout_pages(owner, 1)[0]

    def release_pages(self, owner: str, pages) -> None:
        """Return specific ``pages`` held by ``owner`` to the free list."""
        pages = list(pages)
        with self._lock:
            held = self._owned.get(owner, set())
            for page in pages:
                if page not in held:
                    raise ValueError(f"{owner!r} does not hold page {page}")
            for page in pages:
                held.discard(page)
                self._free.append(page)
            self._releases += len(pages)
            if not held:
                self._owned.pop(owner, None)

    def release_page(self, owner: str, page: int) -> None:
        """Return one page held by ``owner``."""
        self.release_pages(owner, (page,))

    def release_all(self, owner: str) -> int:
        """Return every page held by ``owner``; returns how many."""
        with self._lock:
            held = self._owned.pop(owner, set())
            self._free.extend(held)
            self._releases += len(held)
            return len(held)

    # ------------------------------------------------------------------
    def pages_free(self) -> int:
        with self._lock:
            return len(self._free)

    def pages_held(self, owner: str) -> int:
        with self._lock:
            return len(self._owned.get(owner, ()))

    def leaked(self) -> dict[str, int]:
        """Owners still holding pages (should be empty after close)."""
        with self._lock:
            return {owner: len(held) for owner, held in self._owned.items() if held}

    def stats(self) -> dict:
        """Occupancy/churn snapshot under the pool's own lock only."""
        with self._lock:
            used = self.total_pages - len(self._free)
            per_stream_high = max(self._owner_high_water.values(), default=0)
            return {
                "page_size": self.page_size,
                "pages_total": self.total_pages,
                "pages_free": len(self._free),
                "pages_used": used,
                "high_water": self._high_water,
                "per_stream_high_water": per_stream_high,
                "checkouts": self._checkouts,
                "releases": self._releases,
                "owners": len(self._owned),
            }
