"""The serving throughput measurement protocol, shared by every consumer.

One implementation of the naive-vs-batched comparison backs the
``python -m repro bench-serve`` CLI and the CI headline assertion in
``benchmarks/test_bench_serving.py`` — tuning the protocol (warmup count,
repeats, best-of selection) here changes all of them together, so the
gated number and the reported number can never drift apart.

Protocol: warm both paths outside the timers (first call pays one-time
weight quantization), time ``repeats`` passes over the same request
stream, report the best (max req/s) of each — wall-clock on a shared
machine only gets slower, so best-of-N is the stable estimator.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.quantize import quantize_call_count
from ..spec.serving import SessionConfig

__all__ = [
    "measure_serving_speedup",
    "measure_decode_speedup",
    "measure_forward_speedup",
    "measure_continuous_speedup",
]

#: requests scored before the timed passes, per path
WARMUP_REQUESTS = 2


def measure_serving_speedup(
    model,
    requests: list,
    *,
    fmt: str = "mx6",
    max_batch: int = 16,
    max_wait: float = 0.05,
    repeats: int = 3,
) -> dict:
    """Naive per-request vs batched quantize-once throughput on ``model``.

    ``requests`` are serving-protocol ``score`` payload dicts
    (``{"task": "score", "context": ..., "candidates": [...]}``).  The
    naive path is the historical deployment: ``direct_cast`` + one legacy
    ``score_candidates`` call per request.  The batched path compiles the
    model once and drains the same stream through a micro-batched session.

    Returns a plain payload: ``naive_rps``, ``batched_rps``, ``speedup``,
    plus the parameters used.
    """
    from ..flow.cast import direct_cast
    from ..models.gpt import score_candidates
    from .compile import compile_model

    pairs = [(r["context"], r["candidates"]) for r in requests]

    # --- naive path: per-request legacy calls on a direct-cast model ----
    direct_cast(model, fmt)
    for context, candidates in pairs[:WARMUP_REQUESTS]:
        score_candidates(model, context, candidates)
    naive_rps = 0.0
    naive_quant_calls = 0
    for repeat in range(repeats):
        # the quantize-call count piggybacks on the first timed pass (two
        # counter reads, no extra benchmark work)
        calls_before = quantize_call_count()
        start = time.perf_counter()
        for context, candidates in pairs:
            score_candidates(model, context, candidates)
        naive_rps = max(naive_rps, len(pairs) / (time.perf_counter() - start))
        if repeat == 0:
            naive_quant_calls = quantize_call_count() - calls_before

    # --- batched path: compile once, serve through a session ------------
    config = SessionConfig(format=fmt, max_batch=max_batch, max_wait=max_wait)
    compiled = compile_model(model, config=config)
    compiled.run(requests[:WARMUP_REQUESTS])
    batched_rps = 0.0
    batched_quant_calls = 0
    reliability: dict = {}
    for repeat in range(repeats):
        with compiled.session(config) as session:
            calls_before = quantize_call_count()
            start = time.perf_counter()
            session.map(requests)
            batched_rps = max(
                batched_rps, len(requests) / (time.perf_counter() - start)
            )
            if repeat == 0:
                batched_quant_calls = quantize_call_count() - calls_before
            # the error/recovery taxonomy of the last timed pass: all-zero
            # on a healthy run, and the first place injected faults or
            # shed/retry behavior shows up in bench output
            reliability = session.summary()["reliability"]

    # --- decode metrics: a short stream through a session ---------------
    prompt = np.asarray(requests[0]["context"], dtype=np.int64)[:8]
    decode = {}
    with compiled.session(config) as session:
        for token in session.stream(
            {"task": "generate", "prompt": prompt, "max_new_tokens": 16}
        ):
            pass
        decode = session.summary().get("decode", {})

    n = len(requests)
    return {
        "format": fmt,
        "requests": n,
        "max_batch": max_batch,
        "repeats": repeats,
        "naive_rps": naive_rps,
        "batched_rps": batched_rps,
        "speedup": batched_rps / naive_rps if naive_rps else float("inf"),
        # engine invocations per request on each path: the residency
        # observable — regressions here surface even when wall-clock noise
        # hides them
        "naive_quant_calls_per_request": naive_quant_calls / n if n else 0.0,
        "batched_quant_calls_per_request": batched_quant_calls / n if n else 0.0,
        "decode": decode,
        "reliability": reliability,
    }


def measure_forward_speedup(
    model,
    *,
    fmt: str = "mx6",
    requests: int = 48,
    repeats: int = 8,
    seed: int = 0,
) -> dict:
    """Batched scored-forward throughput: pre-residency vs fused schedule.

    The forward-path headline (``BENCH_forward.json``): one compiled model
    serves the same batched score stream twice per repeat — once with
    every fusion stage disabled (:func:`~repro.nn.residency
    .fusion_disabled` restores the pre-residency execution end to end,
    kernels included) and once with the resident/fused schedule.  The two
    passes alternate within each repeat, so machine-load drift hits both
    sides equally; the reported ``speedup`` is the *median of the
    per-repeat ratios* (the drift-cancelling estimator), with best-of
    throughputs reported alongside.  Outputs of the two schedules are
    bit-identical — asserted here on every run, so the speedup can never
    come from computing something else.

    Also reports the quantize-call counts of one pass per schedule: the
    structural residency observable (each unique activation quantized at
    most once per step).
    """
    from ..data.synthetic import SyntheticLanguage
    from ..data.tasks import make_task
    from ..nn.residency import fusion_disabled
    from .compile import compile_model

    lang_vocab = getattr(model, "vocab_size", None)
    lang = SyntheticLanguage(seed=seed)
    if lang_vocab is not None and lang_vocab < lang.vocab_size:
        raise ValueError(
            f"model vocab {lang_vocab} smaller than the benchmark "
            f"language's {lang.vocab_size}"
        )
    examples = make_task("recall", lang, n_examples=requests, seed=seed + 1)
    stream = [
        {"task": "score", "context": ex.context, "candidates": ex.candidates}
        for ex in examples
    ]

    compiled = compile_model(model, fmt)
    # the identity check doubles as warmup and as the quantize-call
    # measurement for each schedule (counter deltas cost nothing)
    calls_before = quantize_call_count()
    fused_results = compiled.run(stream)
    fused_quant_calls = quantize_call_count() - calls_before
    with fusion_disabled():
        calls_before = quantize_call_count()
        baseline_results = compiled.run(stream)
        baseline_quant_calls = quantize_call_count() - calls_before
    if fused_results != baseline_results:
        raise AssertionError(
            "fused and pre-residency schedules disagree; refusing to "
            "benchmark a speedup that changes results"
        )

    n = len(stream)
    baseline_rps = fused_rps = 0.0
    ratios = []
    for _ in range(repeats):
        with fusion_disabled():
            start = time.perf_counter()
            compiled.run(stream)
            base = n / (time.perf_counter() - start)
        start = time.perf_counter()
        compiled.run(stream)
        fused = n / (time.perf_counter() - start)
        baseline_rps = max(baseline_rps, base)
        fused_rps = max(fused_rps, fused)
        ratios.append(fused / base)

    return {
        "family": type(model).__name__,
        "format": fmt,
        "requests": n,
        "repeats": repeats,
        "baseline_rps": baseline_rps,
        "fused_rps": fused_rps,
        "speedup": sorted(ratios)[len(ratios) // 2],
        "speedup_best": fused_rps / baseline_rps if baseline_rps else float("inf"),
        "baseline_quant_calls_per_request": baseline_quant_calls / n,
        "fused_quant_calls_per_request": fused_quant_calls / n,
    }


def measure_decode_speedup(
    model,
    *,
    fmt: str | None = "mx6",
    batch: int = 8,
    prompt_len: int = 64,
    max_new_tokens: int = 32,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Full-recompute vs KV-cached greedy decoding throughput (tokens/sec).

    Works over both autoregressive families: causal LMs decode ``batch``
    prompts of ``prompt_len`` tokens for ``max_new_tokens`` steps through
    :meth:`CausalLMAdapter._greedy_batch`; seq2seq models greedy-decode
    ``batch`` sources through :meth:`TranslationAdapter.greedy_decode`
    (``prompt_len`` is the source length, ``max_new_tokens`` the decode
    budget).  Both paths share the same compiled (quantize-once) weights,
    so the ratio isolates the incremental-decoding win.  Best-of-``repeats``
    per path, same protocol as :func:`measure_serving_speedup`.
    """
    from .adapters import TranslationAdapter, adapter_for
    from .compile import compile_model

    compiled = compile_model(model, fmt)
    adapter = compiled.adapter
    rng = np.random.default_rng(seed)

    if isinstance(adapter, TranslationAdapter):
        vocab = model.vocab_size
        sources = rng.integers(0, vocab, size=(batch, prompt_len), dtype=np.int64)
        #: an id outside the vocab so no row ever finishes early — every
        #: repeat decodes the same number of tokens
        never_eos = -1

        def run(use_cache: bool) -> int:
            out = adapter.greedy_decode(
                sources, max_len=max_new_tokens, bos=0, eos=never_eos,
                use_cache=use_cache,
            )
            return sum(len(row) for row in out)
    else:
        vocab = model.vocab_size
        prompts = rng.integers(0, vocab, size=(batch, prompt_len), dtype=np.int64)

        def run(use_cache: bool) -> int:
            out = adapter._greedy_batch(
                prompts, max_new_tokens, eos=None, use_cache=use_cache
            )
            return sum(len(row) for row in out)

    run(True)  # warm both weight memos and the decode-state allocation path
    run(False)
    full_tps = cached_tps = 0.0
    full_quant_calls = cached_quant_calls = 0
    produced_tokens = 1
    for repeat in range(repeats):
        # quantize-call counts piggyback on the first timed pass of each
        # path (two counter reads, no extra generations)
        calls_before = quantize_call_count()
        start = time.perf_counter()
        produced = run(False)
        full_tps = max(full_tps, produced / (time.perf_counter() - start))
        if repeat == 0:
            full_quant_calls = quantize_call_count() - calls_before
        calls_before = quantize_call_count()
        start = time.perf_counter()
        produced = run(True)
        cached_tps = max(cached_tps, produced / (time.perf_counter() - start))
        if repeat == 0:
            cached_quant_calls = quantize_call_count() - calls_before
            produced_tokens = produced

    per_token = max(produced_tokens, 1)
    return {
        "family": type(model).__name__,
        "format": fmt,
        "batch": batch,
        "prompt_len": prompt_len,
        "max_new_tokens": max_new_tokens,
        "repeats": repeats,
        "full_tokens_per_sec": full_tps,
        "cached_tokens_per_sec": cached_tps,
        "speedup": cached_tps / full_tps if full_tps else float("inf"),
        # engine invocations per generated token on each path — the
        # residency observable alongside the latency numbers
        "full_quant_calls_per_token": full_quant_calls / per_token,
        "cached_quant_calls_per_token": cached_quant_calls / per_token,
    }


def measure_continuous_speedup(
    model,
    *,
    fmt: str = "mx6",
    streams: int = 64,
    max_new_tokens: int = 8,
    prompt_lens: tuple = (4, 88),
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Lockstep ``generate`` vs continuous batching on ragged prompts.

    ``streams`` ragged prompts (lengths uniform over ``prompt_lens``) are
    drained twice through the same compiled model: once through a classic
    session (the micro-batcher's equal-shape grouping degrades ragged
    ``generate`` traffic to serial singleton decodes), once through a
    session with the continuous scheduler (token-granularity batching over
    the paged KV pool).  Tokens/sec is the whole-drain wall clock,
    best-of-``repeats`` per path.

    Both paths are checked **bit-identical** to the serial
    ``generate_stream`` decode of every prompt before any number is
    reported, and the page pool must come back empty — an
    :class:`AssertionError` refuses the measurement otherwise.
    """
    from ..spec.serving import SessionConfig
    from .compile import compile_model

    compiled = compile_model(model, fmt)
    adapter = compiled.adapter
    rng = np.random.default_rng(seed)
    vocab = model.vocab_size
    lo, hi = prompt_lens
    prompts = [
        rng.integers(1, vocab, size=int(n))
        for n in rng.integers(lo, hi, size=streams)
    ]
    requests = [
        {"task": "generate", "prompt": p.tolist(), "max_new_tokens": max_new_tokens}
        for p in prompts
    ]

    truth = [list(adapter.generate_stream(p, max_new_tokens)) for p in prompts]
    total_tokens = sum(len(t) for t in truth)

    def drain(session) -> list:
        return [r["tokens"] for r in session.map(requests)]

    lockstep_tps = continuous_tps = 0.0
    lockstep_cfg = SessionConfig(format=fmt, max_batch=streams, max_wait=0.05)
    with compiled.session(lockstep_cfg) as session:
        if drain(session) != truth:  # warm pass doubles as the identity gate
            raise AssertionError(
                "lockstep generate diverged from serial decode; "
                "refusing to report a speedup"
            )
        for _ in range(repeats):
            start = time.perf_counter()
            drain(session)
            lockstep_tps = max(
                lockstep_tps, total_tokens / (time.perf_counter() - start)
            )
        lockstep_summary = session.summary()

    continuous_cfg = SessionConfig(format=fmt, scheduler={"max_streams": streams})
    with compiled.session(continuous_cfg) as session:
        if drain(session) != truth:
            raise AssertionError(
                "continuous batching diverged from serial decode; "
                "refusing to report a speedup"
            )
        for _ in range(repeats):
            start = time.perf_counter()
            drain(session)
            continuous_tps = max(
                continuous_tps, total_tokens / (time.perf_counter() - start)
            )
        summary = session.summary()
        pool = session._sched.pool
    leaked = pool.leaked()
    if leaked:
        raise AssertionError(f"page pool leaked after the drain: {leaked}")

    sched = summary["sched"]
    return {
        "family": type(model).__name__,
        "format": fmt,
        "streams": streams,
        "max_new_tokens": max_new_tokens,
        "prompt_lens": list(prompt_lens),
        "repeats": repeats,
        "tokens_per_pass": total_tokens,
        "lockstep_tokens_per_sec": lockstep_tps,
        "continuous_tokens_per_sec": continuous_tps,
        "speedup": continuous_tps / lockstep_tps if lockstep_tps else float("inf"),
        # the satellite observable: how often the classic path fell back
        # to serial decode on this ragged stream
        "lockstep_serial_fallbacks": lockstep_summary.get("decode", {}).get(
            "serial_fallbacks", 0
        ),
        "pool": sched["pool"],
        "preempted": sched["preempted"],
        "slo": sched["slo"],
    }
