"""The serving throughput measurement protocol, shared by every consumer.

One implementation of the naive-vs-batched comparison backs the
``python -m repro bench-serve`` CLI and the CI headline assertion in
``benchmarks/test_bench_serving.py`` — tuning the protocol (warmup count,
repeats, best-of selection) here changes all of them together, so the
gated number and the reported number can never drift apart.

Protocol: warm both paths outside the timers (first call pays one-time
weight quantization), time ``repeats`` passes over the same request
stream, report the best (max req/s) of each — wall-clock on a shared
machine only gets slower, so best-of-N is the stable estimator.
"""

from __future__ import annotations

import time

from ..spec.serving import SessionConfig

__all__ = ["measure_serving_speedup"]

#: requests scored before the timed passes, per path
WARMUP_REQUESTS = 2


def measure_serving_speedup(
    model,
    requests: list,
    *,
    fmt: str = "mx6",
    max_batch: int = 16,
    max_wait: float = 0.05,
    repeats: int = 3,
) -> dict:
    """Naive per-request vs batched quantize-once throughput on ``model``.

    ``requests`` are serving-protocol ``score`` payload dicts
    (``{"task": "score", "context": ..., "candidates": [...]}``).  The
    naive path is the historical deployment: ``direct_cast`` + one legacy
    ``score_candidates`` call per request.  The batched path compiles the
    model once and drains the same stream through a micro-batched session.

    Returns a plain payload: ``naive_rps``, ``batched_rps``, ``speedup``,
    plus the parameters used.
    """
    from ..flow.cast import direct_cast
    from ..models.gpt import score_candidates
    from .compile import compile_model

    pairs = [(r["context"], r["candidates"]) for r in requests]

    # --- naive path: per-request legacy calls on a direct-cast model ----
    direct_cast(model, fmt)
    for context, candidates in pairs[:WARMUP_REQUESTS]:
        score_candidates(model, context, candidates)
    naive_rps = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for context, candidates in pairs:
            score_candidates(model, context, candidates)
        naive_rps = max(naive_rps, len(pairs) / (time.perf_counter() - start))

    # --- batched path: compile once, serve through a session ------------
    config = SessionConfig(format=fmt, max_batch=max_batch, max_wait=max_wait)
    compiled = compile_model(model, config=config)
    compiled.run(requests[:WARMUP_REQUESTS])
    batched_rps = 0.0
    for _ in range(repeats):
        with compiled.session(config) as session:
            start = time.perf_counter()
            session.map(requests)
            batched_rps = max(
                batched_rps, len(requests) / (time.perf_counter() - start)
            )

    return {
        "format": fmt,
        "requests": len(requests),
        "max_batch": max_batch,
        "repeats": repeats,
        "naive_rps": naive_rps,
        "batched_rps": batched_rps,
        "speedup": batched_rps / naive_rps if naive_rps else float("inf"),
    }
