"""Task adapters: one serving protocol over every model family.

Each model family historically exposed a bespoke inference entry point
(``GPT.score_candidates``, ``DLRM.predict_proba``, ``BertQA.predict_spans``,
``TinyWav2Vec.transcribe``, ...).  Adapters collapse those onto a single
protocol of five task verbs —

* ``classify`` — discrete predictions (CTR probabilities, image labels,
  answer spans, phone transcriptions);
* ``score``    — likelihood-ranked multiple choice (the Table IV tasks);
* ``generate`` — autoregressive decoding (causal LM continuations,
  translation greedy decode);
* ``embed``    — pooled encoder representations;
* ``denoise``  — diffusion epsilon prediction.

An adapter receives a *batch* of requests and is responsible for collating
them so that batched execution is **bit-identical** to serial execution:

* causal transformers right-pad to the longest sequence (positions of real
  tokens are unchanged and the causal mask stops padding from leaking into
  real positions — masked attention columns underflow to exactly 0.0);
* bidirectional models (BERT, wav2vec) group requests by sequence length
  instead of padding;
* row-independent models (DLRM, vision, diffusion) concatenate rows.

The legacy model methods now delegate here (see :func:`adapter_for`), so
one implementation serves both the old per-model API and the
:mod:`repro.serve` session layer.
"""

from __future__ import annotations

import threading
from collections import Counter
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..nn import functional as F
from ..nn.layers import Module
from ..nn.residency import fusion_enabled
from ..nn.tensor import is_grad_enabled, no_grad
from .faults import fault_point

__all__ = [
    "Request",
    "TaskAdapter",
    "TASKS",
    "register_adapter",
    "adapter_for",
    "CausalLMAdapter",
    "BertEmbedAdapter",
    "BertSpanAdapter",
    "CTRAdapter",
    "VisionAdapter",
    "SpeechAdapter",
    "TranslationAdapter",
    "DiffusionAdapter",
]

#: The task verbs of the serving protocol.
TASKS = ("classify", "score", "generate", "embed", "denoise")


@dataclass
class Request:
    """One unit of serving work: a task verb plus its payload."""

    task: str
    payload: dict = field(default_factory=dict)

    @staticmethod
    def coerce(obj) -> "Request":
        """Accept a :class:`Request` or a ``{"task": ..., **payload}`` dict."""
        if isinstance(obj, Request):
            return obj
        if isinstance(obj, dict):
            if "task" not in obj:
                raise ValueError("a request dict needs a 'task' key")
            payload = {k: v for k, v in obj.items() if k != "task"}
            return Request(task=obj["task"], payload=payload)
        raise TypeError(f"cannot coerce {type(obj).__name__} into a Request")


# Ragged generate batches degrade to serial decode (each odd-shaped prompt
# forms its own group of one); the process-wide counter makes that silent
# fallback observable — surfaced as ``decode.serial_fallbacks`` in
# SessionMetrics summaries and by ``bench-decode``.
_FALLBACK_LOCK = threading.Lock()
_SERIAL_FALLBACKS = 0


def _record_fallbacks(n: int) -> None:
    global _SERIAL_FALLBACKS
    if n:
        with _FALLBACK_LOCK:
            _SERIAL_FALLBACKS += n


def decode_fallback_count() -> int:
    """Total requests (process-wide) that decoded serially because their
    prompt shape matched nothing else in their ``generate`` batch."""
    with _FALLBACK_LOCK:
        return _SERIAL_FALLBACKS


def _run_grouped(items: Sequence, key_fn, run_group) -> list:
    """Run ``items`` in groups of equal ``key_fn``, preserving order.

    ``run_group(items_subset) -> list`` computes results for one group;
    results are scattered back to the original request order.
    """
    groups: dict = {}
    for i, item in enumerate(items):
        groups.setdefault(key_fn(item), []).append(i)
    out = [None] * len(items)
    for indices in groups.values():
        results = run_group([items[i] for i in indices])
        for i, result in zip(indices, results):
            out[i] = result
    return out


def _batch_rows(arrays: Sequence[np.ndarray], batched_ndim: int):
    """Collate per-request arrays into one batch along a leading row axis.

    An array with ``batched_ndim - 1`` dims is a single example (it gains a
    leading axis); one with ``batched_ndim`` dims is a micro-batch of rows.
    Returns ``(stacked, spans)`` with ``spans[i] = (single, start, stop)``
    locating request ``i``'s rows in the stack.
    """
    spans, rows, offset = [], [], 0
    for a in arrays:
        single = a.ndim == batched_ndim - 1
        n = 1 if single else a.shape[0]
        rows.append(a[None] if single else a)
        spans.append((single, offset, offset + n))
        offset += n
    return np.concatenate(rows), spans


def _scatter_rows(row_results, spans, wrap=None) -> list:
    """Slice row-aligned batch results back per request (inverse of
    :func:`_batch_rows`); ``row_results`` is sliceable by row range (array
    or list).  ``wrap(value, single)`` post-processes each result."""
    out = []
    for single, start, stop in spans:
        chunk = row_results[start:stop]
        value = chunk[0] if single else chunk
        out.append(wrap(value, single) if wrap else value)
    return out


class TaskAdapter:
    """Base adapter: task dispatch over a homogeneous model family.

    Subclasses implement the task verbs they support as methods taking a
    list of payload dicts and returning a list of results (same order).
    """

    #: task verbs this adapter serves
    tasks: tuple[str, ...] = ()

    def __init__(self, model: Module):
        self.model = model

    # ------------------------------------------------------------------
    def run_batch(self, requests: Sequence[Request]) -> list:
        """Execute a mixed batch, grouped by task, in request order."""
        fault_point("adapter.run_batch")
        requests = [Request.coerce(r) for r in requests]
        for request in requests:
            if request.task not in self.tasks:
                raise ValueError(
                    f"{type(self).__name__} serves tasks {self.tasks}, "
                    f"got {request.task!r}"
                )
        return _run_grouped(
            requests,
            key_fn=lambda r: r.task,
            run_group=lambda group: getattr(self, group[0].task)(
                [r.payload for r in group]
            ),
        )

    def run_one(self, request) -> object:
        return self.run_batch([Request.coerce(request)])[0]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: list[tuple[type, type]] = []


def register_adapter(model_cls: type, adapter_cls: type) -> None:
    """Register ``adapter_cls`` as the serving adapter for ``model_cls``.

    Later registrations win, so applications can override a family's
    adapter without touching the registry order below.
    """
    _REGISTRY.insert(0, (model_cls, adapter_cls))


def adapter_for(model: Module) -> TaskAdapter:
    """Resolve (and cache on the instance) the adapter serving ``model``."""
    cached = getattr(model, "_serve_adapter", None)
    if cached is not None and cached.model is model:
        return cached
    for model_cls, adapter_cls in _REGISTRY:
        if isinstance(model, model_cls):
            adapter = adapter_cls(model)
            model._serve_adapter = adapter
            return adapter
    raise TypeError(
        f"no serving adapter registered for {type(model).__name__}; "
        "use repro.serve.register_adapter"
    )


# ----------------------------------------------------------------------
# Causal language models (GPT ladder, MoE)
# ----------------------------------------------------------------------
class CausalLMAdapter(TaskAdapter):
    """Score and generate over decoder-only LMs (GPT, MoEGPT).

    ``score`` payloads: ``{"context": tokens, "candidates": [tokens, ...]}``
    -> ``{"choice": int, "scores": [float, ...]}``; a payload with a single
    ``continuation`` instead returns its total log-probability.

    ``generate`` payloads: ``{"prompt": tokens, "max_new_tokens": int}``
    -> ``{"tokens": [int, ...]}`` (greedy decoding, optional ``eos``).
    """

    tasks = ("score", "generate")

    # -- scoring -------------------------------------------------------
    def _pair_rows(self, pairs: Sequence[tuple[np.ndarray, np.ndarray]]):
        """Per (context, continuation) pair: the (input_row, rows, targets)
        triple replicating ``sequence_logprob``'s indexing exactly."""
        max_len = self.model.config.max_len
        prepared = []
        for context, continuation in pairs:
            context = np.asarray(context)
            continuation = np.asarray(continuation)
            tokens = np.concatenate([context, continuation])[-max_len:]
            n = min(len(continuation), len(tokens) - 1)
            rows = np.arange(len(tokens) - 1 - n, len(tokens) - 1)
            prepared.append((tokens[:-1], rows, tokens[-n:] if n else tokens[:0]))
        return prepared

    def _pair_logprobs(self, pairs) -> list[float]:
        """Batched ``sequence_logprob`` over (context, continuation) pairs.

        Rows are right-padded to the longest input; the causal mask keeps
        real positions bit-identical to unpadded per-pair execution.
        """
        prepared = self._pair_rows(pairs)
        if not prepared:
            return []
        if fusion_enabled("epilogue") and not is_grad_enabled():
            return self._pair_logprobs_fused(prepared)
        width = max(len(inp) for inp, _, _ in prepared)
        batch = np.zeros((len(prepared), width), dtype=np.int64)
        for i, (inp, _, _) in enumerate(prepared):
            batch[i, : len(inp)] = inp
        logits = self.model.forward(batch)
        logp = F.log_softmax(logits, axis=-1).data
        return [
            float(logp[i, rows, targets].sum())
            for i, (_, rows, targets) in enumerate(prepared)
        ]

    def _pair_logprobs_fused(self, prepared) -> list[float]:
        """Residency-scheduled scoring over prepared (input, rows, targets).

        Three row-local savings, each bit-identical to the plain path:

        * **cross-pair row residency** — candidates of one request share
          their context verbatim, so their model *input rows* are often
          byte-identical; with exact dot products (the
          :meth:`_rows_forward_exact` gate) batch rows are fully
          independent bitwise, so each unique row runs the forward once
          and its activations are quantized once for every pair it serves;
        * **row-pruned head** — ``forward_rows`` gathers the continuation
          rows before the final LayerNorm/LM head, skipping both for
          every unread position;
        * **gather-first log-softmax** — normalization runs along the
          vocab axis only, so normalizing just the gathered rows replays
          the full-tensor result exactly (needs no format gate).
        """
        exact = self._rows_forward_exact()
        if exact:
            unique: dict[bytes, int] = {}
            inputs, pair_to_row = [], []
            for inp, _, _ in prepared:
                key = inp.tobytes()
                row = unique.get(key)
                if row is None:
                    row = unique[key] = len(inputs)
                    inputs.append(inp)
                pair_to_row.append(row)
        else:
            inputs = [inp for inp, _, _ in prepared]
            pair_to_row = list(range(len(prepared)))
        width = max(len(inp) for inp in inputs)
        batch = np.zeros((len(inputs), width), dtype=np.int64)
        for i, inp in enumerate(inputs):
            batch[i, : len(inp)] = inp

        pair_idx = np.concatenate(
            [
                np.full(len(rows), pair_to_row[i])
                for i, (_, rows, _) in enumerate(prepared)
            ]
        )
        row_idx = np.concatenate([rows for _, rows, _ in prepared])
        target_idx = np.concatenate([targets for _, _, targets in prepared])
        if len(row_idx) == 0:
            return [0.0 for _ in prepared]
        if exact:
            sel = self.model.forward_rows(batch, pair_idx, row_idx).data
        else:
            sel = self.model.forward(batch).data[pair_idx, row_idx]
        shifted = sel - sel.max(axis=-1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        picked = logp[np.arange(len(row_idx)), target_idx]
        out, offset = [], 0
        for _, rows, _ in prepared:
            out.append(float(picked[offset : offset + len(rows)].sum()))
            offset += len(rows)
        return out

    def _rows_forward_exact(self) -> bool:
        """Whether row-subset evaluation is bit-identical for this model.

        Row dedup shrinks the batch fed through *every* layer and
        ``forward_rows`` prunes the head, so bit-identity needs exact
        (order-independent) dot products throughout: every quantized
        module in the model must pass
        :func:`~repro.nn.residency.supports_fused_projection` — a single
        FP32 or software-scaled layer (e.g. a first/last-layer-high
        policy) disables the row schedule, since its matmul bits may
        depend on the BLAS M-partition."""
        from ..nn.residency import supports_fused_projection

        if not hasattr(self.model, "forward_rows"):
            return False
        specs = [
            module.quant
            for module in self.model.modules()
            if hasattr(module, "quant")
        ]
        return bool(specs) and all(supports_fused_projection(spec) for spec in specs)

    def sequence_logprob(self, context, continuation) -> float:
        """Total log-probability of ``continuation`` given ``context``."""
        with no_grad():
            return self._pair_logprobs([(context, continuation)])[0]

    def score(self, items: Sequence[dict]) -> list:
        pairs, spans = [], []
        for item in items:
            context = item["context"]
            if "candidates" in item:
                candidates = item["candidates"]
            else:
                candidates = [item["continuation"]]
            spans.append((len(pairs), len(candidates), "candidates" in item))
            pairs.extend((context, candidate) for candidate in candidates)
        logprobs = self._pair_logprobs(pairs)
        results = []
        for start, count, multiple in spans:
            scores = logprobs[start : start + count]
            if multiple:
                results.append({"choice": int(np.argmax(scores)), "scores": scores})
            else:
                results.append({"logprob": scores[0]})
        return results

    # -- generation ----------------------------------------------------
    def _use_cache(self, use_cache: bool | None) -> bool:
        """Resolve the caching decision (None = auto via the decode gate)."""
        if use_cache is not None:
            return bool(use_cache)
        from ..nn.decode import supports_cached_decode

        return supports_cached_decode(self.model)

    def _decode_loop(self, batch: int, use_cache: bool):
        """The one stepping engine behind streamed and batched generation.

        Returns ``step(tokens_2d, n) -> (B, V) next-token logit rows`` over
        the buffer prefix ``tokens_2d[:, :n]``, owning the decode-state
        lifecycle: lazy init, and sliding-window eviction (a window shift
        moves every cached entry's absolute position, so the state resets
        and the shifted window prefills from scratch).  Keeping streamed
        and batched generation on this single closure means an eviction or
        caching fix can never desynchronize the two paths.
        """
        model = self.model
        max_len = model.config.max_len
        state, start = None, 0

        def step(tokens_2d: np.ndarray, n: int) -> np.ndarray:
            nonlocal state, start
            window_start = max(0, n - max_len)
            if not use_cache:
                return model.forward(tokens_2d[:, window_start:n]).data[:, -1]
            if state is None:
                state = model.init_decode_state(batch=batch)
                start = window_start
            elif window_start != start:
                state.reset()
                start = window_start
            return model.forward_step(tokens_2d[:, start:n], state).data[:, -1]

        return step

    def generate_stream(
        self,
        prompt,
        max_new_tokens: int,
        eos: int | None = None,
        use_cache: bool | None = None,
    ) -> Iterator[int]:
        """Greedy continuation, yielded token by token.

        ``use_cache=None`` auto-selects KV-cached incremental decoding when
        it is bit-identical to full recompute
        (:func:`~repro.nn.decode.supports_cached_decode`); ``False`` forces
        the historical full-prefix path.  Prompts longer than the model
        window decode over the trailing ``max_len`` tokens; once the window
        must slide, absolute positions shift for every cached entry, so the
        cache is evicted wholesale and rebuilt over the shifted window.

        ``no_grad`` is scoped per step, never held across a ``yield`` — a
        suspended generator must not leave the consumer's thread with
        autograd silently disabled.
        """
        prompt = np.asarray(prompt, dtype=np.int64)
        if prompt.ndim != 1:
            raise ValueError(f"prompt must be 1-D, got shape {prompt.shape}")
        step = self._decode_loop(batch=1, use_cache=self._use_cache(use_cache))
        # preallocated token buffer: np.append per token is O(T^2) churn
        tokens = np.empty((1, len(prompt) + max_new_tokens), dtype=np.int64)
        tokens[0, : len(prompt)] = prompt
        n = len(prompt)
        for _ in range(max_new_tokens):
            fault_point("adapter.decode_step")
            with no_grad():
                nxt = int(np.argmax(step(tokens, n)[0]))
            tokens[0, n] = nxt
            n += 1
            yield nxt
            if eos is not None and nxt == eos:
                return

    def _greedy_batch(
        self,
        prompts: np.ndarray,
        max_new_tokens: int,
        eos: int | None,
        use_cache: bool | None = None,
    ) -> list[list[int]]:
        """Greedy-decode equal-length prompts together (B, P) -> token lists.

        Rows are batch-independent, so each row's output matches its
        serial :meth:`generate_stream` run; a finished row keeps riding in
        the batch (its continuation is discarded at truncation), exactly
        like the translation adapter's finished-row handling.
        """
        batch, n_prompt = prompts.shape
        step = self._decode_loop(batch=batch, use_cache=self._use_cache(use_cache))
        tokens = np.empty((batch, n_prompt + max_new_tokens), dtype=np.int64)
        tokens[:, :n_prompt] = prompts
        n = n_prompt
        finished = np.zeros(batch, dtype=bool)
        steps = 0
        for _ in range(max_new_tokens):
            with no_grad():
                nxt = np.argmax(step(tokens, n), axis=-1)
            tokens[:, n] = nxt
            n += 1
            steps += 1
            if eos is not None:
                finished |= nxt == eos
                if finished.all():
                    break
        outputs = []
        for row in tokens[:, n_prompt : n_prompt + steps]:
            out = []
            for token in row:
                out.append(int(token))
                if eos is not None and token == eos:
                    break
            outputs.append(out)
        return outputs

    def generate(self, items: Sequence[dict]) -> list:
        """Batched greedy decoding: equal-shape requests step together.

        Grouping by (prompt length, budget, eos) keeps collation trivial —
        rows decode in lockstep and stay bit-identical to serial streaming
        (batch independence of every op in the stack).
        """

        def run_group(group):
            prompts = []
            for item in group:
                prompt = np.asarray(item["prompt"], dtype=np.int64)
                if prompt.ndim != 1:
                    raise ValueError(f"prompt must be 1-D, got shape {prompt.shape}")
                prompts.append(prompt)
            first = group[0]
            produced = self._greedy_batch(
                np.stack(prompts),
                int(first.get("max_new_tokens", 16)),
                first.get("eos"),
            )
            return [{"tokens": row} for row in produced]

        def key_fn(item):
            return (
                np.asarray(item["prompt"]).shape,
                int(item.get("max_new_tokens", 16)),
                item.get("eos"),
            )

        if len(items) > 1:
            # every singleton group is a request that decodes serially
            # while co-riders existed — the ragged-prompt fallback
            sizes = Counter(key_fn(item) for item in items)
            _record_fallbacks(sum(1 for count in sizes.values() if count == 1))
        return _run_grouped(items, key_fn=key_fn, run_group=run_group)


# ----------------------------------------------------------------------
# Encoder models (BERT)
# ----------------------------------------------------------------------
class BertEmbedAdapter(TaskAdapter):
    """Mean-pooled encoder representations from :class:`BertEncoder`.

    ``embed`` payloads: ``{"tokens": (T,) or (B, T)}`` -> ``(D,)`` or
    ``(B, D)`` arrays.  The encoder is bidirectional, so requests batch by
    sequence length rather than padding.
    """

    tasks = ("embed",)

    def embed(self, items: Sequence[dict]) -> list:
        def run_group(group):
            stacked, spans = _batch_rows(
                [np.asarray(item["tokens"]) for item in group], batched_ndim=2
            )
            hidden = self.model.encode(stacked).data.mean(axis=1)
            return _scatter_rows(hidden, spans)

        return _run_grouped(
            items, key_fn=lambda item: np.asarray(item["tokens"]).shape[-1],
            run_group=run_group,
        )


class BertSpanAdapter(TaskAdapter):
    """Span extraction over :class:`BertQA` (the SQuAD-style head).

    ``classify`` payloads: ``{"tokens": (B, T)}`` -> ``(starts, ends)``
    integer arrays, exactly the legacy ``predict_spans`` contract.
    """

    tasks = ("classify",)

    def predict_spans(self, tokens: np.ndarray):
        start_logits, end_logits = self.model.forward(tokens)
        starts = np.argmax(start_logits.data, axis=-1)
        ends = np.maximum(np.argmax(end_logits.data, axis=-1), starts)
        return starts, ends

    def classify(self, items: Sequence[dict]) -> list:
        def run_group(group):
            stacked, spans = _batch_rows(
                [np.asarray(item["tokens"]) for item in group], batched_ndim=2
            )
            starts, ends = self.predict_spans(stacked)
            return list(zip(_scatter_rows(starts, spans), _scatter_rows(ends, spans)))

        return _run_grouped(
            items, key_fn=lambda item: np.asarray(item["tokens"]).shape[-1],
            run_group=run_group,
        )


# ----------------------------------------------------------------------
# Recommendation (DLRM)
# ----------------------------------------------------------------------
class CTRAdapter(TaskAdapter):
    """Click-probability prediction over :class:`DLRM`.

    ``classify`` payloads: ``{"dense": (D,) or (B, D), "cats": (F,) or
    (B, F)}`` -> probability scalar / ``(B,)`` array.  Rows are
    independent, so requests concatenate into one forward.
    """

    tasks = ("classify",)

    def predict_proba(self, dense, cats) -> np.ndarray:
        logits = self.model.forward(dense, cats)
        return 1.0 / (1.0 + np.exp(-logits.data))

    def classify(self, items: Sequence[dict]) -> list:
        dense, spans = _batch_rows(
            [np.asarray(item["dense"], dtype=np.float64) for item in items],
            batched_ndim=2,
        )
        cats, _ = _batch_rows([np.asarray(item["cats"]) for item in items], 2)
        probs = self.predict_proba(dense, cats)
        return _scatter_rows(
            probs, spans, wrap=lambda value, single: float(value) if single else value
        )


# ----------------------------------------------------------------------
# Vision (ResNet / MobileNet / ViT stand-ins)
# ----------------------------------------------------------------------
class VisionAdapter(TaskAdapter):
    """Image classification over the vision family.

    ``classify`` payloads: ``{"images": (C, H, W) or (B, C, H, W)}`` ->
    ``{"label": int, "logits": (K,)}`` or batched arrays.
    """

    tasks = ("classify",)

    def classify(self, items: Sequence[dict]) -> list:
        def run_group(group):
            stacked, spans = _batch_rows(
                [np.asarray(item["images"], dtype=np.float64) for item in group],
                batched_ndim=4,
            )
            logits = self.model.forward(stacked).data
            labels = np.argmax(logits, axis=-1)
            return [
                {"label": int(label) if single else label, "logits": chunk}
                for label, chunk, single in zip(
                    _scatter_rows(labels, spans),
                    _scatter_rows(logits, spans),
                    (single for single, _, _ in spans),
                )
            ]

        return _run_grouped(
            items,
            key_fn=lambda item: np.asarray(item["images"]).shape[-3:],
            run_group=run_group,
        )


# ----------------------------------------------------------------------
# Speech (wav2vec stand-in)
# ----------------------------------------------------------------------
class SpeechAdapter(TaskAdapter):
    """Frame classification + repeat collapse over :class:`TinyWav2Vec`.

    ``classify`` payloads: ``{"frames": (T, F) or (B, T, F)}`` -> a phone
    sequence (list of ints) or a list of sequences.  The context network
    is bidirectional, so requests group by frame count.
    """

    tasks = ("classify",)

    def transcribe(self, frames: np.ndarray) -> list[list[int]]:
        from ..metrics.wer import collapse_repeats

        logits = self.model.forward(frames)
        predictions = np.argmax(logits.data, axis=-1)
        return [collapse_repeats(row) for row in predictions]

    def classify(self, items: Sequence[dict]) -> list:
        def run_group(group):
            stacked, spans = _batch_rows(
                [np.asarray(item["frames"], dtype=np.float64) for item in group],
                batched_ndim=3,
            )
            return _scatter_rows(self.transcribe(stacked), spans)

        return _run_grouped(
            items,
            key_fn=lambda item: np.asarray(item["frames"]).shape[-2:],
            run_group=run_group,
        )


# ----------------------------------------------------------------------
# Translation (seq2seq transformer / LSTM)
# ----------------------------------------------------------------------
class TranslationAdapter(TaskAdapter):
    """Greedy autoregressive decoding over the seq2seq family.

    ``generate`` payloads: ``{"sources": (Ts,) or (B, Ts), "max_len": int,
    "bos": int, "eos": int}`` -> token list / list of token lists.  Rows
    decode independently, so same-length sources batch together.
    """

    tasks = ("generate",)

    def greedy_decode(
        self,
        sources: np.ndarray,
        max_len: int,
        bos: int,
        eos: int,
        use_cache: bool | None = None,
    ) -> list[list[int]]:
        """Greedy decode with incremental caching when bit-identical.

        ``use_cache=None`` auto-selects the cached path via
        :func:`~repro.nn.decode.supports_cached_decode`: the transformer
        decoder then re-runs only its open-block suffix against frozen
        quantized self-attention payloads (cross-attention K/V of the
        encoder memory quantize exactly once), and the LSTM carries its
        (h, c) instead of re-running the whole target prefix per step.
        ``False`` forces the historical full-recompute loop.
        """
        from ..models.translation import LSTMSeq2Seq
        from ..nn.decode import supports_cached_decode

        model = self.model
        sources = np.asarray(sources)
        batch = sources.shape[0]
        if use_cache is None:
            use_cache = supports_cached_decode(model)
        with no_grad():
            if isinstance(model, LSTMSeq2Seq):
                memory, enc_state = model.encode(sources)
                if use_cache:
                    state = model.init_decode_state(enc_state)
                    decode = lambda t_in: model.decode_step(t_in, memory, state)
                else:
                    decode = lambda t_in: model.decode(t_in, memory, enc_state)
            else:
                memory = model.encode(sources)
                if use_cache:
                    state = model.init_decode_state(batch, capacity=max_len)
                    decode = lambda t_in: model.decode_step(t_in, memory, state)
                else:
                    decode = lambda t_in: model.decode(t_in, memory)
            # preallocated token buffer (np.concatenate per step is O(T^2))
            tokens = np.empty((batch, max_len + 1), dtype=np.int64)
            tokens[:, 0] = bos
            n = 1
            finished = np.zeros(batch, dtype=bool)
            for _ in range(max_len):
                logits = decode(tokens[:, :n])
                nxt = np.argmax(logits.data[:, -1], axis=-1)
                nxt = np.where(finished, eos, nxt)
                tokens[:, n] = nxt
                n += 1
                finished |= nxt == eos
                if finished.all():
                    break
        outputs = []
        for row in tokens[:, 1:n]:
            out = []
            for token in row:
                if token == eos:
                    break
                out.append(int(token))
            outputs.append(out)
        return outputs

    def generate(self, items: Sequence[dict]) -> list:
        def run_group(group):
            stacked, spans = _batch_rows(
                [np.asarray(item["sources"]) for item in group], batched_ndim=2
            )
            first = group[0]
            decoded = self.greedy_decode(
                stacked, int(first["max_len"]), int(first["bos"]), int(first["eos"])
            )
            return _scatter_rows(decoded, spans)

        return _run_grouped(
            items,
            key_fn=lambda item: (
                np.asarray(item["sources"]).shape[-1],
                int(item["max_len"]),
                int(item["bos"]),
                int(item["eos"]),
            ),
            run_group=run_group,
        )


# ----------------------------------------------------------------------
# Diffusion (DDPM stand-in)
# ----------------------------------------------------------------------
class DiffusionAdapter(TaskAdapter):
    """Epsilon prediction over :class:`DDPM2D`.

    ``denoise`` payloads: ``{"x": (n, 2), "t": int array, "labels":
    optional}`` -> predicted-noise ``(n, 2)`` array.  Rows (and therefore
    whole requests) are independent and concatenate into one forward
    through the model's public ``predict_noise``.
    """

    tasks = ("denoise",)

    def denoise(self, items: Sequence[dict]) -> list:
        conditioned = bool(self.model.num_classes)
        x, spans = _batch_rows(
            [np.asarray(item["x"], dtype=np.float64) for item in items], batched_ndim=2
        )

        def per_row(key):
            return np.concatenate(
                [
                    np.broadcast_to(np.asarray(item[key]), (stop - start,))
                    for item, (_, start, stop) in zip(items, spans)
                ]
            )

        eps = self.model.predict_noise(
            x, per_row("t"), per_row("labels") if conditioned else None
        ).data
        return _scatter_rows(eps, spans)


# ----------------------------------------------------------------------
# Default registrations (order matters only for overlapping classes;
# register_adapter prepends, so later entries here take precedence).
# ----------------------------------------------------------------------
def _register_defaults() -> None:
    from ..models.bert import BertEncoder, BertQA
    from ..models.diffusion import DDPM2D
    from ..models.dlrm import DLRM
    from ..models.gpt import GPT
    from ..models.moe import MoEGPT
    from ..models.speech import TinyWav2Vec
    from ..models.translation import LSTMSeq2Seq, Seq2SeqTransformer
    from ..models.vision import TinyMobileNet, TinyResNet, TinyViT

    register_adapter(GPT, CausalLMAdapter)
    register_adapter(MoEGPT, CausalLMAdapter)
    register_adapter(BertEncoder, BertEmbedAdapter)
    register_adapter(BertQA, BertSpanAdapter)
    register_adapter(DLRM, CTRAdapter)
    register_adapter(TinyResNet, VisionAdapter)
    register_adapter(TinyMobileNet, VisionAdapter)
    register_adapter(TinyViT, VisionAdapter)
    register_adapter(TinyWav2Vec, SpeechAdapter)
    register_adapter(Seq2SeqTransformer, TranslationAdapter)
    register_adapter(LSTMSeq2Seq, TranslationAdapter)
    register_adapter(DDPM2D, DiffusionAdapter)


_register_defaults()
