"""Invariant-enforcing static analysis for the repro codebase.

``python -m repro analyze`` runs every registered rule over the source
tree; ``docs/ANALYSIS.md`` documents the rule catalog, the
``# repro: allow(<rule>): <why>`` suppression syntax, and the committed
baseline workflow.
"""

from .baseline import Baseline, load_baseline
from .core import (
    UNJUSTIFIED_SUPPRESSION,
    AnalysisResult,
    Finding,
    ModuleContext,
    Rule,
    analyze_paths,
)
from .registry import create_rules, register_rule, resolve_rules, rule_catalog

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "ModuleContext",
    "Rule",
    "UNJUSTIFIED_SUPPRESSION",
    "analyze_paths",
    "create_rules",
    "load_baseline",
    "register_rule",
    "resolve_rules",
    "rule_catalog",
]
