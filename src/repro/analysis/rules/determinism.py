"""Determinism family: no unseeded randomness or wall-clock behavior.

Fault injection, retry, and serving behavior must replay exactly under a
fixed seed (the chaos gate depends on it).  In the serving/kernel/core
tree, randomness comes only from explicitly seeded generators — the
``FaultPlan`` pattern is ``random.Random(f"{seed}:{site}:...")`` — and
time-dependent behavior uses the monotonic clocks
(``time.monotonic``/``perf_counter``), never the settable wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, ModuleContext, Rule
from ..registry import register_rule
from .common import call_dotted

#: np.random members that are fine when given an explicit seed.
_NP_SEEDABLE = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})
_WALL_CLOCK = frozenset({"time.time", "time.time_ns"})


@register_rule
class UnseededRandomRule(Rule):
    id = "unseeded-random"
    family = "determinism"
    description = (
        "serving/kernel/core code must not use unseeded randomness or the "
        "wall clock — chaos replay depends on seeded determinism"
    )
    scope = ("/serve/", "/kernels/", "/core/")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_dotted(node)
            if not name:
                continue
            head, _, tail = name.rpartition(".")
            if name in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() is the settable wall clock; use "
                    "time.monotonic()/perf_counter() so deadlines and "
                    "retries replay deterministically",
                )
            elif head in ("np.random", "numpy.random"):
                if tail in _NP_SEEDABLE:
                    if not (node.args or node.keywords):
                        yield self.finding(
                            ctx,
                            node,
                            f"{name}() without a seed; pass an explicit "
                            "seed so behavior replays",
                        )
                else:
                    yield self.finding(
                        ctx,
                        node,
                        f"legacy global-state {name}() is unseeded process "
                        "randomness; use a seeded np.random.default_rng",
                    )
            elif head == "random":
                if tail == "Random":
                    if not (node.args or node.keywords):
                        yield self.finding(
                            ctx,
                            node,
                            "random.Random() without a seed; seed it like "
                            "the FaultPlan pattern "
                            "random.Random(f'{seed}:{site}')",
                        )
                else:
                    yield self.finding(
                        ctx,
                        node,
                        f"module-level random.{tail}() draws from the "
                        "shared unseeded RNG; use a seeded random.Random "
                        "instance",
                    )
