"""Exactness family: quantized math must flow through KernelBackend.

The repo's bit-exactness doctrine: every matmul/reduction on quantized
payloads goes through the backend dispatch layer (``nn/quantized.py``,
``nn/tensor.py``, ``kernels/``) so fused and unfused execution stay
bit-identical.  Ad-hoc numpy products in model or serving code bypass
the dispatch — and inside a ``supports_fused_projection`` gate,
order-dependent accumulation breaks the exact-dot-product guarantee the
gate exists to certify (pow2 scales + deterministic rounding make the
fused dot product order-independent; a float ``sum`` is not).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, ModuleContext, Rule
from ..registry import register_rule
from .common import call_dotted

#: numpy reductions/products that bypass backend dispatch.
_NUMPY_PRODUCTS = frozenset(
    {"matmul", "dot", "einsum", "tensordot", "inner", "vdot"}
)
_NUMPY_MODULES = ("np", "numpy")

#: order-dependent reductions inside fused-projection gates.
_ORDER_DEPENDENT = frozenset({"sum", "mean", "cumsum", "nansum", "add.reduce"})


def _numpy_product(node: ast.Call) -> str | None:
    name = call_dotted(node)
    head, _, tail = name.rpartition(".")
    if head in _NUMPY_MODULES and tail in _NUMPY_PRODUCTS:
        return name
    return None


@register_rule
class DirectMatmulRule(Rule):
    id = "direct-matmul"
    family = "exactness"
    description = (
        "matrix products in nn/ and serve/ must go through KernelBackend "
        "dispatch, not the @ operator or np.matmul/dot/einsum on raw arrays"
    )
    scope = ("/nn/", "/serve/")
    # the dispatch layer itself implements the products it mediates
    exempt = ("/nn/quantized.py", "/nn/tensor.py")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self.finding(
                    ctx,
                    node,
                    "direct '@' product bypasses KernelBackend dispatch; use "
                    "the backend matmul (or justify with an allow comment)",
                )
            elif isinstance(node, ast.Call):
                name = _numpy_product(node)
                if name:
                    yield self.finding(
                        ctx,
                        node,
                        f"direct {name}() bypasses KernelBackend dispatch; use "
                        "the backend matmul (or justify with an allow comment)",
                    )


def _gates_fused_projection(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Call):
            name = call_dotted(node)
            if name.rpartition(".")[2] == "supports_fused_projection":
                return True
    return False


@register_rule
class FusedAccumulationRule(Rule):
    id = "fused-accumulation"
    family = "exactness"
    description = (
        "code gated on supports_fused_projection() must not use "
        "order-dependent accumulation (np.sum/mean, builtin sum, += loops)"
    )
    scope = ("/nn/", "/serve/")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.If) and _gates_fused_projection(node.test)):
                continue
            for stmt in node.body:
                yield from self._scan(ctx, node, stmt)

    def _scan(
        self, ctx: ModuleContext, gate: ast.If, root: ast.AST
    ) -> Iterable[Finding]:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                name = call_dotted(node)
                head, _, tail = name.rpartition(".")
                reduction = (
                    (head in _NUMPY_MODULES and tail in _ORDER_DEPENDENT)
                    or name == "sum"
                    or (tail == "sum" and head not in _NUMPY_MODULES and head != "")
                )
                if reduction:
                    yield self.finding(
                        ctx,
                        node,
                        f"order-dependent {name or 'sum'}() inside a "
                        "supports_fused_projection gate breaks the "
                        "order-independence the gate certifies",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                # only loops nested *inside* the gate count — stop the
                # ancestor scan once it leaves the gated If
                in_gate_loop = False
                for ancestor in ctx.ancestors(node):
                    if ancestor is gate:
                        break
                    if isinstance(ancestor, (ast.For, ast.While)):
                        in_gate_loop = True
                        break
                if in_gate_loop:
                    yield self.finding(
                        ctx,
                        node,
                        "loop-carried '+=' accumulation inside a "
                        "supports_fused_projection gate is order-dependent; "
                        "use the fused backend reduction",
                    )
