"""Taxonomy family: typed serving errors, exactly-once reliability events.

PR 6 introduced a typed ``ServingError`` taxonomy and exactly-once
reliability accounting.  These rules keep both honest in
``src/repro/serve/``: no bare/broad ``except`` (it erases the type that
admission control, retry, and bisection dispatch on), raises use the
taxonomy (or plain argument-validation builtins), and no function can
count the same ``SessionMetrics`` reliability event on two
path-compatible call sites — the double-count bug class.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, ModuleContext, Rule
from ..registry import register_rule
from .common import call_dotted, walk_function

#: the PR 6 serving taxonomy (roots; descendants are discovered).
_TAXONOMY_ROOTS = frozenset({"ServingError"})
_TAXONOMY_KNOWN = frozenset(
    {
        "ServingError",
        "SessionClosed",
        "DeadlineExceeded",
        "QueueFull",
        "RequestShed",
        "WorkerHung",
        "InjectedFault",
        "TransientFault",
    }
)
#: argument-validation/builtin exceptions always acceptable to raise.
_ALLOWED_BUILTINS = frozenset(
    {
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "NotImplementedError",
        "AssertionError",
        "StopIteration",
        "TimeoutError",
    }
)


@register_rule
class BroadExceptRule(Rule):
    id = "broad-except"
    family = "taxonomy"
    description = (
        "no bare/broad except in serving code — it erases the typed "
        "ServingError taxonomy that retry/shed/bisect dispatch on"
    )
    scope = ("/serve/",)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' in serving code; catch typed "
                    "ServingError subclasses (or justify with an allow "
                    "comment)",
                )
                continue
            for leaf in ast.walk(node.type):
                name = None
                if isinstance(leaf, ast.Name):
                    name = leaf.id
                elif isinstance(leaf, ast.Attribute):
                    name = leaf.attr
                if name in ("Exception", "BaseException"):
                    yield self.finding(
                        ctx,
                        node,
                        f"broad 'except {name}' in serving code; catch "
                        "typed ServingError subclasses (or justify with an "
                        "allow comment)",
                    )
                    break


@register_rule
class UntypedServingRaiseRule(Rule):
    """Raises in serving code must use the ServingError taxonomy.

    Project-wide: the class hierarchy is collected across every analyzed
    module (by bare base-class name), the set of ``ServingError``
    descendants is closed transitively, and raise sites are judged in
    :meth:`finalize` so taxonomy subclasses defined in one module and
    raised in another resolve correctly.
    """

    id = "untyped-serving-raise"
    family = "taxonomy"
    description = (
        "serving raises must be ServingError subclasses or "
        "argument-validation builtins"
    )
    scope = ("/serve/",)

    def __init__(self) -> None:
        self._bases: dict[str, set[str]] = {}  # class -> bare base names
        self._raises: list[tuple[str, str, int, str]] = []  # name,path,line,symbol

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                bases: set[str] = set()
                for base in node.bases:
                    name = None
                    if isinstance(base, ast.Name):
                        name = base.id
                    elif isinstance(base, ast.Attribute):
                        name = base.attr
                    if name:
                        bases.add(name)
                self._bases.setdefault(node.name, set()).update(bases)
            elif isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
                name = call_dotted(node.exc).rpartition(".")[2]
                if name:
                    self._raises.append(
                        (name, ctx.relpath, node.lineno, ctx.enclosing_symbol(node))
                    )
        return ()

    def finalize(self) -> Iterable[Finding]:
        allowed = set(_TAXONOMY_KNOWN) | set(_ALLOWED_BUILTINS)
        changed = True
        while changed:
            changed = False
            for cls, bases in self._bases.items():
                if cls not in allowed and (bases & allowed) - _ALLOWED_BUILTINS:
                    allowed.add(cls)
                    changed = True
        for name, path, line, symbol in self._raises:
            if name not in allowed:
                yield Finding(
                    path=path,
                    line=line,
                    rule=self.id,
                    symbol=symbol,
                    message=(
                        f"raise {name}(...) in serving code is outside the "
                        "ServingError taxonomy; raise a taxonomy subclass "
                        "so retry/shed/bisect can dispatch on it"
                    ),
                )


def _branch_signature(ctx: ModuleContext, node: ast.AST) -> dict[int, str]:
    """Map of branch-node id -> arm label for every If/Try ancestor."""
    signature: dict[int, str] = {}
    child = node
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.If):
            if child in ancestor.body:
                signature[id(ancestor)] = "if-body"
            elif child in ancestor.orelse:
                signature[id(ancestor)] = "if-orelse"
        elif isinstance(ancestor, ast.Try):
            if child in ancestor.body:
                signature[id(ancestor)] = "try-body"
            elif child in ancestor.orelse:
                signature[id(ancestor)] = "try-orelse"
            elif child in ancestor.finalbody:
                signature[id(ancestor)] = "finally"
            elif isinstance(child, ast.ExceptHandler):
                signature[id(ancestor)] = f"handler{ancestor.handlers.index(child)}"
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        child = ancestor
    return signature


def _exclusive(a: str, b: str) -> bool:
    """Whether two arms of the same branch node cannot both execute.

    Exclusive: the two If arms; two distinct except handlers; a handler
    vs the Try else-block.  Everything else can co-execute in one run
    (Try body + orelse on success, finally with anything, Try body + a
    handler when the exception fires after the first call).
    """
    if a == b:
        return False
    if {a, b} == {"if-body", "if-orelse"}:
        return True
    if a.startswith("handler") and b.startswith("handler"):
        return True
    if "try-orelse" in (a, b) and (a.startswith("handler") or b.startswith("handler")):
        return True
    return False


@register_rule
class DoubleCountRule(Rule):
    id = "double-count"
    family = "taxonomy"
    description = (
        "one function must not record the same SessionMetrics reliability "
        "event on two path-compatible call sites (double counting)"
    )
    scope = ("/serve/",)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            sites: dict[str, list[tuple[ast.AST, dict, bool]]] = {}
            for node in walk_function(fn, into_nested=False):
                key = self._event_key(node)
                if key is None:
                    continue
                sig = _branch_signature(ctx, node)
                in_loop = any(
                    isinstance(a, (ast.For, ast.While))
                    for a in ctx.ancestors(node)
                    if not isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
                sites.setdefault(key, []).append((node, sig, in_loop))
            for key, entries in sites.items():
                entries.sort(key=lambda e: (e[0].lineno, e[0].col_offset))
                for i in range(1, len(entries)):
                    node_i, sig_i, _ = entries[i]
                    for node_j, sig_j, _ in entries[:i]:
                        if self._compatible(ctx, sig_i, sig_j):
                            yield self.finding(
                                ctx,
                                node_i,
                                f"reliability event {key!r} is also recorded "
                                f"at line {node_j.lineno} on a path that can "
                                "co-execute with this one — double count",
                            )
                            break

    @staticmethod
    def _event_key(node: ast.AST) -> str | None:
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return None
        attr = node.func.attr
        if attr == "record_event" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
            return None
        if attr == "record_error":
            return "errors"
        if attr == "record_done":
            return "done"
        return None

    @staticmethod
    def _compatible(ctx: ModuleContext, sig_a: dict, sig_b: dict) -> bool:
        for branch_id, arm_a in sig_a.items():
            arm_b = sig_b.get(branch_id)
            if arm_b is not None and _exclusive(arm_a, arm_b):
                return False
        return True
