"""Lifecycle family: futures resolve, scratch returns, no_grad stays local.

Serving correctness depends on resource pairs closing: every future a
session hands out must reach ``set_result``/``set_exception``/``cancel``
(a dropped future blocks its consumer forever), every
``checkout_scratch`` must pair with ``release_scratch`` (the scratch
pool accounts bytes and a leak is permanent), every KV-pool page
checkout must pair with a release (pages are per-owner accounted and a
leaked page starves every other stream), and a generator must not
hold the ``no_grad`` context across ``yield`` (grad mode is
thread-local; the consumer resumes the generator on an arbitrary thread
with the producer's mode still applied).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, ModuleContext, Rule
from ..registry import register_rule
from .common import call_dotted, walk_function

#: calls that resolve a Future.
_TERMINAL_OPS = frozenset(
    {"set_result", "set_exception", "cancel", "set_running_or_notify_cancel"}
)
#: session helpers that guarantee exactly-once resolution internally.
_RESOLVER_HELPERS = frozenset(
    {"_resolve_job", "_fail_job", "_drop_cancelled", "_resolve", "_fail"}
)
#: exception types an except-handler may legitimately swallow around
#: future resolution (the future is already terminal).
_BENIGN_EXCEPTIONS = frozenset({"InvalidStateError", "CancelledError"})


def _is_future_ctor(node: ast.Call) -> bool:
    name = call_dotted(node)
    return name.rpartition(".")[2] == "Future"


@register_rule
class DroppedFutureRule(Rule):
    id = "dropped-future"
    family = "lifecycle"
    description = (
        "a Future created locally must be resolved, cancelled, or handed "
        "off — a dropped future blocks its consumer forever"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, fn)

    def _check_function(self, ctx: ModuleContext, fn) -> Iterable[Finding]:
        created: dict[str, ast.AST] = {}
        for node in walk_function(fn, into_nested=False):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _is_future_ctor(node.value) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        created[target.id] = node
        if not created:
            return
        escaped: set[str] = set()
        for node in walk_function(fn, into_nested=True):
            # terminal resolution: f.set_result(...) etc.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TERMINAL_OPS
                and isinstance(node.func.value, ast.Name)
            ):
                escaped.add(node.func.value.id)
            # handed off: passed as an argument, returned/yielded, stored
            # into an attribute/subscript/container — someone else now
            # owns resolution
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for leaf in ast.walk(arg):
                        if isinstance(leaf, ast.Name):
                            escaped.add(leaf.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    for leaf in ast.walk(node.value):
                        if isinstance(leaf, ast.Name):
                            escaped.add(leaf.id)
            elif isinstance(node, ast.Assign):
                stored_elsewhere = any(
                    not isinstance(t, ast.Name) for t in node.targets
                )
                if stored_elsewhere:
                    for leaf in ast.walk(node.value):
                        if isinstance(leaf, ast.Name):
                            escaped.add(leaf.id)
                elif not (
                    isinstance(node.value, ast.Call)
                    and _is_future_ctor(node.value)
                ):
                    # aliasing (g = f) or container literal on the RHS
                    for leaf in ast.walk(node.value):
                        if isinstance(leaf, ast.Name):
                            escaped.add(leaf.id)
        for name, node in created.items():
            if name not in escaped:
                yield self.finding(
                    ctx,
                    node,
                    f"future '{name}' is created but never resolved, "
                    "cancelled, or handed off on any path",
                )


@register_rule
class SwallowedFutureErrorRule(Rule):
    id = "swallowed-future-error"
    family = "lifecycle"
    description = (
        "an except handler in future-resolving code must fail/resolve the "
        "future (or re-raise) — swallowing strands the consumer"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._handles_futures(fn):
                continue
            for node in walk_function(fn, into_nested=False):
                if isinstance(node, ast.ExceptHandler):
                    if self._benign(node) or self._resolves(node):
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        "except handler swallows the error without resolving "
                        "or failing the in-flight future(s)",
                    )

    @staticmethod
    def _handles_futures(fn) -> bool:
        params = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
        if params & {"job", "jobs", "batch", "stream_job"}:
            return True
        for node in walk_function(fn, into_nested=False):
            if isinstance(node, ast.Attribute) and node.attr == "future":
                return True
        return False

    @staticmethod
    def _benign(handler: ast.ExceptHandler) -> bool:
        names: list[str] = []
        if handler.type is None:
            return False
        for leaf in ast.walk(handler.type):
            if isinstance(leaf, ast.Name):
                names.append(leaf.id)
            elif isinstance(leaf, ast.Attribute):
                names.append(leaf.attr)
        return bool(names) and all(n in _BENIGN_EXCEPTIONS for n in names)

    @staticmethod
    def _resolves(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, (ast.Raise, ast.Continue)):
                return True
            if isinstance(node, ast.Call):
                name = call_dotted(node)
                tail = name.rpartition(".")[2]
                if tail in _TERMINAL_OPS or tail in _RESOLVER_HELPERS:
                    return True
        return False


@register_rule
class UnreleasedScratchRule(Rule):
    id = "unreleased-scratch"
    family = "lifecycle"
    description = (
        "checkout_scratch/plan.checkout must pair with release in the same "
        "function (try/finally) — the pool accounts bytes and leaks are "
        "permanent"
    )
    exempt = ("/kernels/plan.py",)  # the pool implementation itself

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            checkouts: list[tuple[str, ast.AST]] = []
            releases: set[str] = set()
            for node in walk_function(fn, into_nested=False):
                if not isinstance(node, ast.Call):
                    continue
                name = call_dotted(node)
                tail = name.rpartition(".")[2]
                if tail == "checkout_scratch":
                    checkouts.append(("checkout_scratch", node))
                elif tail == "release_scratch":
                    releases.add("checkout_scratch")
                elif tail == "checkout":
                    checkouts.append(("checkout", node))
                elif tail == "release":
                    releases.add("checkout")
            for kind, node in checkouts:
                if kind not in releases:
                    pair = (
                        "release_scratch"
                        if kind == "checkout_scratch"
                        else ".release()"
                    )
                    yield self.finding(
                        ctx,
                        node,
                        f"{kind}() without a matching {pair} in this "
                        "function; release in a finally block",
                    )


@register_rule
class UnreleasedPageRule(Rule):
    id = "unreleased-page"
    family = "lifecycle"
    description = (
        "checkout_page(s) must pair with release_page(s)/release_all in the "
        "same function — KV pool pages are per-owner accounted and a leaked "
        "page starves every other stream"
    )
    #: the pool itself, the paged cache, and the scheduler legitimately
    #: hold pages across calls (the stream's lifetime owns release)
    exempt = ("/serve/sched/", "/nn/decode.py")

    _CHECKOUTS = frozenset({"checkout_page", "checkout_pages"})
    _RELEASES = frozenset({"release_page", "release_pages", "release_all"})

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            checkouts: list[ast.AST] = []
            released = False
            for node in walk_function(fn, into_nested=False):
                if not isinstance(node, ast.Call):
                    continue
                tail = call_dotted(node).rpartition(".")[2]
                if tail in self._CHECKOUTS:
                    checkouts.append(node)
                elif tail in self._RELEASES:
                    released = True
            if not released:
                for node in checkouts:
                    yield self.finding(
                        ctx,
                        node,
                        "page checkout without a matching release_page(s)/"
                        "release_all in this function; release in a finally "
                        "block or hand the pages to an owner that does",
                    )


@register_rule
class NoGradAcrossYieldRule(Rule):
    id = "no-grad-across-yield"
    family = "lifecycle"
    description = (
        "generators must not hold no_grad() across a yield — grad mode is "
        "thread-local and the consumer resumes on an arbitrary thread"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.With):
                continue
            if not any(
                isinstance(item.context_expr, ast.Call)
                and call_dotted(item.context_expr).rpartition(".")[2] == "no_grad"
                for item in node.items
            ):
                continue
            for stmt in node.body:
                for leaf in self._walk_same_function(stmt):
                    if isinstance(leaf, (ast.Yield, ast.YieldFrom)):
                        yield self.finding(
                            ctx,
                            leaf,
                            "yield inside 'with no_grad()': the generator "
                            "suspends while holding thread-local grad state; "
                            "scope no_grad per step instead",
                        )

    @staticmethod
    def _walk_same_function(root: ast.AST):
        stack = [root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # a nested def's yields belong to that def
            stack.extend(ast.iter_child_nodes(node))
