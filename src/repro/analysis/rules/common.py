"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "dotted",
    "call_dotted",
    "self_attr",
    "lock_factory",
    "enclosing_function",
    "walk_function",
    "LOCK_FACTORIES",
    "CONDITION_FACTORIES",
]

#: threading constructors whose results count as locks for the lock rules.
LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)
CONDITION_FACTORIES = frozenset({"Condition"})


def dotted(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_dotted(node: ast.Call) -> str:
    return dotted(node.func)


def self_attr(node: ast.AST) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def lock_factory(value: ast.AST, factories: frozenset = LOCK_FACTORIES) -> bool:
    """True when ``value`` is a call like ``threading.Lock()`` / ``Lock()``."""
    if not isinstance(value, ast.Call):
        return False
    name = call_dotted(value)
    if not name:
        return False
    head, _, tail = name.rpartition(".")
    return tail in factories and head in ("", "threading")


def enclosing_function(
    ctx, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def walk_function(fn: ast.AST, *, into_nested: bool = True) -> Iterator[ast.AST]:
    """Walk ``fn``'s body, optionally skipping nested function/class defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not into_nested and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
