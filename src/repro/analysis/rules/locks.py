"""Lock-discipline family: guarded shared state, predicate loops, lock order.

The serving tier is hand-rolled thread code: the `InferenceSession`
condition-variable deque, the `kernels/plan.py` scratch pools behind a
module lock, per-object locks in SessionMetrics/CircuitBreaker/FaultPlan.
These rules encode its conventions:

- classes that own a ``threading.Lock/RLock/Condition/Semaphore``
  attribute must write their ``_``-prefixed instance state only inside
  ``with self.<lock>`` (``__init__`` and ``*_locked``
  caller-holds-the-lock helpers are exempt);
- module-level ``_UPPER`` state guarded by a module lock must be guarded
  *everywhere* (inconsistent guarding is how the bug class starts);
- ``Condition.wait`` must sit in a ``while`` predicate loop — a bare
  ``if`` misses spurious wakeups and stolen predicates;
- locks are acquired with ``with``, never bare ``.acquire()``;
- the project-wide lock-acquisition graph must stay acyclic.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, ModuleContext, Rule
from ..registry import register_rule
from .common import (
    CONDITION_FACTORIES,
    LOCK_FACTORIES,
    lock_factory,
    self_attr,
    walk_function,
)

#: method calls that mutate a container in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "discard",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "extend",
        "extendleft",
        "update",
        "insert",
        "setdefault",
    }
)


def _class_locks(cls: ast.ClassDef, factories=LOCK_FACTORIES) -> set[str]:
    """Names of ``self.X`` attributes assigned a threading lock in ``cls``."""
    names: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and lock_factory(node.value, factories):
            for target in node.targets:
                attr = self_attr(target)
                if attr:
                    names.add(attr)
    return names


def _module_locks(tree: ast.Module, factories=LOCK_FACTORIES) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and lock_factory(stmt.value, factories):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _held_self_lock(ctx: ModuleContext, node: ast.AST, locks: set[str]) -> bool:
    """True when ``node`` sits inside ``with self.<lock>`` for any lock."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                attr = self_attr(item.context_expr)
                if attr in locks:
                    return True
    return False


def _held_module_lock(ctx: ModuleContext, node: ast.AST, locks: set[str]) -> bool:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                if isinstance(item.context_expr, ast.Name) and (
                    item.context_expr.id in locks
                ):
                    return True
    return False


def _write_target_attr(node: ast.AST, locks: set[str]) -> tuple[str, ast.AST] | None:
    """(attr, node) when ``node`` writes ``self._X`` shared state."""
    targets: list[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        # plain rebinding: self._x = ... / self._x += ...
        attr = self_attr(target)
        if attr and attr.startswith("_") and attr not in locks:
            return attr, node
        # item store: self._x[k] = ...
        if isinstance(target, ast.Subscript):
            attr = self_attr(target.value)
            if attr and attr.startswith("_") and attr not in locks:
                return attr, node
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS:
            attr = self_attr(node.func.value)
            if attr and attr.startswith("_") and attr not in locks:
                return attr, node
    return None


@register_rule
class UnguardedWriteRule(Rule):
    id = "unguarded-write"
    family = "locks"
    description = (
        "writes to _-prefixed shared state in lock-owning classes/modules "
        "must happen inside the owning with-lock scope"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        yield from self._check_classes(ctx)
        yield from self._check_module(ctx)

    # ------------------------------------------------------------------
    def _check_classes(self, ctx: ModuleContext) -> Iterable[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = _class_locks(cls)
            if not locks:
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__" or method.name.endswith("_locked"):
                    continue  # construction / caller-holds-the-lock helpers
                for node in walk_function(method, into_nested=True):
                    hit = _write_target_attr(node, locks)
                    if hit is None:
                        continue
                    attr, site = hit
                    if not _held_self_lock(ctx, site, locks):
                        lock_names = ", ".join(f"self.{n}" for n in sorted(locks))
                        yield self.finding(
                            ctx,
                            site,
                            f"write to shared 'self.{attr}' outside "
                            f"'with {lock_names}'",
                        )

    def _check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        locks = _module_locks(ctx.tree)
        if not locks:
            return
        # collect every write to a module global (declared via `global`)
        # and split by guarded/unguarded; only inconsistently-guarded
        # names are flagged, so deliberately lock-free globals stay legal
        guarded: set[str] = set()
        writes: list[tuple[str, ast.AST, bool]] = []
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name.endswith("_locked"):
                continue  # caller-holds-the-lock convention
            global_names: set[str] = set()
            for node in walk_function(fn, into_nested=False):
                if isinstance(node, ast.Global):
                    global_names.update(node.names)
            for node in walk_function(fn, into_nested=False):
                name = self._module_write(node, global_names, locks)
                if name is None:
                    continue
                held = _held_module_lock(ctx, node, locks)
                if held:
                    guarded.add(name)
                writes.append((name, node, held))
        for name, node, held in writes:
            if not held and name in guarded:
                yield self.finding(
                    ctx,
                    node,
                    f"write to module global '{name}' outside the module "
                    "lock, but other sites guard it — inconsistent locking",
                )

    @staticmethod
    def _module_write(
        node: ast.AST, global_names: set[str], locks: set[str]
    ) -> str | None:
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in global_names:
                if target.id not in locks:
                    return target.id
            # item store into a module-level _UPPER container (no `global`
            # declaration needed to mutate, so match by naming convention)
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name.startswith("_") and name == name.upper() and name not in locks:
                    return name
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS and isinstance(
                node.func.value, ast.Name
            ):
                name = node.func.value.id
                if name.startswith("_") and name == name.upper() and name not in locks:
                    return name
        return None


@register_rule
class WaitOutsideLoopRule(Rule):
    id = "wait-outside-loop"
    family = "locks"
    description = (
        "Condition.wait must run inside a while predicate loop (spurious "
        "wakeups and stolen predicates otherwise slip through)"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        cond_attrs: set[str] = set()
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                cond_attrs |= _class_locks(cls, CONDITION_FACTORIES)
        cond_names = _module_locks(ctx.tree, CONDITION_FACTORIES)
        if not cond_attrs and not cond_names:
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "wait"
            ):
                continue
            owner = node.func.value
            is_condition = self_attr(owner) in cond_attrs or (
                isinstance(owner, ast.Name) and owner.id in cond_names
            )
            if not is_condition:
                continue
            in_while = False
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, ast.While):
                    in_while = True
                    break
                if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
            if not in_while:
                yield self.finding(
                    ctx,
                    node,
                    "Condition.wait() outside a while predicate loop; "
                    "use 'while not <predicate>: cv.wait(...)'",
                )


@register_rule
class BareAcquireRule(Rule):
    id = "bare-acquire"
    family = "locks"
    description = (
        "locks are acquired with 'with', never bare .acquire() — an "
        "exception between acquire and release leaks the lock"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare .acquire(); use a 'with' block so the lock is "
                    "released on every path",
                )


@register_rule
class LockOrderRule(Rule):
    """Project-wide lock-acquisition graph; flags order inversions.

    Lock identities: ``<path>::<Class>.<attr>`` for instance locks,
    ``<path>::<NAME>`` for module locks.  Edges come from lexically
    nested ``with`` acquisitions plus calls resolved by project-unique
    bare function / method name (with transitive lock sets computed to a
    fixpoint).  Re-entrant self-edges (RLock/Condition re-entry through
    helpers) are skipped; any remaining cycle is an inversion.
    """

    id = "lock-order"
    family = "locks"
    description = "the project lock-acquisition graph must stay acyclic"
    scope = ("/serve/", "/kernels/", "/nn/", "/core/")

    def __init__(self) -> None:
        # function key -> set of lock ids acquired directly
        self._direct: dict[str, set[str]] = {}
        # function key -> called names (for transitive lock sets)
        self._calls: dict[str, set[str]] = {}
        # bare name -> function keys defining it (uniqueness filter)
        self._by_name: dict[str, list[str]] = {}
        # (held_lock, kind, payload, path, line): kind 'lock' | 'call'
        self._nested: list[tuple[str, str, str, str, int]] = []

    # ------------------------------------------------------------------
    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        module_locks = _module_locks(ctx.tree)
        class_locks: dict[str, set[str]] = {}
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                class_locks[cls.name] = _class_locks(cls)

        def lock_id(ctx_expr: ast.AST, owner_class: str | None) -> str | None:
            if isinstance(ctx_expr, ast.Name) and ctx_expr.id in module_locks:
                return f"{ctx.relpath}::{ctx_expr.id}"
            attr = self_attr(ctx_expr)
            if (
                attr
                and owner_class
                and attr in class_locks.get(owner_class, set())
            ):
                return f"{ctx.relpath}::{owner_class}.{attr}"
            return None

        for fn, owner in self._functions(ctx.tree):
            key = f"{ctx.relpath}::{owner + '.' if owner else ''}{fn.name}"
            direct: set[str] = set()
            calls: set[str] = set()
            for node in walk_function(fn, into_nested=False):
                if isinstance(node, ast.With):
                    for item in node.items:
                        lid = lock_id(item.context_expr, owner)
                        if lid:
                            direct.add(lid)
                            self._record_nested(ctx, node, lid, owner, lock_id)
                elif isinstance(node, ast.Call):
                    name = self._callee_name(node)
                    if name:
                        calls.add(name)
            self._direct[key] = direct
            self._calls[key] = calls
            self._by_name.setdefault(fn.name, []).append(key)
        return ()

    @staticmethod
    def _functions(tree: ast.Module):
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt, None
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield sub, stmt.name

    @staticmethod
    def _callee_name(node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    def _record_nested(self, ctx, with_node, held: str, owner, lock_id) -> None:
        """Nested acquisitions and calls inside one with-block's body."""
        for stmt in with_node.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.With):
                    for item in node.items:
                        lid = lock_id(item.context_expr, owner)
                        if lid and lid != held:
                            self._nested.append(
                                ("lock", held, lid, ctx.relpath, node.lineno)
                            )
                elif isinstance(node, ast.Call):
                    name = self._callee_name(node)
                    if name:
                        self._nested.append(
                            ("call", held, name, ctx.relpath, node.lineno)
                        )

    # ------------------------------------------------------------------
    def finalize(self) -> Iterable[Finding]:
        # transitive lock set per function, to a fixpoint
        locksets = {key: set(direct) for key, direct in self._direct.items()}
        changed = True
        while changed:
            changed = False
            for key, calls in self._calls.items():
                for name in calls:
                    defs = self._by_name.get(name, [])
                    if len(defs) != 1:
                        continue  # ambiguous name: don't guess
                    extra = locksets.get(defs[0], set()) - locksets[key]
                    if extra:
                        locksets[key].update(extra)
                        changed = True

        edges: dict[tuple[str, str], tuple[str, int]] = {}

        def add_edge(held: str, inner: str, path: str, line: int) -> None:
            if held == inner:
                return  # re-entrant (RLock/Condition) self-edge
            loc = edges.get((held, inner))
            if loc is None or (path, line) < loc:
                edges[(held, inner)] = (path, line)

        for kind, held, payload, path, line in self._nested:
            if kind == "lock":
                add_edge(held, payload, path, line)
            else:
                defs = self._by_name.get(payload, [])
                if len(defs) == 1:
                    for inner in locksets.get(defs[0], set()):
                        add_edge(held, inner, path, line)

        yield from self._report_cycles(edges)

    def _report_cycles(self, edges) -> Iterable[Finding]:
        graph: dict[str, set[str]] = {}
        for held, inner in edges:
            graph.setdefault(held, set()).add(inner)
            graph.setdefault(inner, set())
        # iterative Tarjan SCC
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(graph[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(graph[nxt]))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    sccs.append(scc)

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)

        for scc in sccs:
            if len(scc) < 2:
                continue
            members = set(scc)
            internal = [
                (loc, pair)
                for pair, loc in edges.items()
                if pair[0] in members and pair[1] in members
            ]
            (path, line), _pair = min(internal)
            cycle = " <-> ".join(sorted(members))
            yield Finding(
                path=path,
                line=line,
                rule=self.id,
                message=f"lock-order inversion: acquisition cycle {cycle}",
            )
