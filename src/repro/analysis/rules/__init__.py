"""Rule modules; importing this package registers every rule.

Families: exactness (KernelBackend dispatch discipline), locks
(guarded shared state, predicate loops, acquisition-order graph),
lifecycle (futures, scratch pairing, no_grad generators), taxonomy
(typed serving errors, exactly-once reliability events), determinism
(seeded randomness, monotonic clocks).
"""

from . import determinism, exactness, lifecycle, locks, taxonomy  # noqa: F401
