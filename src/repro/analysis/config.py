"""Declarative analyzer configuration from ``pyproject.toml``.

``[tool.repro.analysis]`` keys:

- ``paths``: directories/files analyzed when the CLI gets no positional
  paths (default ``["src/repro"]``)
- ``baseline``: baseline file consulted by ``--baseline``
  (default ``scripts/analysis_baseline.json``)
- ``disable``: rule ids or family names never run

The file is located by walking up from the start directory, so the
gate works from any subdirectory of the repo.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["AnalysisConfig", "load_config"]


@dataclass
class AnalysisConfig:
    root: Path
    paths: list[str] = field(default_factory=lambda: ["src/repro"])
    baseline: str = "scripts/analysis_baseline.json"
    disable: tuple[str, ...] = ()

    @property
    def baseline_path(self) -> Path:
        return self.root / self.baseline

    def resolved_paths(self) -> list[Path]:
        return [self.root / p for p in self.paths]


def load_config(start: Path | None = None) -> AnalysisConfig:
    """Config from the nearest ``pyproject.toml`` at/above ``start``.

    Falls back to defaults rooted at ``start`` when no file (or no
    ``[tool.repro.analysis]`` table) is found.
    """
    origin = Path(start) if start is not None else Path.cwd()
    origin = origin.resolve()
    for candidate in [origin, *origin.parents]:
        pyproject = candidate / "pyproject.toml"
        if not pyproject.is_file():
            continue
        data = tomllib.loads(pyproject.read_text())
        table = data.get("tool", {}).get("repro", {}).get("analysis", {})
        config = AnalysisConfig(root=candidate)
        if "paths" in table:
            config.paths = [str(p) for p in table["paths"]]
        if "baseline" in table:
            config.baseline = str(table["baseline"])
        if "disable" in table:
            config.disable = tuple(str(r) for r in table["disable"])
        return config
    return AnalysisConfig(root=origin)
