"""Rule registry: the analyzer's catalog of invariant checks.

Rules self-register at import time via :func:`register_rule`; importing
:mod:`repro.analysis.rules` populates the registry.  ``create_rules``
instantiates a fresh rule set per analysis run so project-wide rules
(which accumulate cross-module state) never leak between runs.
"""

from __future__ import annotations

from .core import Rule

__all__ = ["register_rule", "create_rules", "rule_catalog", "resolve_rules"]

_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to the registry (unique ``id``)."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def _load() -> None:
    from . import rules  # noqa: F401  (import side effect: registration)


def rule_catalog() -> dict[str, type[Rule]]:
    """Registered rule classes by id, sorted."""
    _load()
    return dict(sorted(_REGISTRY.items()))


def resolve_rules(names: list[str]) -> list[Rule]:
    """Instantiate the named rules (or families), erroring on unknowns."""
    catalog = rule_catalog()
    selected: list[type[Rule]] = []
    for name in names:
        by_family = [cls for cls in catalog.values() if cls.family == name]
        if name in catalog:
            selected.append(catalog[name])
        elif by_family:
            selected.extend(by_family)
        else:
            known = ", ".join(catalog)
            raise ValueError(f"unknown rule or family {name!r}; known rules: {known}")
    seen: set[str] = set()
    out: list[Rule] = []
    for cls in selected:
        if cls.id not in seen:
            seen.add(cls.id)
            out.append(cls())
    return out


def create_rules(disable: tuple[str, ...] = ()) -> list[Rule]:
    """One fresh instance of every registered rule, minus ``disable``."""
    return [
        cls()
        for cls in rule_catalog().values()
        if cls.id not in disable and cls.family not in disable
    ]
