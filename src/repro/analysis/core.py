"""The invariant-analysis core: findings, rules, per-module context, driver.

The analyzer is a small AST lint framework specialised to this repo's
invariants (see :mod:`repro.analysis.rules`).  A :class:`Rule` inspects
one parsed module at a time through a :class:`ModuleContext` (tree,
parent links, suppression comments) and yields :class:`Finding`\\ s;
project-wide rules (the lock-acquisition graph) accumulate state across
modules and emit from :meth:`Rule.finalize`.

Suppression: a ``# repro: allow(<rule>[, <rule>...]): <justification>``
comment on the finding's line (or the line directly above it) silences
those rules there.  The justification is mandatory — an allow comment
without one suppresses the finding but raises an
``unjustified-suppression`` finding in its place, so a suppression can
never silently lose its rationale.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "AnalysisResult",
    "analyze_paths",
    "iter_python_files",
    "UNJUSTIFIED_SUPPRESSION",
]

#: Reserved rule id for allow-comments that carry no justification.
UNJUSTIFIED_SUPPRESSION = "unjustified-suppression"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([\w\-*]+(?:\s*,\s*[\w\-*]+)*)\s*\)(?::\s*(\S.*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: posix path relative to the analysis root
    line: int
    rule: str
    message: str
    symbol: str = ""  #: dotted enclosing ``Class.function`` scope, if any
    col: int = 0

    def fingerprint(self) -> tuple[str, str, str, str]:
        """Line-independent identity used for baseline matching.

        Deliberately excludes ``line``/``col`` so unrelated edits above a
        grandfathered finding do not invalidate its baseline entry.
        """
        return (self.rule, self.path, self.symbol, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            path=data["path"],
            line=int(data.get("line", 0)),
            rule=data["rule"],
            message=data["message"],
            symbol=data.get("symbol", ""),
            col=int(data.get("col", 0)),
        )


@dataclass(frozen=True)
class _Suppression:
    rules: frozenset
    justification: str
    line: int


class ModuleContext:
    """One parsed module plus the derived facts every rule needs."""

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath  # posix, relative to the analysis root
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.suppressions: dict[int, _Suppression] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = frozenset(
                    token.strip() for token in match.group(1).split(",")
                )
                self.suppressions[lineno] = _Suppression(
                    rules=rules,
                    justification=(match.group(2) or "").strip(),
                    line=lineno,
                )

    # ------------------------------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Innermost-first chain of parents up to the module node."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_symbol(self, node: ast.AST) -> str:
        """Dotted ``Class.method`` (or function) scope containing ``node``."""
        names: list[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(ancestor.name)
        return ".".join(reversed(names))

    def suppression_for(self, line: int, rule: str) -> _Suppression | None:
        """The allow-comment covering ``rule`` at ``line``, if any.

        An allow comment applies to its own line and to the line directly
        below it (so long statements can carry the comment above).
        """
        for candidate in (line, line - 1):
            entry = self.suppressions.get(candidate)
            if entry is not None and (rule in entry.rules or "*" in entry.rules):
                return entry
        return None


class Rule:
    """Base class for one analysis rule.

    Subclasses set :attr:`id` (kebab-case, unique), :attr:`family`,
    :attr:`description`, and optionally :attr:`scope` /
    :attr:`exempt` — substrings matched against ``"/" + relpath`` to
    restrict where the rule runs (empty scope = everywhere).  Rules are
    instantiated fresh per analysis run, so project-wide rules may keep
    accumulation state on ``self`` and emit from :meth:`finalize`.
    """

    id: str = ""
    family: str = ""
    description: str = ""
    scope: tuple[str, ...] = ()
    exempt: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        key = "/" + relpath
        if any(pattern in key for pattern in self.exempt):
            return False
        return not self.scope or any(pattern in key for pattern in self.scope)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Per-module findings (or accumulation for project rules)."""
        return ()

    def finalize(self) -> Iterable[Finding]:
        """Project-wide findings emitted after every module was visited."""
        return ()

    # ------------------------------------------------------------------
    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            symbol=ctx.enclosing_symbol(node),
        )


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    duration_s: float = 0.0
    rules: tuple[str, ...] = ()
    errors: list[str] = field(default_factory=list)  # unparseable files

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files accepted directly), sorted."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = path.rglob("*.py")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    yield from sorted(collected)


def _relpath(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.resolve().as_posix().lstrip("/")


def analyze_paths(
    paths: Iterable[Path],
    rules: Iterable[Rule] | None = None,
    root: Path | None = None,
) -> AnalysisResult:
    """Run ``rules`` (default: every registered rule) over ``paths``.

    ``root`` anchors the relative paths used in findings, suppressions
    baselines, and rule scoping; it defaults to the current directory.
    """
    from .registry import create_rules

    started = time.perf_counter()
    active = list(rules) if rules is not None else create_rules()
    result = AnalysisResult(rules=tuple(rule.id for rule in active))
    contexts: dict[str, ModuleContext] = {}

    def admit(finding: Finding, ctx: ModuleContext | None) -> None:
        entry = ctx.suppression_for(finding.line, finding.rule) if ctx else None
        if entry is None:
            result.findings.append(finding)
        elif not entry.justification:
            result.findings.append(
                Finding(
                    path=finding.path,
                    line=entry.line,
                    rule=UNJUSTIFIED_SUPPRESSION,
                    message=(
                        f"allow({finding.rule}) suppresses a finding but "
                        "carries no justification; append ': <reason>'"
                    ),
                    symbol=finding.symbol,
                )
            )

    for path in iter_python_files(paths):
        relpath = _relpath(path, root)
        try:
            source = path.read_text()
            ctx = ModuleContext(path, relpath, source)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            result.errors.append(f"{relpath}: {type(error).__name__}: {error}")
            continue
        result.files += 1
        contexts[relpath] = ctx
        for rule in active:
            if rule.applies_to(relpath):
                for finding in rule.check(ctx):
                    admit(finding, ctx)
    for rule in active:
        for finding in rule.finalize():
            admit(finding, contexts.get(finding.path))
    result.findings.sort()
    result.duration_s = time.perf_counter() - started
    return result
