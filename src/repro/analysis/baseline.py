"""Committed-baseline support: grandfathered findings with justifications.

The baseline file (``scripts/analysis_baseline.json``) lists findings
that existed before a rule landed and were deliberately accepted rather
than fixed.  Every entry MUST carry a non-empty ``justification`` —
loading rejects entries without one, so an accepted finding can never
lose its written rationale.  Matching uses the line-independent
:meth:`Finding.fingerprint` so edits elsewhere in a file do not churn
the baseline; entries that no longer match anything are reported as
stale so the file shrinks as debt is paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .core import Finding

__all__ = ["Baseline", "BaselineError", "load_baseline", "write_baseline"]

_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline file (bad JSON, missing justification, ...)."""


@dataclass
class Baseline:
    """Parsed baseline: fingerprint -> justification."""

    path: Path | None = None
    entries: dict[tuple, str] = field(default_factory=dict)

    def apply(self, findings: list[Finding]) -> tuple[list[Finding], list[tuple]]:
        """Split ``findings`` into (new, matched-fingerprints).

        Returns the findings not covered by the baseline plus the list of
        baseline fingerprints that matched (for stale-entry detection).
        """
        new: list[Finding] = []
        matched: set[tuple] = set()
        for finding in findings:
            fp = finding.fingerprint()
            if fp in self.entries:
                matched.add(fp)
            else:
                new.append(finding)
        return new, sorted(matched)

    def stale(self, matched: list[tuple]) -> list[tuple]:
        """Baseline fingerprints that matched no current finding."""
        live = set(matched)
        return sorted(fp for fp in self.entries if fp not in live)


def load_baseline(path: Path) -> Baseline:
    """Load and validate ``path``; every entry needs a justification."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise BaselineError(f"{path}: invalid JSON: {error}") from error
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise BaselineError(f"{path}: expected {{'version': {_VERSION}, 'entries': [...]}}")
    baseline = Baseline(path=Path(path))
    for i, entry in enumerate(data.get("entries", [])):
        missing = {"rule", "path", "message", "justification"} - set(entry)
        if missing:
            raise BaselineError(f"{path}: entry {i} missing {sorted(missing)}")
        justification = str(entry["justification"]).strip()
        if not justification:
            raise BaselineError(
                f"{path}: entry {i} ({entry['rule']} in {entry['path']}) has an "
                "empty justification — every baselined finding must say why"
            )
        fp = (entry["rule"], entry["path"], entry.get("symbol", ""), entry["message"])
        baseline.entries[fp] = justification
    return baseline


def write_baseline(path: Path, findings: list[Finding], justification: str) -> None:
    """Write ``findings`` as a fresh baseline, all sharing one justification.

    Meant for bootstrapping (``--write-baseline``); per-entry rationales
    should then be edited in by hand.
    """
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "symbol": f.symbol,
            "message": f.message,
            "justification": justification,
        }
        for f in sorted(findings)
    ]
    payload = {"version": _VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
