"""Text and JSON reporters for analysis results."""

from __future__ import annotations

import json

from .core import AnalysisResult, Finding

__all__ = ["render_text", "render_json"]


def render_text(
    result: AnalysisResult,
    baselined: int = 0,
    stale: list[tuple] | None = None,
) -> str:
    """Human-readable report: one ``path:line: [rule] message`` per finding."""
    lines: list[str] = []
    for finding in result.findings:
        where = f"{finding.path}:{finding.line}"
        scope = f" ({finding.symbol})" if finding.symbol else ""
        lines.append(f"{where}: [{finding.rule}] {finding.message}{scope}")
    for error in result.errors:
        lines.append(f"error: {error}")
    for fp in stale or []:
        rule, path, symbol, _message = fp
        scope = f" ({symbol})" if symbol else ""
        lines.append(
            f"stale baseline entry: [{rule}] {path}{scope} — no longer fires; "
            "remove it from the baseline"
        )
    summary = (
        f"{len(result.findings)} finding(s) in {result.files} file(s) "
        f"[{result.duration_s:.2f}s]"
    )
    if baselined:
        summary += f"; {baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: AnalysisResult,
    baselined: int = 0,
    stale: list[tuple] | None = None,
) -> str:
    """Machine-readable report (stable keys; findings sorted)."""
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "files": result.files,
        "duration_s": round(result.duration_s, 4),
        "rules": list(result.rules),
        "errors": list(result.errors),
        "baselined": baselined,
        "stale_baseline": [list(fp) for fp in (stale or [])],
        "clean": result.clean,
    }
    return json.dumps(payload, indent=2)


def findings_by_rule(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))
