"""Declarative serving configuration (the :mod:`repro.serve` input language).

A serving deployment is fully described by plain data: which format (or
per-layer policy) the model is compiled with, how weights are frozen, and
how the micro-batcher coalesces traffic.  :class:`SessionConfig` is that
description — spec strings from :mod:`repro.spec.grammar` for the formats,
a :class:`~repro.spec.policy.PolicySpec` payload dict for mixed-precision
deployments, and scalar batching knobs — so a config can live in a JSON
file, cross a service boundary, or be rebuilt from a CLI flag without ever
pickling live objects.

The runtime that consumes this lives in :mod:`repro.serve`
(:func:`repro.serve.compile_model` / :class:`repro.serve.InferenceSession`);
this module only defines and validates the data.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, fields

from .grammar import parse_spec, render_spec
from .policy import PolicySpec, policy_from_dict

__all__ = ["SessionConfig", "FREEZE_MODES"]

#: How compile freezes quantized weights: ``memo`` keeps FP32 masters and
#: memoizes quantized payloads on the data-version counter; ``cast``
#: additionally bakes the quantization into the stored arrays.
FREEZE_MODES = ("memo", "cast")


def _canonical_spec(value) -> str | None:
    """Canonicalize a format spelling to its spec string (None passes)."""
    if value is None:
        return None
    return render_spec(parse_spec(value))


def _canonical_policy(value) -> dict | None:
    """Canonicalize a policy spelling to its ``to_dict`` payload."""
    if value is None:
        return None
    if isinstance(value, PolicySpec):
        return value.to_dict()
    if isinstance(value, dict):
        # validate by round-tripping through the registry
        return policy_from_dict(value).to_dict()
    raise TypeError(
        f"policy must be a PolicySpec or its to_dict payload, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class SessionConfig:
    """Everything a serving session needs, as plain data.

    Attributes:
        format: weight/activation format spec string (``"mx6"``); ``None``
            serves full precision (or whatever the model already has
            installed when ``policy`` is also ``None``).
        activation: activation format override; defaults to ``format``.
        policy: a :class:`~repro.spec.policy.PolicySpec` payload dict for
            per-layer deployments (mutually exclusive with ``format``).
        freeze: one of :data:`FREEZE_MODES`.
        quantize_embeddings: also storage-quantize embedding tables.
        max_batch: micro-batcher coalescing limit (requests per batch).
        max_wait: seconds the batcher waits for co-riders after the first
            request of a batch arrives.
        workers: worker threads executing batches.
    """

    format: str | None = None
    activation: str | None = None
    policy: object = None
    freeze: str = "memo"
    quantize_embeddings: bool = False
    max_batch: int = 8
    max_wait: float = 0.002
    workers: int = 1

    def __post_init__(self):
        object.__setattr__(self, "format", _canonical_spec(self.format))
        object.__setattr__(self, "activation", _canonical_spec(self.activation))
        object.__setattr__(self, "policy", _canonical_policy(self.policy))
        if self.format is not None and self.policy is not None:
            raise ValueError("format and policy are mutually exclusive")
        if self.activation is not None and self.format is None:
            raise ValueError("activation override requires a format")
        if self.freeze not in FREEZE_MODES:
            raise ValueError(f"freeze must be one of {FREEZE_MODES}, got {self.freeze!r}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form (JSON/pickle safe); the (nested) policy payload
        is deep-copied so callers can never mutate the frozen config."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = copy.deepcopy(value) if f.name == "policy" and value else value
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "SessionConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown SessionConfig keys {sorted(unknown)}")
        return cls(**d)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SessionConfig":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes) -> "SessionConfig":
        """A copy with ``changes`` applied (re-validated)."""
        payload = self.to_dict()
        payload.update(changes)
        return SessionConfig.from_dict(payload)

    @property
    def label(self) -> str:
        """Short display name for benches and reports."""
        if self.policy is not None:
            quant = f"policy[{self.policy.get('kind', '?')}]"
        else:
            quant = self.format or "fp32"
        return f"{quant}@b{self.max_batch}x{self.workers}w"
