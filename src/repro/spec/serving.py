"""Declarative serving configuration (the :mod:`repro.serve` input language).

A serving deployment is fully described by plain data: which format (or
per-layer policy) the model is compiled with, how weights are frozen, and
how the micro-batcher coalesces traffic.  :class:`SessionConfig` is that
description — spec strings from :mod:`repro.spec.grammar` for the formats,
a :class:`~repro.spec.policy.PolicySpec` payload dict for mixed-precision
deployments, and scalar batching knobs — so a config can live in a JSON
file, cross a service boundary, or be rebuilt from a CLI flag without ever
pickling live objects.

The runtime that consumes this lives in :mod:`repro.serve`
(:func:`repro.serve.compile_model` / :class:`repro.serve.InferenceSession`);
this module only defines and validates the data.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, fields

from .grammar import parse_spec, render_spec
from .policy import PolicySpec, policy_from_dict

__all__ = ["SessionConfig", "SchedulerConfig", "FREEZE_MODES", "SHED_POLICIES"]

#: How compile freezes quantized weights: ``memo`` keeps FP32 masters and
#: memoizes quantized payloads on the data-version counter; ``cast``
#: additionally bakes the quantization into the stored arrays.
FREEZE_MODES = ("memo", "cast")

#: What admission control does when the bounded queue is full: ``reject``
#: raises :class:`~repro.serve.faults.QueueFull` at submit; ``oldest``
#: sheds the oldest queued request (its future fails with
#: :class:`~repro.serve.faults.RequestShed`) to admit the new one.
SHED_POLICIES = ("reject", "oldest")


def _canonical_spec(value) -> str | None:
    """Canonicalize a format spelling to its spec string (None passes)."""
    if value is None:
        return None
    return render_spec(parse_spec(value))


def _canonical_policy(value) -> dict | None:
    """Canonicalize a policy spelling to its ``to_dict`` payload."""
    if value is None:
        return None
    if isinstance(value, PolicySpec):
        return value.to_dict()
    if isinstance(value, dict):
        # validate by round-tripping through the registry
        return policy_from_dict(value).to_dict()
    raise TypeError(
        f"policy must be a PolicySpec or its to_dict payload, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class SchedulerConfig:
    """Continuous-batching scheduler knobs, as plain data.

    Attributes:
        max_streams: concurrent decode streams stepped together (the
            token-granularity batch cap).
        page_budget: total KV pages in the shared pool; 0 derives a
            budget that lets ``max_streams`` full-length streams coexist
            (so preemption only triggers when explicitly constrained).
        page_size: positions per page; 0 derives the compiled format's
            level-1 block size ``k1`` (pages must hold exactly one sealed
            block), falling back to 16 for unquantized attention.
        max_waiting: bound on the scheduler's waiting queue; 0 keeps it
            unbounded.  The session's ``shed_policy`` decides whether an
            overflow rejects the newcomer or sheds the oldest waiter.
        starvation_age_s: FCFS aging threshold — younger requests may
            jump a waiter blocked on pool headroom only while the waiter
            is younger than this; once it ages past, admission stalls
            behind it (starvation-proof head-of-line protection).
    """

    max_streams: int = 64
    page_budget: int = 0
    page_size: int = 0
    max_waiting: int = 0
    starvation_age_s: float = 0.5

    def __post_init__(self):
        if self.max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {self.max_streams}")
        if self.page_budget < 0:
            raise ValueError(f"page_budget must be >= 0, got {self.page_budget}")
        if self.page_size < 0:
            raise ValueError(f"page_size must be >= 0, got {self.page_size}")
        if self.max_waiting < 0:
            raise ValueError(f"max_waiting must be >= 0, got {self.max_waiting}")
        if self.starvation_age_s < 0:
            raise ValueError(
                f"starvation_age_s must be >= 0, got {self.starvation_age_s}"
            )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "SchedulerConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown SchedulerConfig keys {sorted(unknown)}")
        return cls(**d)


def _canonical_scheduler(value) -> dict | None:
    """Canonicalize a scheduler spelling to its ``to_dict`` payload."""
    if value is None:
        return None
    if isinstance(value, SchedulerConfig):
        return value.to_dict()
    if isinstance(value, dict):
        return SchedulerConfig.from_dict(value).to_dict()
    raise TypeError(
        "scheduler must be a SchedulerConfig or its to_dict payload, "
        f"got {type(value).__name__}"
    )


@dataclass(frozen=True)
class SessionConfig:
    """Everything a serving session needs, as plain data.

    Attributes:
        format: weight/activation format spec string (``"mx6"``); ``None``
            serves full precision (or whatever the model already has
            installed when ``policy`` is also ``None``).
        activation: activation format override; defaults to ``format``.
        policy: a :class:`~repro.spec.policy.PolicySpec` payload dict for
            per-layer deployments (mutually exclusive with ``format``).
        freeze: one of :data:`FREEZE_MODES`.
        quantize_embeddings: also storage-quantize embedding tables.
        max_batch: micro-batcher coalescing limit (requests per batch).
        max_wait: seconds the batcher waits for co-riders after the first
            request of a batch arrives.
        workers: worker threads executing batches.
        max_queue: bound on *queued* (not yet executing) requests; 0 keeps
            the queue unbounded (no admission control).
        shed_policy: one of :data:`SHED_POLICIES`; what admission does when
            the bounded queue is full.
        default_timeout: per-request deadline (seconds from submission)
            applied to requests that carry no explicit ``timeout``; None
            disables deadlines by default.
        max_retries: how many times a batch whose failure is classified
            transient (:func:`~repro.serve.faults.is_transient`) is
            re-executed before the failure becomes terminal.
        retry_backoff: base of the exponential backoff between retries
            (sleep ``retry_backoff * 2**attempt`` seconds).
        watchdog_interval: heartbeat-check period of the hung-worker
            watchdog; 0 disables the watchdog thread.
        hang_timeout: a worker whose heartbeat is older than this while a
            batch is in flight is declared hung and replaced.
        degrade_ladder: ordered format spec strings (cheapest last) the
            session may degrade to under overload / a tripped breaker;
            None/empty disables graceful degradation.
        degrade_queue_depth: queue depth at which degraded serving starts
            (each further multiple steps one more ladder rung down); 0
            disables overload-triggered degradation.
        breaker_threshold: consecutive execution failures that trip the
            circuit breaker; 0 disables the breaker.
        breaker_cooldown: seconds the tripped breaker stays open before
            probing full fidelity again (half-open).
        scheduler: a :class:`SchedulerConfig` payload dict enabling the
            continuous-batching decode scheduler (paged KV pool +
            token-granularity admission); None keeps ``generate``
            requests on the classic micro-batcher.
    """

    format: str | None = None
    activation: str | None = None
    policy: object = None
    freeze: str = "memo"
    quantize_embeddings: bool = False
    max_batch: int = 8
    max_wait: float = 0.002
    workers: int = 1
    max_queue: int = 0
    shed_policy: str = "reject"
    default_timeout: float | None = None
    max_retries: int = 0
    retry_backoff: float = 0.05
    watchdog_interval: float = 0.0
    hang_timeout: float = 5.0
    degrade_ladder: tuple = ()
    degrade_queue_depth: int = 0
    breaker_threshold: int = 0
    breaker_cooldown: float = 1.0
    scheduler: object = None

    def __post_init__(self):
        object.__setattr__(self, "scheduler", _canonical_scheduler(self.scheduler))
        object.__setattr__(self, "format", _canonical_spec(self.format))
        object.__setattr__(self, "activation", _canonical_spec(self.activation))
        object.__setattr__(self, "policy", _canonical_policy(self.policy))
        if self.format is not None and self.policy is not None:
            raise ValueError("format and policy are mutually exclusive")
        if self.activation is not None and self.format is None:
            raise ValueError("activation override requires a format")
        if self.freeze not in FREEZE_MODES:
            raise ValueError(f"freeze must be one of {FREEZE_MODES}, got {self.freeze!r}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        ladder = self.degrade_ladder or ()
        if isinstance(ladder, str):
            raise TypeError("degrade_ladder must be a sequence of specs, not a string")
        object.__setattr__(
            self, "degrade_ladder", tuple(_canonical_spec(s) for s in ladder)
        )
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be positive or None, got {self.default_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {self.retry_backoff}")
        if self.watchdog_interval < 0:
            raise ValueError(
                f"watchdog_interval must be >= 0, got {self.watchdog_interval}"
            )
        if self.hang_timeout <= 0:
            raise ValueError(f"hang_timeout must be > 0, got {self.hang_timeout}")
        if self.degrade_queue_depth < 0:
            raise ValueError(
                f"degrade_queue_depth must be >= 0, got {self.degrade_queue_depth}"
            )
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, got {self.breaker_cooldown}"
            )
        if self.degrade_queue_depth > 0 and not self.degrade_ladder:
            raise ValueError("degrade_queue_depth requires a degrade_ladder")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form (JSON/pickle safe); the (nested) policy payload
        is deep-copied so callers can never mutate the frozen config."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in ("policy", "scheduler") and value:
                value = copy.deepcopy(value)
            elif f.name == "degrade_ladder":
                value = list(value)  # JSON has no tuples
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "SessionConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown SessionConfig keys {sorted(unknown)}")
        return cls(**d)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SessionConfig":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes) -> "SessionConfig":
        """A copy with ``changes`` applied (re-validated)."""
        payload = self.to_dict()
        payload.update(changes)
        return SessionConfig.from_dict(payload)

    @property
    def label(self) -> str:
        """Short display name for benches and reports."""
        if self.policy is not None:
            quant = f"policy[{self.policy.get('kind', '?')}]"
        else:
            quant = self.format or "fp32"
        return f"{quant}@b{self.max_batch}x{self.workers}w"
