"""The declarative configuration layer: one serializable language for
formats, quant specs, and per-layer policies.

* :func:`parse_spec` / :func:`render_spec` — the FormatSpec mini-language
  (``"mx6"``, ``"bdr(m=4,k1=16,d1=8,k2=2,d2=1,ss=pow2)"``,
  ``"mx9?rounding=stochastic"``).
* :func:`as_format` — universal coercer accepted by every public entry
  point (``repro.quantize``, :class:`~repro.nn.quantized.QuantSpec`,
  ``measure_qsnr``, ``run_sweep``, the flow casts).
* :class:`PolicySpec` and friends — JSON-able per-layer precision
  policies that compile to the classic callable form.
* :class:`SessionConfig` — the declarative serving configuration consumed
  by :mod:`repro.serve` (compile format/policy + micro-batching knobs).
"""

from .grammar import (
    FormatSpec,
    PinnedRounding,
    SpecError,
    as_format,
    format_to_spec,
    parse_spec,
    render_spec,
)
from .policy import (
    FirstLastHighPolicy,
    PolicyRule,
    PolicySpec,
    RulePolicy,
    UniformPolicy,
    compile_policy,
    policy_from_dict,
)
from .serving import SessionConfig

__all__ = [
    "FormatSpec",
    "PinnedRounding",
    "SpecError",
    "as_format",
    "format_to_spec",
    "parse_spec",
    "render_spec",
    "PolicySpec",
    "UniformPolicy",
    "FirstLastHighPolicy",
    "PolicyRule",
    "RulePolicy",
    "compile_policy",
    "policy_from_dict",
    "SessionConfig",
]
