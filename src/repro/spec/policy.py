"""Declarative per-layer precision policies: data in, callables out.

:mod:`repro.flow.policy` expresses Table VI's mixed-precision recipes as
closures, which cannot cross a process boundary (``pickle``) or a service
boundary (JSON).  This module replaces them with plain data objects that

* serialize to/from JSON (:meth:`PolicySpec.to_json` /
  :meth:`PolicySpec.from_json`) and pickle untouched (they hold only
  strings, dicts and tuples);
* still *compile* to the old ``(name, module) -> QuantSpec | None``
  callable via :meth:`PolicySpec.build`, so
  :func:`~repro.flow.policy.apply_quant_policy` and everything downstream
  keeps working.

Quantization payloads inside a policy are stored in the
:meth:`~repro.nn.quantized.QuantSpec.to_dict` form — role spec strings from
the :mod:`repro.spec.grammar` mini-language — and a bare string like
``"mx6"`` is shorthand for the uniform payload (every role in that format,
nearest rounding), matching :meth:`QuantSpec.uniform`.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from ..nn.quantized import QuantSpec
from .grammar import render_spec

__all__ = [
    "PolicySpec",
    "UniformPolicy",
    "FirstLastHighPolicy",
    "PolicyRule",
    "RulePolicy",
    "compile_policy",
    "policy_from_dict",
]

#: The role keys of a quant payload dict.
_ROLES = ("activation", "weight", "backward")


def _normalize_quant(quant) -> dict | None:
    """Normalize any QuantSpec spelling into the canonical payload dict.

    ``None`` -> None (keep the layer FP32); a spec string/dict/FormatSpec
    -> uniform payload; a payload dict (has role keys) -> canonicalized; a
    :class:`QuantSpec` -> its ``to_dict`` form.
    """
    if quant is None:
        return None
    if isinstance(quant, QuantSpec):
        return quant.to_dict()
    if isinstance(quant, dict) and "base" in quant:
        # a format-spec dict ({"base": ...}), not a role payload
        quant = render_spec(quant)
    if isinstance(quant, dict):
        unknown = set(quant) - set(_ROLES) - {"rounding"}
        if unknown:
            raise ValueError(f"unknown quant payload keys {sorted(unknown)}")
        out = {
            role: None if quant.get(role) is None else render_spec(quant[role])
            for role in _ROLES
        }
        out["rounding"] = quant.get("rounding", "nearest")
        return out
    uniform = render_spec(quant)
    return {role: uniform for role in _ROLES} | {"rounding": "nearest"}


def _compile_quant(payload: dict | None) -> QuantSpec | None:
    return None if payload is None else QuantSpec.from_dict(payload)


def _copy_payload(payload: dict | None) -> dict | None:
    """Shallow-copy a quant payload so serialized output never aliases the
    (frozen) policy's internal state."""
    return None if payload is None else dict(payload)


def _payload_label(payload: dict | None) -> str:
    if payload is None:
        return "fp32"
    roles = {payload.get(role) for role in _ROLES}
    if len(roles) == 1:
        return next(iter(roles)) or "fp32"
    return "/".join(str(payload.get(role)) for role in _ROLES)


class PolicySpec(abc.ABC):
    """A serializable per-layer precision policy."""

    #: discriminator used by :func:`policy_from_dict`
    kind: str = ""
    _KINDS: dict[str, type] = {}

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.kind:
            PolicySpec._KINDS[cls.kind] = cls

    @abc.abstractmethod
    def build(self, model):
        """Compile to the classic ``(name, module) -> QuantSpec | None``
        callable, resolving any model-dependent structure (e.g. boundary
        layers) against ``model``."""

    @abc.abstractmethod
    def to_dict(self) -> dict:
        """Plain-data form including the ``kind`` discriminator."""

    @property
    def label(self) -> str:
        """Short display name for sweeps and reports."""
        return self.name or self._default_label()

    def _default_label(self) -> str:
        return self.kind

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_dict(d: dict) -> "PolicySpec":
        return policy_from_dict(d)

    @staticmethod
    def from_json(text: str) -> "PolicySpec":
        return policy_from_dict(json.loads(text))


def policy_from_dict(d: dict) -> PolicySpec:
    """Rebuild any :class:`PolicySpec` from its ``to_dict`` form."""
    if not isinstance(d, dict) or "kind" not in d:
        raise ValueError(f"a policy dict needs a 'kind' key, got {d!r}")
    kind = d["kind"]
    cls = PolicySpec._KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown policy kind {kind!r}; known kinds: "
            f"{sorted(PolicySpec._KINDS)}"
        )
    return cls._from_payload({k: v for k, v in d.items() if k != "kind"})


def compile_policy(policy, model):
    """Coerce a :class:`PolicySpec`, policy dict, or classic callable into
    the callable form expected by ``apply_quant_policy``."""
    if isinstance(policy, dict):
        policy = policy_from_dict(policy)
    if isinstance(policy, PolicySpec):
        return policy.build(model)
    return policy


@dataclass(frozen=True)
class UniformPolicy(PolicySpec):
    """Every quantizable layer gets the same spec (``None`` = FP32)."""

    kind = "uniform"
    quant: object = None
    name: str | None = field(default=None, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "quant", _normalize_quant(self.quant))

    def build(self, model):
        del model
        spec = _compile_quant(self.quant)

        def policy(name, module):
            del name, module
            return spec

        return policy

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "quant": _copy_payload(self.quant)}
        if self.name:
            out["name"] = self.name
        return out

    @classmethod
    def _from_payload(cls, d: dict) -> "UniformPolicy":
        return cls(quant=d.get("quant"), name=d.get("name"))

    def _default_label(self) -> str:
        return f"uniform[{_payload_label(self.quant)}]"


@dataclass(frozen=True)
class FirstLastHighPolicy(PolicySpec):
    """Quantize everything except the first/last quantizable layers.

    ``high`` (default FP32) lands on the boundary layers — the Table VI
    mixed-precision recipe.
    """

    kind = "first_last_high"
    quant: object = None
    high: object = None
    name: str | None = field(default=None, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "quant", _normalize_quant(self.quant))
        object.__setattr__(self, "high", _normalize_quant(self.high))

    def build(self, model):
        from ..flow.policy import quantizable_modules

        names = [name for name, _ in quantizable_modules(model)]
        boundary = {names[0], names[-1]} if names else set()
        low = _compile_quant(self.quant)
        high = _compile_quant(self.high)

        def policy(name, module):
            del module
            return high if name in boundary else low

        return policy

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "quant": _copy_payload(self.quant),
            "high": _copy_payload(self.high),
        }
        if self.name:
            out["name"] = self.name
        return out

    @classmethod
    def _from_payload(cls, d: dict) -> "FirstLastHighPolicy":
        return cls(quant=d.get("quant"), high=d.get("high"), name=d.get("name"))

    def _default_label(self) -> str:
        return (
            f"first_last_high[{_payload_label(self.quant)};"
            f"high={_payload_label(self.high)}]"
        )


@dataclass(frozen=True)
class PolicyRule:
    """One match clause of a :class:`RulePolicy`.

    A rule matches when *all* of its set criteria hold:

    * ``name_glob`` — ``fnmatch`` pattern against the dotted module name
      (``"encoder.*"``, ``"*.head"``);
    * ``layer_type`` — class name anywhere in the module's MRO
      (``"Linear"``, ``"Conv2d"``, ``"MultiHeadAttention"``).
    """

    quant: object = None
    name_glob: str | None = None
    layer_type: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "quant", _normalize_quant(self.quant))

    def matches(self, name: str, module) -> bool:
        if self.name_glob is not None and not fnmatchcase(name, self.name_glob):
            return False
        if self.layer_type is not None and not any(
            c.__name__ == self.layer_type for c in type(module).__mro__
        ):
            return False
        return True

    def to_dict(self) -> dict:
        out: dict = {"quant": _copy_payload(self.quant)}
        if self.name_glob is not None:
            out["name_glob"] = self.name_glob
        if self.layer_type is not None:
            out["layer_type"] = self.layer_type
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "PolicyRule":
        unknown = set(d) - {"quant", "name_glob", "layer_type"}
        if unknown:
            raise ValueError(f"unknown rule keys {sorted(unknown)}")
        return cls(
            quant=d.get("quant"),
            name_glob=d.get("name_glob"),
            layer_type=d.get("layer_type"),
        )


@dataclass(frozen=True)
class RulePolicy(PolicySpec):
    """First-matching-rule policy with a default for unmatched layers.

    Layers sharing a rule share one compiled :class:`QuantSpec` instance
    (as :func:`~repro.flow.policy.uniform_policy` shares its spec), so
    stateful formats accumulate history per rule, not per layer.
    """

    kind = "rules"
    rules: tuple[PolicyRule, ...] = ()
    default: object = None
    name: str | None = field(default=None, compare=False)

    def __post_init__(self):
        rules = tuple(
            r if isinstance(r, PolicyRule) else PolicyRule.from_dict(r)
            for r in self.rules
        )
        object.__setattr__(self, "rules", rules)
        object.__setattr__(self, "default", _normalize_quant(self.default))

    def build(self, model):
        del model
        compiled = [_compile_quant(rule.quant) for rule in self.rules]
        default = _compile_quant(self.default)

        def policy(name, module):
            for rule, spec in zip(self.rules, compiled):
                if rule.matches(name, module):
                    return spec
            return default

        return policy

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "rules": [rule.to_dict() for rule in self.rules],
            "default": _copy_payload(self.default),
        }
        if self.name:
            out["name"] = self.name
        return out

    @classmethod
    def _from_payload(cls, d: dict) -> "RulePolicy":
        unknown = set(d) - {"rules", "default", "name"}
        if unknown:
            raise ValueError(f"unknown policy keys {sorted(unknown)}")
        return cls(
            rules=tuple(d.get("rules") or ()),
            default=d.get("default"),
            name=d.get("name"),
        )

    def _default_label(self) -> str:
        return f"rules[{len(self.rules)};default={_payload_label(self.default)}]"
