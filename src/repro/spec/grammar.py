"""The FormatSpec mini-language: one string form for every design point.

The paper frames MX4/6/9, MSFP, INT and VSQ as *corners* of one BDR design
space; this module gives every point in that space a canonical, serializable
spelling so configs can cross process/service boundaries as plain strings::

    spec        := base [ "(" params ")" ] [ "?" options ]
    base        := registered name        ("mx6", "fp8_e4m3", "vsq4", ...)
                 | family name            ("bdr", "mx", "bfp", "int", "vsq",
                                           "float")
    params      := key "=" value { "," key "=" value }      (families only)
    options     := key "=" value { "&" key "=" value }

Examples::

    mx6
    bdr(m=4,k1=16,d1=8,s=pow2,k2=2,d2=1,ss=pow2)
    vsq(bits=4,d2=8)?scaling=jit
    float(e=4,m=3,enc=fn)?scaling=delayed&window=8
    mx9?rounding=stochastic&seed=7

Three invariants anchor the layer:

* ``parse_spec(render_spec(s)) == s`` — the canonical form is a fixed point.
* ``as_format(name)`` is *bit-identical* to ``get_format(name)`` for every
  registered name (the coercer routes named bases through the registry).
* ``parse_spec(format_to_spec(fmt))`` reconstructs a format whose
  ``quantize`` output is bit-identical to ``fmt`` (fresh state, same math).

``rounding`` is special: formats take rounding per ``quantize`` call, so a
``?rounding=...`` option *pins* the mode via a delegating wrapper (see
:class:`PinnedRounding`) rather than configuring the constructor.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from ..core.bdr import SCALE_TYPES, SUBSCALE_TYPES, BDRConfig
from ..core.rounding import ROUNDING_MODES
from ..formats.base import Format, IdentityFormat
from ..formats.bdr_format import BDRFormat, BFPFormat, IntFormat, MXFormat, VSQFormat
from ..formats.registry import get_format, is_registered, normalize_format_name
from ..formats.scalar_float import ENCODINGS, FloatSpec, ScalarFloatFormat

__all__ = [
    "FormatSpec",
    "PinnedRounding",
    "SpecError",
    "as_format",
    "format_to_spec",
    "parse_spec",
    "render_spec",
]


class SpecError(ValueError):
    """A spec string/dict that does not parse or does not describe a format."""


# ----------------------------------------------------------------------
# The spec value object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FormatSpec:
    """A parsed design point: pure data, hashable, picklable, JSON-able.

    ``params`` configure the format itself (family parameters); ``options``
    configure how it is *driven* (software scaling mode, window, rounding).
    Both are stored as sorted tuples of pairs so equal specs compare and
    hash equal regardless of spelling order.
    """

    base: str
    params: tuple[tuple[str, object], ...] = field(default=())
    options: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self):
        object.__setattr__(self, "params", tuple(sorted(dict(self.params).items())))
        object.__setattr__(self, "options", tuple(sorted(dict(self.options).items())))

    @property
    def param_dict(self) -> dict[str, object]:
        return dict(self.params)

    @property
    def option_dict(self) -> dict[str, object]:
        return dict(self.options)

    @property
    def is_family(self) -> bool:
        return self.base in FAMILIES

    def canonical(self) -> str:
        """The canonical string spelling (see :func:`render_spec`)."""
        return render_spec(self)

    def to_format(self) -> Format:
        """Construct a fresh :class:`Format` for this design point."""
        return as_format(self)

    def to_dict(self) -> dict:
        """Plain-dict form (for JSON payloads that prefer structure)."""
        out: dict = {"base": self.base}
        if self.params:
            out["params"] = dict(self.params)
        if self.options:
            out["options"] = dict(self.options)
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "FormatSpec":
        if "base" not in d:
            raise SpecError(f"format spec dict needs a 'base' key, got {sorted(d)}")
        unknown = set(d) - {"base", "params", "options"}
        if unknown:
            raise SpecError(f"unknown format spec keys {sorted(unknown)}")
        return cls(
            base=_normalize_name(str(d["base"])),
            params=tuple(dict(d.get("params") or {}).items()),
            options=tuple(dict(d.get("options") or {}).items()),
        )

    def __str__(self) -> str:
        return self.canonical()


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_SPEC_RE = re.compile(
    r"^(?P<base>[A-Za-z_][A-Za-z0-9_.\s\-]*?)"
    r"(?:\((?P<params>[^()]*)\))?"
    r"(?:\?(?P<options>.*))?$"
)


#: base names share the registry's key normalization
_normalize_name = normalize_format_name


def _parse_value(text: str) -> object:
    """Ints stay ints, floats stay floats, everything else is a string."""
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.lower()


def _parse_pairs(text: str, pair_sep: str, what: str) -> dict[str, object]:
    pairs: dict[str, object] = {}
    for item in text.split(pair_sep):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise SpecError(f"{what} {item!r} is not of the form key=value")
        key, _, value = item.partition("=")
        key = key.strip().lower()
        if key in pairs:
            raise SpecError(f"duplicate {what} {key!r}")
        pairs[key] = _parse_value(value)
    return pairs


def parse_spec(spec: "str | dict | FormatSpec | Format") -> FormatSpec:
    """Parse any spec spelling into a canonical :class:`FormatSpec`.

    Accepts the string mini-language, the dict form, an existing
    :class:`FormatSpec` (returned as-is) or a :class:`Format` instance
    (reverse-mapped via :func:`format_to_spec`).
    """
    if isinstance(spec, FormatSpec):
        return spec
    if isinstance(spec, Format):
        return parse_spec(format_to_spec(spec))
    if isinstance(spec, dict):
        out = FormatSpec.from_dict(spec)
        _validate(out)
        return out
    if not isinstance(spec, str):
        raise SpecError(
            f"cannot parse a format spec from {type(spec).__name__}: {spec!r}"
        )
    match = _SPEC_RE.match(spec.strip())
    if match is None:
        raise SpecError(f"malformed format spec {spec!r}")
    base = _normalize_name(match.group("base"))
    params = _parse_pairs(match.group("params") or "", ",", "parameter")
    options = _parse_pairs(match.group("options") or "", "&", "option")
    out = FormatSpec(base=base, params=tuple(params.items()), options=tuple(options.items()))
    _validate(out)
    return out


def render_spec(spec: "FormatSpec | str | dict | Format") -> str:
    """Render the canonical string form of a spec.

    Family parameters are emitted in the family's declaration order (so the
    output is stable and readable); options are emitted sorted by key.
    ``parse_spec(render_spec(s)) == parse_spec(s)`` always holds.
    """
    spec = parse_spec(spec)
    text = spec.base
    if spec.params:
        order = FAMILIES[spec.base].order if spec.is_family else ()
        params = dict(spec.params)
        keys = [k for k in order if k in params]
        keys += [k for k in sorted(params) if k not in order]
        text += "(" + ",".join(f"{k}={params[k]}" for k in keys) + ")"
    if spec.options:
        text += "?" + "&".join(f"{k}={v}" for k, v in spec.options)
    return text


# ----------------------------------------------------------------------
# Families: the parameterized corners of the design space
# ----------------------------------------------------------------------
class _Family:
    """One parameterized family: declared parameters and a builder."""

    def __init__(self, order, required, build, choices=None, opt_keys=("scaling", "window")):
        self.order = tuple(order)
        self.required = frozenset(required)
        self.build = build
        self.choices = choices or {}
        self.opt_keys = frozenset(opt_keys)

    def validate(self, base: str, params: dict[str, object]) -> None:
        unknown = set(params) - set(self.order)
        if unknown:
            raise SpecError(
                f"{base}(...) does not take {sorted(unknown)}; "
                f"parameters are {list(self.order)}"
            )
        missing = self.required - set(params)
        if missing:
            raise SpecError(f"{base}(...) requires {sorted(missing)}")
        for key, allowed in self.choices.items():
            if key in params and params[key] not in allowed:
                raise SpecError(
                    f"{base}(...): {key} must be one of {sorted(allowed)}, "
                    f"got {params[key]!r}"
                )


def _int_param(params: dict, key: str, default: int | None = None) -> int:
    value = params.get(key, default)
    if not isinstance(value, int):
        raise SpecError(f"parameter {key!r} must be an integer, got {value!r}")
    return value


def _build_bdr(params: dict, options: dict) -> Format:
    config = BDRConfig(
        m=_int_param(params, "m"),
        k1=_int_param(params, "k1"),
        d1=_int_param(params, "d1"),
        s_type=str(params.get("s", "pow2")),
        k2=_int_param(params, "k2", 1),
        d2=_int_param(params, "d2", 0),
        ss_type=str(params.get("ss", "none")),
    )
    return BDRFormat(config, **_scaling_kwargs(options, default_scaling="jit"))


def _build_mx(params: dict, options: dict) -> Format:
    return MXFormat(
        m=_int_param(params, "m"),
        k1=_int_param(params, "k1", 16),
        k2=_int_param(params, "k2", 2),
        d1=_int_param(params, "d1", 8),
        d2=_int_param(params, "d2", 1),
        **_scaling_kwargs(options, default_scaling="jit"),
    )


def _build_bfp(params: dict, options: dict) -> Format:
    return BFPFormat(
        m=_int_param(params, "m"),
        k1=_int_param(params, "k1", 16),
        d1=_int_param(params, "d1", 8),
        **_scaling_kwargs(options, default_scaling="jit"),
    )


def _build_int(params: dict, options: dict) -> Format:
    return IntFormat(
        _int_param(params, "bits"),
        k1=_int_param(params, "k1", 1024),
        **_scaling_kwargs(options, default_scaling="delayed"),
    )


def _build_vsq(params: dict, options: dict) -> Format:
    return VSQFormat(
        _int_param(params, "bits"),
        d2=_int_param(params, "d2", 6),
        k1=_int_param(params, "k1", 1024),
        k2=_int_param(params, "k2", 16),
        **_scaling_kwargs(options, default_scaling="delayed"),
    )


def _build_float(params: dict, options: dict) -> Format:
    spec = FloatSpec(
        exponent_bits=_int_param(params, "e"),
        mantissa_bits=_int_param(params, "m"),
        encoding=str(params.get("enc", "fnuz_all")),
    )
    kwargs = _scaling_kwargs(options, default_scaling="none")
    if "k1" in options:
        kwargs["k1"] = _int_param(options, "k1")
    return ScalarFloatFormat(spec, **kwargs)


def _scaling_kwargs(options: dict, default_scaling: str) -> dict:
    kwargs = {"scaling": str(options.get("scaling", default_scaling))}
    if "window" in options:
        kwargs["window"] = _int_param(options, "window")
    return kwargs


FAMILIES: dict[str, _Family] = {
    "bdr": _Family(
        order=("m", "k1", "d1", "s", "k2", "d2", "ss"),
        required=("m", "k1", "d1"),
        build=_build_bdr,
        choices={"s": set(SCALE_TYPES), "ss": set(SUBSCALE_TYPES)},
    ),
    "mx": _Family(("m", "k1", "k2", "d1", "d2"), ("m",), _build_mx),
    "bfp": _Family(("m", "k1", "d1"), ("m",), _build_bfp),
    "int": _Family(("bits", "k1"), ("bits",), _build_int),
    "vsq": _Family(("bits", "d2", "k1", "k2"), ("bits",), _build_vsq),
    "float": _Family(
        ("e", "m", "enc"),
        ("e", "m"),
        _build_float,
        choices={"enc": set(ENCODINGS)},
        opt_keys=("scaling", "window", "k1"),
    ),
}

#: Options understood by the driving layer rather than the constructors.
_CALL_OPTIONS = frozenset({"rounding", "seed"})


def _validate(spec: FormatSpec) -> None:
    params = spec.param_dict
    options = spec.option_dict
    if spec.is_family:
        FAMILIES[spec.base].validate(spec.base, params)
    elif params:
        raise SpecError(
            f"parameters are only valid for family bases {sorted(FAMILIES)}; "
            f"{spec.base!r} is a named format"
        )
    elif not is_registered(spec.base):
        # surface the registry's suggestion-bearing error message
        get_format(spec.base)
    rounding = options.get("rounding")
    if rounding is not None and rounding not in ROUNDING_MODES:
        raise SpecError(
            f"rounding must be one of {ROUNDING_MODES}, got {rounding!r}"
        )
    if "seed" in options:
        if not isinstance(options["seed"], int):
            raise SpecError(f"seed must be an integer, got {options['seed']!r}")
        if rounding != "stochastic":
            raise SpecError(
                "seed only applies to '?rounding=stochastic' specs; "
                "it would be silently ignored here"
            )


# ----------------------------------------------------------------------
# The universal coercer
# ----------------------------------------------------------------------
def as_format(spec: "Format | FormatSpec | str | dict") -> Format:
    """Coerce any format description into a :class:`Format` instance.

    * ``Format`` instances pass through unchanged (no copy — callers own
      any statefulness).
    * strings / dicts / :class:`FormatSpec` construct a *fresh* instance:
      named bases go through :func:`~repro.formats.registry.get_format`
      (bit-identical to calling it directly), family bases through the
      family builders above.
    """
    if isinstance(spec, Format):
        return spec
    spec = parse_spec(spec)
    _validate(spec)  # hand-built FormatSpec objects skip the parse path
    options = spec.option_dict
    ctor_options = {k: v for k, v in options.items() if k not in _CALL_OPTIONS}
    if spec.is_family:
        family = FAMILIES[spec.base]
        unknown = set(ctor_options) - family.opt_keys
        if unknown:
            raise SpecError(
                f"{spec.base}(...) does not understand options {sorted(unknown)}; "
                f"valid options are {sorted(family.opt_keys | _CALL_OPTIONS)}"
            )
        fmt = family.build(spec.param_dict, ctor_options)
    else:
        try:
            fmt = get_format(spec.base, **ctor_options)
        except TypeError as error:
            raise SpecError(
                f"format {spec.base!r} does not accept options "
                f"{sorted(ctor_options)}: {error}"
            ) from None
    # the bare (unwrapped) format's origin must not carry call options:
    # anyone unwrapping via `.inner` serializes the format they actually hold
    fmt._spec_origin = render_spec(
        FormatSpec(spec.base, spec.params, tuple(ctor_options.items()))
    )
    rounding = options.get("rounding")
    if rounding is not None and rounding != "nearest":
        fmt = PinnedRounding(fmt, rounding, seed=options.get("seed", 0))
        fmt._spec_origin = render_spec(spec)
    return fmt


class PinnedRounding(Format):
    """Delegate that pins a non-default rounding mode onto a format.

    A ``?rounding=stochastic`` spec means *this format rounds
    stochastically*; the pin overrides whatever per-call mode the consumer
    would pass, so the spec string stays the single source of truth.  A
    seeded generator is created per instance (``?seed=N``, default 0) so
    results are reproducible; :meth:`reset_state` rewinds it.
    """

    def __init__(self, inner: Format, rounding: str, seed: int = 0):
        if rounding not in ROUNDING_MODES:
            raise SpecError(f"unknown rounding mode {rounding!r}")
        self.inner = inner
        self.rounding = rounding
        self.seed = seed
        self.name = inner.name
        self._rng = np.random.default_rng(seed)

    def quantize(self, x, axis=-1, rounding="nearest", rng=None):
        del rounding  # pinned — the spec wins over the call site
        return self.inner.quantize(
            x, axis=axis, rounding=self.rounding, rng=rng if rng is not None else self._rng
        )

    def quantize_partial(self, x, axis=-1, rounding="nearest", rng=None):
        del rounding  # pinned — the spec wins over the call site
        return self.inner.quantize_partial(
            x, axis=axis, rounding=self.rounding, rng=rng if rng is not None else self._rng
        )

    def block_size(self):
        return self.inner.block_size()

    @property
    def bits_per_element(self) -> float:
        return self.inner.bits_per_element

    @property
    def is_stateless(self) -> bool:
        # stochastic draws advance the generator; truncate stays a pure map
        return self.rounding == "truncate" and self.inner.is_stateless

    def cache_key(self):
        if self.rounding != "truncate":
            return None
        inner_key = self.inner.cache_key()
        return None if inner_key is None else ("pinned", self.rounding, inner_key)

    def reset_state(self):
        self.inner.reset_state()
        self._rng = np.random.default_rng(self.seed)

    def __repr__(self):
        return f"PinnedRounding({self.inner!r}, rounding={self.rounding!r})"


# ----------------------------------------------------------------------
# Reverse mapping: Format instance -> spec
# ----------------------------------------------------------------------
def format_to_spec(fmt: Format) -> str:
    """Render the canonical spec string that reconstructs ``fmt``.

    The reconstruction is *behavioral*: a freshly built format from the
    returned spec quantizes bit-identically to a freshly reset ``fmt``
    (display names may differ for synthesized family spellings).  Formats
    built by :func:`as_format` remember their origin spelling and return it
    verbatim.

    Raises:
        SpecError: for formats outside the spec language (e.g. custom
            :class:`Format` subclasses, :class:`ThreeLevelFormat`).
    """
    origin = getattr(fmt, "_spec_origin", None)
    if origin is not None:
        return origin
    if isinstance(fmt, PinnedRounding):
        inner = parse_spec(format_to_spec(fmt.inner))
        options = dict(inner.options)
        options["rounding"] = fmt.rounding
        if fmt.seed != 0:
            options["seed"] = fmt.seed
        return render_spec(
            FormatSpec(inner.base, inner.params, tuple(options.items()))
        )
    if isinstance(fmt, IdentityFormat):
        return "fp32"
    if isinstance(fmt, ScalarFloatFormat):
        params = {"e": fmt.spec.exponent_bits, "m": fmt.spec.mantissa_bits}
        if fmt.spec.encoding != "fnuz_all":
            params["enc"] = fmt.spec.encoding
        options: dict[str, object] = {}
        if fmt.scaling != "none":
            options["scaling"] = fmt.scaling
            if fmt._scaler.window != 16:
                options["window"] = fmt._scaler.window
            if fmt.k1 != 10240:
                options["k1"] = fmt.k1
        return render_spec(FormatSpec("float", tuple(params.items()), tuple(options.items())))
    if isinstance(fmt, BDRFormat):
        c = fmt.config
        params = {"m": c.m, "k1": c.k1, "d1": c.d1}
        if c.s_type != "pow2":
            params["s"] = c.s_type
        if c.ss_type != "none":
            params["k2"] = c.k2
            params["d2"] = c.d2
            params["ss"] = c.ss_type
        options = {}
        if fmt._software_scaled:
            options["scaling"] = fmt.scaling
            if fmt.window != 16:
                options["window"] = fmt.window
        return render_spec(FormatSpec("bdr", tuple(params.items()), tuple(options.items())))
    raise SpecError(
        f"{type(fmt).__name__} ({fmt.name!r}) has no spec-language spelling; "
        "register it as a named format or pass the instance directly"
    )
