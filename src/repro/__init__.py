"""repro: a from-scratch reproduction of "With Shared Microexponents,
A Little Shifting Goes a Long Way" (ISCA 2023).

Public API highlights:

* :func:`repro.quantize` / :func:`repro.spec` — the one-call facade over
  the declarative spec layer (``repro.quantize(x, "mx6")``).
* :class:`repro.core.BDRConfig` — the Block Data Representations design space.
* :func:`repro.core.mx_quantize` / :data:`repro.core.MX9` — the MX formats.
* :func:`repro.formats.get_format` — every format family from Figure 7.
* :mod:`repro.spec` — the serializable spec language for formats, quant
  specs and per-layer policies (``"bdr(m=4,k1=16,d1=8)"``, PolicySpec JSON).
* :func:`repro.fidelity.measure_qsnr` — the paper's statistical methodology.
* :mod:`repro.hardware` — the dot-product area and memory cost models.
* :mod:`repro.nn` / :mod:`repro.flow` — quantized training and inference.
* :func:`repro.compile` / :mod:`repro.serve` — the quantize-once serving
  tier (``repro.compile(model, "mx6").session(max_batch=16)``).
* :mod:`repro.experiments` — one runner per table and figure.
"""

from .core import (
    MX4,
    MX6,
    MX9,
    BDRConfig,
    bdr_quantize,
    mx_quantize,
    qsnr_lower_bound,
)
from .formats import Format, get_format, list_formats
from .spec import (
    FirstLastHighPolicy,
    FormatSpec,
    PolicyRule,
    PolicySpec,
    RulePolicy,
    SessionConfig,
    UniformPolicy,
    as_format,
    format_to_spec,
    parse_spec,
    render_spec,
)

__version__ = "1.1.0"


def quantize(x, fmt, axis: int = -1, rounding: str | None = None, rng=None):
    """Fake-quantize ``x`` with any format spelling, in one call.

    ``repro.quantize(x, "mx6")`` is the library's front door: ``fmt`` may
    be a registered name, a spec-language string (``"bdr(m=4,k1=16,d1=8)"``,
    ``"mx9?rounding=stochastic"``), a spec dict, a
    :class:`~repro.spec.FormatSpec`, or a :class:`Format` instance.

    Args:
        x: array-like to quantize.
        fmt: the format description.
        axis: reduction axis of the consuming dot product (block formats
            quantize along it).
        rounding: per-call rounding override; ``None`` uses the format's
            default (or pinned) mode.
        rng: generator for stochastic rounding.
    """
    kwargs = {} if rounding is None else {"rounding": rounding}
    if rng is not None:
        kwargs["rng"] = rng
    return as_format(fmt).quantize(x, axis=axis, **kwargs)


def compile(model, fmt=None, **kwargs):
    """Freeze ``model`` for quantized serving, in one call.

    ``repro.compile(model, "mx6")`` is the serving front door: it casts the
    model's weights into the format once (eval mode, per-role format
    instances, payloads memoized so requests never re-quantize them) and
    returns a :class:`repro.serve.CompiledModel` exposing the task-adapter
    protocol and ``.session(...)`` micro-batched serving.  See
    :func:`repro.serve.compile_model` for all keyword arguments
    (``activation=``, ``policy=``, ``freeze=``, ``config=``).
    """
    from .serve import compile_model

    return compile_model(model, fmt, **kwargs)


# NOTE: this deliberately shadows the `repro.spec` *module attribute* with
# the facade function.  `from repro.spec import ...` still resolves to the
# package via sys.modules, and the package's public names are mirrored onto
# the function below so `repro.spec.parse_spec` keeps working too.
def spec(fmt=None, /, **params) -> FormatSpec:
    """Build the canonical :class:`~repro.spec.FormatSpec` for any spelling.

    Three call shapes::

        repro.spec("mx9?rounding=stochastic")       # parse a string/dict
        repro.spec(get_format("mx6"))               # reverse-map an instance
        repro.spec("bdr", m=4, k1=16, d1=8)         # family + parameters

    In the family shape, the keywords ``rounding``, ``scaling``, ``window``
    and ``seed`` route to the spec's options; everything else is a family
    parameter.
    """
    if fmt is None:
        raise TypeError("repro.spec() needs a format spelling or family name")
    if not params:
        return parse_spec(fmt)
    if not isinstance(fmt, str):
        raise TypeError("parameters are only valid with a family-name string")
    from .spec.grammar import FAMILIES

    base = fmt.strip().lower()
    # route kwargs by the family's own declaration: declared parameters go
    # in parens, everything else (rounding, scaling, window, seed, ...) is
    # an option and validated downstream
    family = FAMILIES.get(base)
    param_names = set(family.order) if family is not None else set()
    family_params = {k: v for k, v in params.items() if k in param_names}
    options = {k: v for k, v in params.items() if k not in param_names}
    return parse_spec(
        FormatSpec(
            base=base,
            params=tuple(family_params.items()),
            options=tuple(options.items()),
        ).canonical()
    )


def _mirror_spec_package() -> None:
    """Make `repro.spec.<name>` work despite the function shadowing the
    subpackage attribute: mirror the package's public names and its
    submodules (grammar, policy) onto the facade function."""
    import sys

    package = sys.modules[__name__ + ".spec"]
    for name in package.__all__:
        setattr(spec, name, getattr(package, name))
    for submodule in ("grammar", "policy"):
        setattr(spec, submodule, sys.modules[f"{__name__}.spec.{submodule}"])
    spec.__all__ = list(package.__all__)


_mirror_spec_package()


__all__ = [
    "BDRConfig",
    "MX4",
    "MX6",
    "MX9",
    "bdr_quantize",
    "mx_quantize",
    "qsnr_lower_bound",
    "Format",
    "get_format",
    "list_formats",
    "FormatSpec",
    "parse_spec",
    "render_spec",
    "as_format",
    "format_to_spec",
    "PolicySpec",
    "UniformPolicy",
    "FirstLastHighPolicy",
    "RulePolicy",
    "PolicyRule",
    "quantize",
    "spec",
    "compile",
    "SessionConfig",
    "__version__",
]
