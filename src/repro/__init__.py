"""repro: a from-scratch reproduction of "With Shared Microexponents,
A Little Shifting Goes a Long Way" (ISCA 2023).

Public API highlights:

* :class:`repro.core.BDRConfig` — the Block Data Representations design space.
* :func:`repro.core.mx_quantize` / :data:`repro.core.MX9` — the MX formats.
* :func:`repro.formats.get_format` — every format family from Figure 7.
* :func:`repro.fidelity.measure_qsnr` — the paper's statistical methodology.
* :mod:`repro.hardware` — the dot-product area and memory cost models.
* :mod:`repro.nn` / :mod:`repro.flow` — quantized training and inference.
* :mod:`repro.experiments` — one runner per table and figure.
"""

from .core import (
    MX4,
    MX6,
    MX9,
    BDRConfig,
    bdr_quantize,
    mx_quantize,
    qsnr_lower_bound,
)
from .formats import Format, get_format, list_formats

__version__ = "1.0.0"

__all__ = [
    "BDRConfig",
    "MX4",
    "MX6",
    "MX9",
    "bdr_quantize",
    "mx_quantize",
    "qsnr_lower_bound",
    "Format",
    "get_format",
    "list_formats",
    "__version__",
]
