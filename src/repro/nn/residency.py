"""Quantized activation residency: quantize once, consume everywhere.

The BDR compute flow makes dot products cheap because operands live in
shared-exponent payload form — yet the historical forward path re-derived
that payload from FP32 at every consumer: the Q/K/V projections each
quantized the same LayerNorm output, every MoE expert re-quantized the
router input, and each decode step quantized the step activations once per
op.  This module makes the quantized payload *resident*: it is produced at
most once per tensor per step and shared by every consumer that asks for
the same ``(format, axis, rounding)`` role.

Residency rides on the same data-version memoization as the frozen
weights (:func:`repro.nn.quantized.memo_quantize`): the payload is cached
on the activation tensor itself, keyed by its monotonic data version, so
it dies with the tensor and can never serve stale data.  Caching only
engages where it is provably bit-identical — leaf tensors (every
activation under ``no_grad``), stateless formats, deterministic rounding;
all other combinations quantize exactly as before.

The module also owns the **fusion switchboard**.  Three independently
toggleable stages build on residency:

* ``residency`` — share quantized activation payloads across consumers;
* ``epilogue`` — run bias-add / GELU inside the kernel's output loop
  (:meth:`repro.kernels.base.KernelBackend.matmul_epilogue`) instead of
  as separate full-array passes, and run the attention pipeline
  (scale → mask → softmax → context) on raw arrays under ``no_grad``;
* ``projections`` — fuse sibling projections that consume the same
  activation (attention Q/K/V, MoE expert ``fc1``\\ s) into one
  concatenated-weight matmul.

``REPRO_FUSION=0`` (or ``off``/``false``) disables all three at process
start, restoring the exact pre-residency execution; tests and benchmarks
toggle stages programmatically via :func:`configure_fusion` /
:func:`fusion_disabled`.  Every stage is bit-identical to its unfused
counterpart for the formats it engages on, so the toggle changes
*schedules*, never values.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from ..core.quantize import quantize_call_count, reset_quantize_calls
from ..core.runtime_env import FUSION_ENV_VAR
from .tensor import Tensor, is_grad_enabled

# NOTE: :mod:`repro.nn.quantized` imports this module for the fusion
# switchboard, so ``memo_quantize`` is imported lazily inside the two
# functions that need it (neither is on a per-op hot path: ``acquire``
# runs once per tensor role, ``FusedWeightCache.payload`` once per weight
# version).

__all__ = [
    "QuantizedActivation",
    "acquire",
    "FusedWeightCache",
    "fusion_enabled",
    "configure_fusion",
    "fusion_disabled",
    "fusion_configured",
    "supports_epilogue",
    "supports_fused_projection",
    "quantize_call_count",
    "reset_quantize_calls",
    "FUSION_ENV_VAR",
]

_STAGES = ("residency", "epilogue", "projections")

# process-wide stage flags (serving worker threads share one schedule);
# the dict lives in the tensor module — the lowest layer that consults a
# flag — so no import cycle forms, but this module owns the public API
from .tensor import _FUSION_FLAGS as _FLAGS


def fusion_enabled(stage: str = "epilogue") -> bool:
    """Whether one fusion stage (``residency``/``epilogue``/``projections``)
    is currently enabled."""
    try:
        return _FLAGS[stage]
    except KeyError:
        raise ValueError(f"unknown fusion stage {stage!r}; stages: {_STAGES}") from None


def _sync_kernel_schedule() -> None:
    """Propagate the epilogue stage into the kernel execution strategy.

    The fast backend's single-buffer/tiled pow2 schedule is part of this
    fusion work; with the epilogue stage off it reverts to the historical
    two-buffer body so a ``REPRO_FUSION=0`` baseline reproduces the
    pre-residency execution end to end (values identical either way).
    """
    from ..kernels.numpy_backend import set_legacy_schedule

    set_legacy_schedule(not _FLAGS["epilogue"])


def configure_fusion(
    enabled: bool | None = None,
    *,
    residency: bool | None = None,
    epilogue: bool | None = None,
    projections: bool | None = None,
) -> dict:
    """Set fusion stages; returns the previous flags (for restoring).

    ``enabled`` sets every stage at once; the keyword flags override
    individual stages.  Process-wide — a serving session's workers all
    observe the change.
    """
    previous = dict(_FLAGS)
    if enabled is not None:
        for stage in _STAGES:
            _FLAGS[stage] = bool(enabled)
    for stage, value in (
        ("residency", residency), ("epilogue", epilogue), ("projections", projections)
    ):
        if value is not None:
            _FLAGS[stage] = bool(value)
    _sync_kernel_schedule()
    return previous


@contextlib.contextmanager
def fusion_disabled():
    """Run with every fusion stage off — the pre-residency schedule."""
    previous = configure_fusion(False)
    try:
        yield
    finally:
        _FLAGS.update(previous)
        _sync_kernel_schedule()


@contextlib.contextmanager
def fusion_configured(**stages):
    """Context-managed :func:`configure_fusion` (keyword stages only)."""
    previous = configure_fusion(**stages)
    try:
        yield
    finally:
        _FLAGS.update(previous)
        _sync_kernel_schedule()


# ----------------------------------------------------------------------
# The resident payload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuantizedActivation:
    """One activation's quantized payload for one consumption role.

    Attributes:
        source: the FP32 activation tensor the payload derives from.
        data: the fake-quantized array (shared with the residency cache —
            treat as read-only).
        axis: the reduction axis the payload was quantized along.
        version: ``source.version`` at acquisition; :attr:`fresh` is False
            once the source data was rebound, after which the payload must
            not be used.
    """

    source: Tensor = field(repr=False)
    data: np.ndarray = field(repr=False)
    axis: int
    version: int

    @property
    def fresh(self) -> bool:
        return self.version == self.source.version

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape


def acquire(
    t: Tensor,
    fmt,
    axis: int,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
) -> QuantizedActivation:
    """The resident quantized payload of ``t`` for ``(fmt, axis)``.

    Computed at most once per data version for memoizable roles (see
    :func:`~repro.nn.quantized.memo_quantize`); every later ``acquire``
    with the same role returns the same array.  ``fmt=None`` wraps the
    raw data (an FP32 'payload'), so consumers can treat quantized and
    full-precision operands uniformly.
    """
    from .quantized import memo_quantize

    data = memo_quantize(t, fmt, axis, rounding=rounding, rng=rng)
    return QuantizedActivation(source=t, data=data, axis=axis, version=t.version)


# ----------------------------------------------------------------------
# Fusion eligibility
# ----------------------------------------------------------------------
def supports_epilogue(spec) -> bool:
    """True when a matmul on ``spec`` may run with a fused kernel epilogue.

    Inference-only (the fused kernel returns a raw array with no backward
    closure) and only for quantized specs: the epilogue replays the exact
    unfused elementwise sequence in place, so no format constraints apply
    beyond having a spec at all — full-FP32 layers keep the historical
    Tensor-op path untouched.
    """
    if spec is None or is_grad_enabled():
        return False
    return _FLAGS["epilogue"]


def _pow2_scaled(fmt) -> bool:
    """Hardware power-of-two scaling: operand products are exactly
    representable in float64, which makes dot-product accumulation
    order-independent — the property concatenated matmuls rely on."""
    config = getattr(fmt, "config", None)
    return config is not None and getattr(config, "s_type", None) == "pow2"


def supports_fused_projection(spec) -> bool:
    """True when sibling projections of one activation may fuse into a
    single concatenated-weight matmul.

    Demands more than :func:`supports_epilogue`: splitting columns out of
    a wider product is bit-identical to separate products only when every
    dot product is exact (order-independent), which holds for pow2-scaled
    BDR operands (MX/BFP) with deterministic rounding on both roles.
    Software-scaled formats (INT/VSQ), stochastic rounding, stateful
    scaling, and FP32 layers all keep their per-projection matmuls.
    """
    if spec is None or is_grad_enabled() or not _FLAGS["projections"]:
        return False
    act, weight = spec.activation, spec.weight
    if act is None or weight is None:
        return False
    if spec.rounding == "stochastic":
        return False
    if act.cache_key() is None or weight.cache_key() is None:
        return False
    return _pow2_scaled(act) and _pow2_scaled(weight)


class FusedWeightCache:
    """Concatenated quantized payload of sibling :class:`Linear` layers.

    Attention Q/K/V and MoE expert ``fc1`` weights all multiply the same
    resident activation; this cache concatenates their *individually
    memoized* quantized payloads (so the fused operand is trivially
    bit-identical to the unfused ones) along the output axis, plus the
    matching bias row.  Keyed on every member's weight/bias data version
    and the weight format identity — an optimizer step or re-cast builds
    a fresh payload on the next use.  Rebuilds are idempotent, so a data
    race between serving workers at worst duplicates work.
    """

    __slots__ = ("_entry",)

    def __init__(self):
        self._entry = None

    def invalidate(self) -> None:
        self._entry = None

    def payload(self, layers, spec) -> tuple[np.ndarray, np.ndarray | None]:
        """(concatenated quantized weight, concatenated bias or None)."""
        from .quantized import memo_quantize

        key = (
            tuple(layer.weight.version for layer in layers),
            tuple(-1 if layer.bias is None else layer.bias.version for layer in layers),
            spec.weight.cache_key(),
            spec.rounding,
        )
        entry = self._entry
        if entry is not None and entry[0] == key:
            return entry[1], entry[2]
        weight = np.concatenate(
            [
                memo_quantize(
                    layer.weight, spec.weight, axis=0,
                    rounding=spec.rounding, rng=spec.rng,
                )
                for layer in layers
            ],
            axis=1,
        )
        bias = None
        if all(layer.bias is not None for layer in layers):
            bias = np.concatenate([layer.bias.data for layer in layers])
        self._entry = (key, weight, bias)
        return weight, bias
