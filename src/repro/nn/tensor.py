"""A reverse-mode autograd engine over NumPy arrays.

This is the substrate standing in for the paper's PyTorch + custom-CUDA
emulation stack: tensors record their producing operation, and
:meth:`Tensor.backward` walks the graph in reverse topological order.
Gradients accumulate in full precision; quantization of the compute flow is
layered on top in :mod:`repro.nn.quantized`.
"""

from __future__ import annotations

import contextlib
import threading
from collections.abc import Callable, Iterable

import numpy as np

from ..core.runtime_env import fusion_env_enabled

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

#: Process-wide fusion-stage flags (see :mod:`repro.nn.residency`, which
#: owns the public API and mutates this dict).  Stored here — the lowest
#: layer that consults them — so the autograd engine can read a flag
#: without importing the residency module.  ``REPRO_FUSION=0`` starts the
#: process on the pre-residency schedule.
_FUSION_DEFAULT = fusion_env_enabled()
_FUSION_FLAGS = {
    "residency": _FUSION_DEFAULT,
    "epilogue": _FUSION_DEFAULT,
    "projections": _FUSION_DEFAULT,
}


class _GradMode(threading.local):
    """Per-thread grad flag: serving worker threads run under ``no_grad``
    without affecting a training loop on another thread (and two threads'
    nested contexts can never corrupt each other's restore)."""

    enabled = True


_GRAD_MODE = _GradMode()


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the context (inference mode).

    The flag is thread-local; each new thread starts with grad enabled.
    """
    previous = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def is_grad_enabled() -> bool:
    return _GRAD_MODE.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce a gradient back to the shape of a broadcast operand."""
    if grad.shape == shape:
        return grad
    # sum away leading broadcast dimensions
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum over axes that were 1 in the original shape
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An array with an optional gradient and a backward closure."""

    __slots__ = (
        "_data", "grad", "requires_grad", "_backward", "_parents", "name",
        "_qstate",
    )

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ):
        # Shared (not per-Tensor) so aliases created via detach() observe
        # mutations made through the original handle; see `version`.
        self._qstate = {"version": 0, "cache": None}
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_MODE.enabled
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Data versioning
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value) -> None:
        # Every rebinding (including augmented in-place updates, which
        # re-assign the attribute) bumps the version and drops memoized
        # quantizations of the old contents.
        self._data = np.asarray(value, dtype=np.float64)
        self._qstate["version"] += 1
        self._qstate["cache"] = None

    @property
    def version(self) -> int:
        """Monotonic data version; consumers key caches on it.

        The version state is *shared* between a tensor and the aliases
        produced by :meth:`detach`, so an in-place update such as
        ``w.data -= g`` also invalidates caches held on ``w.detach()``
        handles of the same buffer.  Constructing a second Tensor directly
        from a live array (``Tensor(w.data)``) creates an independent
        version — mutate through one handle and call
        :meth:`bump_version` on the other, or prefer :meth:`detach`.
        """
        return self._qstate["version"]

    def bump_version(self) -> None:
        """Mark the data as mutated after direct in-place writes.

        ``t.data -= g`` and ``t.data = arr`` are tracked automatically via
        the attribute setter; only raw element writes such as
        ``t.data[i] = v`` bypass it and need an explicit bump.
        """
        self._qstate["version"] += 1
        self._qstate["cache"] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A view of the data cut off from the graph.

        Shares the version/quantization-cache state with this tensor, so
        in-place updates through either handle invalidate both.
        """
        detached = Tensor(self.data, requires_grad=False)
        detached._qstate = self._qstate
        return detached

    def __repr__(self) -> str:
        head = np.array2string(self.data, precision=4, threshold=8)
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({head}{grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = _GRAD_MODE.enabled and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self):
        def backward(grad):
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) + (-self)

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, exponent: float):
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                ga = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        def backward(grad):
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-300))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad):
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self):
        mask = self.data > 0

        def backward(grad):
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def abs(self):
        sign = np.sign(self.data)

        def backward(grad):
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, lo: float, hi: float):
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(grad):
            self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, lo, hi), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        count = self.data.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis: int, keepdims: bool = False):
        data = self.data
        out_data = data.max(axis=axis, keepdims=True)

        if _FUSION_FLAGS["epilogue"]:
            # pipeline fusion defers gradient-only work out of the forward
            # pass: the argmax mask and tie counts are derived in backward
            # (from the forward-time array reference), sparing every
            # inference softmax two full passes over its scores
            def backward(grad):
                mask = data == out_data
                counts = mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis)
                self._accumulate(mask * g / counts)
        else:
            # pre-fusion schedule: mask and counts computed eagerly, so the
            # fusion-off benchmark baseline reproduces the historical
            # execution exactly
            mask = data == out_data
            counts = mask.sum(axis=axis, keepdims=True)

            def backward(grad):
                g = grad if keepdims else np.expand_dims(grad, axis)
                self._accumulate(mask * g / counts)

        result = out_data if keepdims else out_data.squeeze(axis)
        return Tensor._make(result, (self,), backward)

    def var(self, axis=None, keepdims: bool = False):
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad):
            self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad):
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self):
        return self.transpose()

    def swapaxes(self, a: int, b: int):
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad(self, pad_width):
        """Zero padding; ``pad_width`` follows :func:`numpy.pad`."""
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(before, before + n) for (before, _), n in zip(pad_width, self.shape)
        )

        def backward(grad):
            self._accumulate(grad[slices])

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(
        *shape,
        rng: np.random.Generator | None = None,
        scale: float = 1.0,
        requires_grad: bool = False,
    ) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.normal(scale=scale, size=shape), requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an axis, with gradient routing."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, with gradient routing."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        moved = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, moved):
            t._accumulate(g)

    return Tensor._make(out_data, tuple(tensors), backward)
