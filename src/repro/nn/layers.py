"""Module system and the basic layers of the model zoo."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..kernels.plan import checkout_scratch, release_scratch
from . import functional as F
from .precision import VectorPrecision, apply_vector_precision
from .quantized import QuantSpec, memo_quantize, quantized_matmul
from .residency import fusion_enabled, supports_epilogue
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "GELU",
    "Tanh",
]


class Module:
    """Minimal module base: parameter discovery, mode flags, state dicts."""

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{name}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{name}.{i}", item

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Module):
                yield from value.named_modules(f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(f"{name}.{i}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # Serialization (used by direct-cast / fine-tune flows)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in params.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].copy()

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``x @ W + b`` with optional BDR quantization.

    ``quant`` holds a :class:`~repro.nn.quantized.QuantSpec`; ``None`` means
    full precision.  The bias add runs in the layer's vector precision.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.uniform(-scale, scale, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        self.quant = quant
        self.vector_precision = VectorPrecision.FP32

    def forward(self, x: Tensor) -> Tensor:
        if (
            self.bias is not None
            and self.vector_precision == VectorPrecision.FP32
            and supports_epilogue(self.quant)
        ):
            # inference fast path: the bias add runs inside the kernel's
            # output loop (bit-identical to the separate pass below)
            return quantized_matmul(
                x, self.weight, self.quant, epilogue=("bias", self.bias.data)
            )
        out = quantized_matmul(x, self.weight, self.quant)
        if self.bias is not None:
            out = out + self.bias
        return apply_vector_precision(out, self.vector_precision)


class Embedding(Module):
    """Token embedding table, optionally quantized for storage.

    ``storage_quant`` emulates keeping the table itself in a narrow format
    (the DLRM memory optimization of Section V): lookups read the quantized
    values while the master table stays FP32 for the optimizer.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator | None = None,
        storage_quant=None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.weight = Tensor(
            rng.normal(scale=0.02, size=(num_embeddings, dim)), requires_grad=True
        )
        self.storage_quant = storage_quant

    def forward(self, indices: np.ndarray) -> Tensor:
        if self.storage_quant is None:
            return F.embedding(self.weight, indices)
        # Memoized on the table's data version: the quantized table is
        # computed once and reused until the master weights change.
        quantized = memo_quantize(
            self.weight, self.storage_quant, axis=-1, tag="storage"
        )
        gathered = quantized[np.asarray(indices)]

        def backward(grad):
            full = np.zeros_like(self.weight.data)
            np.add.at(
                full,
                np.asarray(indices).reshape(-1),
                grad.reshape(-1, self.weight.shape[-1]),
            )
            self.weight._accumulate(full)

        return Tensor._make(gathered, (self.weight,), backward)


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.weight = Tensor(np.ones(dim), requires_grad=True)
        self.bias = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps
        self.vector_precision = VectorPrecision.FP32

    def forward(self, x: Tensor) -> Tensor:
        if (
            self.vector_precision == VectorPrecision.FP32
            and fusion_enabled("epilogue")
            and not is_grad_enabled()
        ):
            # inference: replay F.layer_norm's exact ufunc sequence on the
            # raw array (same operations, same association order — mean as
            # sum times reciprocal, centering as adding the negation), so
            # the output is bit-identical without ~10 autograd Tensor ops;
            # one full-size allocation (the output) plus pooled scratch
            data = x.data
            inv_n = 1.0 / float(data.shape[-1])
            mu = data.sum(axis=-1, keepdims=True)
            mu *= inv_n
            out = np.add(data, -mu)
            scratch = checkout_scratch(out.shape)
            try:
                np.multiply(out, out, out=scratch)
                var = scratch.sum(axis=-1, keepdims=True)
            finally:
                release_scratch(scratch)
            var *= inv_n
            var += self.eps
            np.sqrt(var, out=var)
            out /= var
            out *= self.weight.data
            out += self.bias.data
            return Tensor(out)
        out = F.layer_norm(x, self.weight, self.bias, self.eps)
        return apply_vector_precision(out, self.vector_precision)


class Dropout(Module):
    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()
