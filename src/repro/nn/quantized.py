"""Quantized tensor ops implementing the Figure 8 compute flow.

Rules of the flow (Section V):

* both operands of every tensor-reduction op are quantized *along the
  reduction dimension* (MX is directional);
* the backward pass quantizes the incoming error tensors and a *second*
  copy of the weights, quantized after transposition (quantization and
  transpose do not commute);
* gradients with respect to master weights are accumulated in full
  precision and consumed by an FP32 optimizer;
* element-wise ops run in a scalar format (see
  :mod:`repro.nn.precision`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..formats.base import Format
from .tensor import Tensor, is_grad_enabled

# late binding would cost a sys.modules lookup per matmul; residency has no
# module-level dependency back on this module, so the import is cycle-free
from .residency import fusion_enabled

__all__ = [
    "QuantSpec",
    "quantized_matmul",
    "quantized_matmul_prequant",
    "quantized_bmm",
    "quantized_bmm_prequant",
    "quantize_partial_block",
    "memo_quantize",
]


def _coerce(fmt) -> Format | None:
    """Accept ``Format | str | dict | FormatSpec | None`` for a role."""
    if fmt is None or isinstance(fmt, Format):
        return fmt
    from ..spec.grammar import as_format

    return as_format(fmt)


@dataclass
class QuantSpec:
    """Which format each tensor role is quantized with (None = keep FP32).

    Each role accepts a :class:`Format` instance or any spec spelling the
    :mod:`repro.spec` layer understands (``"mx6"``, ``"bdr(m=4,...)"``, a
    spec dict) — strings are coerced to fresh format instances on
    construction.

    Attributes:
        activation: forward activations (quantized along the reduction dim).
        weight: forward weights (quantized along the reduction dim).
        backward: backward-pass operands — the error tensors, the
            transposed-then-quantized weight copy, and the transposed
            activations entering the weight-gradient product.
        rounding: mantissa rounding mode for all roles.
    """

    activation: Format | str | dict | None = None
    weight: Format | str | dict | None = None
    backward: Format | str | dict | None = None
    rounding: str = "nearest"
    rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self):
        self.activation = _coerce(self.activation)
        self.weight = _coerce(self.weight)
        self.backward = _coerce(self.backward)

    # ------------------------------------------------------------------
    # Constructors for the paper's standard configurations
    # ------------------------------------------------------------------
    @classmethod
    def fp32(cls) -> "QuantSpec":
        """The full-precision baseline (no quantization anywhere)."""
        return cls()

    @classmethod
    def uniform(cls, spec) -> "QuantSpec":
        """Uniform training: the same format for every tensor role.

        This is the paper's MX9 training mode — forward and backward
        matmuls all in MX, no heuristics.  Separate format instances per
        role so stateful formats never share scaling history (a
        :class:`Format` instance is re-derived via its spec spelling to
        keep that guarantee).
        """
        if isinstance(spec, Format):
            from ..spec.grammar import format_to_spec

            spec = format_to_spec(spec)
        return cls(activation=_coerce(spec), weight=_coerce(spec), backward=_coerce(spec))

    @classmethod
    def inference(cls, weight, activation=None) -> "QuantSpec":
        """Direct-cast inference: quantize weights (and optionally
        activations); no backward pass formats."""
        return cls(activation=activation, weight=weight)

    @classmethod
    def finetune(cls, forward, backward=None) -> "QuantSpec":
        """Quantization-aware fine-tuning: narrow forward, wide backward.

        The paper's QAT recipe keeps the backward pass in FP32
        (``backward=None``) while the forward pass runs MX6/MX4.
        """
        if isinstance(forward, Format):
            from ..spec.grammar import format_to_spec

            forward = format_to_spec(forward)
        return cls(activation=_coerce(forward), weight=_coerce(forward), backward=backward)

    # ------------------------------------------------------------------
    # Serialization (the repro.spec declarative layer)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form: role spec strings + rounding (JSON/pickle safe).

        ``rng`` is runtime state and is not serialized.  Raises
        :class:`~repro.spec.grammar.SpecError` when a role holds a format
        with no spec spelling.
        """
        from ..spec.grammar import format_to_spec

        def role(fmt):
            return None if fmt is None else format_to_spec(fmt)

        return {
            "activation": role(self.activation),
            "weight": role(self.weight),
            "backward": role(self.backward),
            "rounding": self.rounding,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QuantSpec":
        """Rebuild from :meth:`to_dict` output (fresh format instances)."""
        unknown = set(d) - {"activation", "weight", "backward", "rounding"}
        if unknown:
            raise ValueError(f"unknown QuantSpec keys {sorted(unknown)}")
        return cls(
            activation=d.get("activation"),
            weight=d.get("weight"),
            backward=d.get("backward"),
            rounding=d.get("rounding", "nearest"),
        )

    def quantize(self, role: str, data: np.ndarray, axis: int) -> np.ndarray:
        """Quantize one tensor role, or pass through when unconfigured."""
        fmt = getattr(self, role)
        if fmt is None:
            return data
        return fmt.quantize(data, axis=axis, rounding=self.rounding, rng=self.rng)


def memo_quantize(
    t: Tensor,
    fmt: Format | None,
    axis: int,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
    prep=None,
    tag: str | None = None,
) -> np.ndarray:
    """Quantize (a derived view of) a tensor, memoized on its data version.

    Within one forward/backward a weight is quantized up to three times
    even though its data never changes (``Q(w)`` forward, ``Q(w^T)`` in the
    error backprop), and across inference steps or gradient-accumulation
    microbatches the same quantizations repeat verbatim.  Results are
    cached on the tensor itself, keyed by ``(data version, format identity,
    axis, tag, rounding)``; :class:`~repro.nn.tensor.Tensor`'s data version
    counter drops the cache whenever the data is rebound (e.g. an optimizer
    step), so stale reuse is impossible.

    ``prep`` derives the array actually quantized from ``t.data`` (a
    transpose, a conv im2col reshape, ...); callers supplying a ``prep``
    must pick a ``tag`` that uniquely names the derivation, since the
    cache key cannot see the callable itself.

    Only deterministic rounding with a memoizable format (stateless — see
    :meth:`~repro.formats.base.Format.cache_key`) on a *leaf* tensor is
    cached; every other combination quantizes directly, so results are
    always bit-identical to the uncached path.
    """
    data = t.data if prep is None else prep(t.data)
    if fmt is None:
        return data
    key_fmt = fmt.cache_key() if rounding != "stochastic" else None
    if key_fmt is None or t._parents:
        return fmt.quantize(data, axis=axis, rounding=rounding, rng=rng)
    state = t._qstate
    cache = state["cache"]
    if cache is None:
        cache = state["cache"] = {}
    # The version in the key is the correctness anchor; the setter clearing
    # the cache on rebinding merely keeps dead entries from accumulating.
    key = (state["version"], key_fmt, axis, tag, rounding)
    out = cache.get(key)
    if out is None:
        out = fmt.quantize(data, axis=axis, rounding=rounding, rng=rng)
        cache[key] = out
    return out


def _memo_quantize(
    spec: QuantSpec, role: str, t: Tensor, axis: int, transpose: bool = False
) -> np.ndarray:
    """Quantize one tensor role of ``spec`` through :func:`memo_quantize`."""
    return memo_quantize(
        t,
        getattr(spec, role),
        axis,
        rounding=spec.rounding,
        rng=spec.rng,
        prep=(lambda d: np.swapaxes(d, -1, -2)) if transpose else None,
        tag="T" if transpose else None,
    )


def quantized_matmul(
    a: Tensor,
    w: Tensor,
    spec: QuantSpec | None,
    epilogue: tuple[str, np.ndarray | None] | None = None,
) -> Tensor:
    """``a @ w`` with Figure 8 quantization; ``a: (..., K)``, ``w: (K, N)``.

    Forward: ``Q(a) @ Q(w)`` with both operands quantized along ``K``.
    ``Q(a)`` is *resident*: under the residency fusion stage the payload
    is memoized on ``a``'s data version (leaf tensors, stateless formats,
    deterministic rounding — every activation under ``no_grad``), so
    sibling consumers of the same activation share one quantization.
    Backward:

    * ``dA = Q(g) @ Q(w^T)`` — error quantized along ``N``; the weight is
      transposed *first*, then quantized along its new leading axis.
    * ``dW = Q(a^T) @ Q(g)`` — both quantized along the flattened
      batch-by-row dimension, the reduction dim of the weight gradient.

    Accumulation inside each product is full precision, matching the
    wide fixed-point accumulators of the Figure 6 pipeline.

    ``epilogue`` is an inference-only ``(name, operand)`` pair (e.g.
    ``("bias_gelu", b)``) executed inside the kernel's output loop via
    :meth:`~repro.kernels.base.KernelBackend.matmul_epilogue` —
    bit-identical to running the same ops as separate passes.
    """
    if spec is None:
        if epilogue is not None:
            raise ValueError("epilogue fusion requires a QuantSpec (quantized layers)")
        return a @ w
    if w.ndim != 2:
        raise ValueError(f"weights must be 2-D (K, N); got shape {w.shape}")
    if a.shape[-1] != w.shape[0]:
        raise ValueError(f"reduction mismatch: {a.shape} @ {w.shape}")
    if epilogue is not None and is_grad_enabled():
        raise RuntimeError(
            "epilogue fusion serves the inference path; run under no_grad()"
        )

    if fusion_enabled("residency"):
        a_q = _memo_quantize(spec, "activation", a, axis=-1)
    else:
        a_q = spec.quantize("activation", a.data, axis=-1)
    w_q = _memo_quantize(spec, "weight", w, axis=0)
    if not is_grad_enabled():
        # Inference fast path: no backward closure, and in particular no
        # allocation/quantization of the transposed backward weight copy.
        # The forward product is computed from the exact same quantized
        # operands, so outputs are bit-identical to the training path.
        if epilogue is not None:
            from ..kernels.registry import get_backend

            name, operand = epilogue
            return Tensor(get_backend().matmul_epilogue(a_q, w_q, name, operand))
        return Tensor(a_q @ w_q)
    out_data = a_q @ w_q

    def backward(grad):
        if a.requires_grad:
            g_q = spec.quantize("backward", grad, axis=-1)
            wt_q = _memo_quantize(spec, "backward", w, axis=0, transpose=True)
            a._accumulate(g_q @ wt_q)
        if w.requires_grad:
            g2 = grad.reshape(-1, w.shape[1])
            a2 = a.data.reshape(-1, w.shape[0])
            g2_q = spec.quantize("backward", g2, axis=0)
            at_q = spec.quantize("backward", a2.T, axis=-1)
            w._accumulate(at_q @ g2_q)

    return Tensor._make(out_data, (a, w), backward)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def quantized_bmm(a: Tensor, b: Tensor, spec: QuantSpec | None) -> Tensor:
    """Batched ``a @ b`` with both operands quantized along the reduction dim.

    Used for the attention score and context products, which are tensor
    reductions and therefore run in MX during training (Section V).
    ``a: (..., M, K)``, ``b: (..., K, N)``; batch dims broadcast.
    """
    if spec is None:
        return a @ b

    a_q = _memo_quantize(spec, "activation", a, axis=-1)
    b_q = _memo_quantize(spec, "activation", b, axis=-2)
    if not is_grad_enabled():
        # Inference fast path (see quantized_matmul): skip the backward
        # closure and its transposed-operand quantizations entirely.
        return Tensor(a_q @ b_q)
    out_data = a_q @ b_q

    def backward(grad):
        if a.requires_grad:
            g_q = spec.quantize("backward", grad, axis=-1)
            bt_q = _memo_quantize(spec, "backward", b, axis=-2, transpose=True)
            a._accumulate(_unbroadcast(g_q @ bt_q, a.shape))
        if b.requires_grad:
            at_q = _memo_quantize(spec, "backward", a, axis=-1, transpose=True)
            g_q = spec.quantize("backward", grad, axis=-2)
            b._accumulate(_unbroadcast(at_q @ g_q, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def quantized_matmul_prequant(
    a_q: np.ndarray,
    w: Tensor,
    spec: QuantSpec,
    epilogue: tuple[str, np.ndarray | None] | None = None,
) -> Tensor:
    """``a_q @ Q(w)`` against an already-quantized activation payload.

    The residency form of :func:`quantized_matmul`: ``a_q`` is a raw array
    that already holds the spec's activation quantization of the logical
    input (e.g. one slice of a fused sibling-projection output quantized
    in a single block-aligned call), so only the memoized weight payload
    is fetched here.  Bit-identical to ``quantized_matmul(Tensor(a_raw),
    w, spec)`` whenever ``a_q == spec.quantize("activation", a_raw)`` —
    the caller's invariant.  Inference only.
    """
    if is_grad_enabled():
        raise RuntimeError(
            "quantized_matmul_prequant serves the inference path; "
            "run it under no_grad()"
        )
    w_q = _memo_quantize(spec, "weight", w, axis=0)
    if epilogue is not None:
        from ..kernels.registry import get_backend

        name, operand = epilogue
        return Tensor(get_backend().matmul_epilogue(a_q, w_q, name, operand))
    return Tensor(a_q @ w_q)


# ----------------------------------------------------------------------
# Incremental-decoding entry points (the KV-cache fast paths)
# ----------------------------------------------------------------------
def quantized_bmm_prequant(a: Tensor, b_q: np.ndarray, spec: QuantSpec | None) -> Tensor:
    """Single-new-operand ``a @ b_q`` against a cached quantized payload.

    The decode-step form of :func:`quantized_bmm`: ``b_q`` is a raw array
    already holding quantized values (a KV-cache payload frozen at append
    time), so only ``a`` — the one new query row or softmax row — is
    quantized here, along its trailing reduction dim.  Bit-identical to
    ``quantized_bmm(a, Tensor(b_raw), spec)`` whenever ``b_q`` equals the
    spec's activation quantization of ``b_raw`` (the KV-cache invariant).

    Inference only: caches hold no autograd history, so this path refuses
    to run with gradients enabled rather than silently detach the graph.
    """
    if is_grad_enabled():
        raise RuntimeError(
            "quantized_bmm_prequant serves the inference decode path; "
            "run it under no_grad()"
        )
    if spec is None:
        return Tensor(a.data @ b_q)
    a_q = spec.quantize("activation", a.data, axis=-1)
    return Tensor(a_q @ b_q)


def quantize_partial_block(
    data: np.ndarray,
    fmt: Format | None,
    axis: int,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Quantize a single (possibly partial) block of a growing tensor.

    The KV-cache tail path: when a decode step appends a token, only the
    unsealed tail block of the sequence-blocked V cache changes, and this
    entry requantizes exactly that slice (``data`` no longer than one
    block along ``axis``).  Dispatches to
    :meth:`~repro.formats.base.Format.quantize_partial`, which block
    formats route through the kernels' plan-free partial-block path; the
    result is bit-identical to a full-tensor quantize of the same rows.
    """
    if fmt is None:
        return data
    return fmt.quantize_partial(data, axis=axis, rounding=rounding, rng=rng)
