"""Incremental decoding state: block-aligned quantized KV caches.

Autoregressive generation re-run through ``model.forward`` is O(T²·L): every
emitted token pays a full-prefix forward, and every step requantizes the
entire K/V history.  The classes here let the attention stack re-run only a
``k1``-bounded suffix per step (O(T·k1·L) total work instead of O(T²·L))
while caching K/V **as quantized payloads**, bit-identical to full-prefix
recompute.  The argument has three parts:

* **K is position-local.**  The scores product quantizes ``K^T`` along
  ``head_dim`` (the reduction axis), so each position's column is blocked
  independently of its neighbours along the sequence.
* **V is block-local along the sequence.**  The context product quantizes
  ``V`` along the *growing* sequence axis in level-1 blocks of ``k1``
  positions.  BDR quantization is block-local (a block's shared scales and
  codes depend only on that block's contents; zero padding of a partial
  block is inert), so a **sealed** (complete) block's payload is frozen
  forever, and appending a token only dirties the unsealed tail block —
  requantized alone through the kernels' partial-block entry point.
* **Stability stops at the sealed boundary.**  Full recompute is *not*
  prefix-stable position by position: while a V block is open, each append
  shifts its shared exponents, which perturbs the attention context of the
  positions inside that block, which perturbs the *inputs* (and hence the
  cached K/V) of every later layer at those positions.  Positions in
  sealed blocks, however, are exactly stable — by induction over layers,
  a sealed row's score row, softmax weights (masked columns underflow to
  exact zeros), context product, and MLP depend only on sealed rows.  A
  decode step therefore rewinds every cache to the sealed boundary and
  re-feeds the open block's rows (at most ``k1`` of them) through the
  stack; everything older is served from frozen quantized payloads.

Bit-identity additionally requires every quantization to be idempotent
under recomputation — stateless formats (``cache_key() is not None``),
deterministic rounding — which :func:`supports_cached_decode` gates; the
serving adapters fall back to full recompute otherwise.  For BDR-quantized
models the dot products themselves are exact in float64 (products of
low-mantissa operands), making them accumulation-order independent; purely
FP32 models instead agree only to BLAS kernel-selection noise (~1 ulp),
since an (1, k) @ (k, n) product may accumulate in a different order than
one row of an (m, k) @ (k, n) product.
"""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadAttention, causal_mask
from .quantized import QuantSpec, memo_quantize, quantize_partial_block
from .tensor import Tensor

__all__ = [
    "KVCache",
    "PagedKVCache",
    "CrossKV",
    "DecoderLayerKV",
    "DecodeState",
    "RecurrentDecodeState",
    "supports_cached_decode",
    "supports_batched_decode",
    "init_causal_decode_state",
    "init_paged_decode_state",
    "causal_forward_step",
    "causal_decode_step",
    "batched_causal_decode_step",
    "requantize_tails",
]


def _activation_format(spec: QuantSpec | None):
    """(format, rounding, rng) of the activation role, or passthrough."""
    if spec is None or spec.activation is None:
        return None, "nearest", None
    return spec.activation, spec.rounding, spec.rng


class KVCache:
    """Quantized K/V history of one self-attention layer.

    Buffers are preallocated to ``capacity`` positions and written in
    place; the quantized K payload is stored pre-transposed (``(B, H,
    head_dim, T)``) so the scores product consumes it without a per-step
    transpose.  ``sealed`` tracks the block-aligned frozen prefix: entries
    beyond it are recomputed each step (see the module docstring), so
    :meth:`rewind` simply drops them and lets the next append overwrite.

    The cache is keyed to the owning attention module's
    :class:`~repro.nn.quantized.QuantSpec` *instance*: re-casting the
    model mid-decode would silently desynchronize payloads, so
    :meth:`append` rejects a changed spec.
    """

    def __init__(
        self,
        batch: int,
        num_heads: int,
        head_dim: int,
        capacity: int,
        spec: QuantSpec | None,
    ):
        self.spec = spec
        fmt, rounding, rng = _activation_format(spec)
        if fmt is not None and (rounding == "stochastic" or fmt.cache_key() is None):
            raise ValueError(
                "KV caching requires a stateless activation format with "
                f"deterministic rounding; got {fmt!r} with rounding "
                f"{rounding!r} (fall back to full-prefix recompute)"
            )
        self.fmt = fmt
        self.rounding = rounding
        self.rng = rng
        #: level-1 block length along the sequence axis (None = unknown,
        #: nothing can seal and every step recomputes the whole prefix)
        self.block = fmt.block_size() if fmt is not None else 1
        self.head_dim = head_dim
        self.capacity = capacity
        self.kT = np.zeros((batch, num_heads, head_dim, capacity))
        self.v = np.zeros((batch, num_heads, capacity, head_dim))
        if fmt is None or self.block == 1:
            self.v_raw = None  # rows are position-local, no tail to requantize
        else:
            tail = capacity if self.block is None else self.block
            self.v_raw = np.zeros((batch, num_heads, tail, head_dim))
        self.length = 0
        self.sealed = 0

    # ------------------------------------------------------------------
    @property
    def keys_t(self) -> np.ndarray:
        """Quantized ``K^T`` payload, shape (B, H, head_dim, length)."""
        return self.kT[:, :, :, : self.length]

    @property
    def values(self) -> np.ndarray:
        """Quantized ``V`` payload, shape (B, H, length, head_dim)."""
        return self.v[:, :, : self.length]

    def reset(self) -> None:
        """Forget the history (sliding-window eviction keeps the buffers)."""
        self.length = 0
        self.sealed = 0

    def rewind(self) -> None:
        """Drop the unsealed suffix; the next append recomputes it."""
        self.length = self.sealed

    # ------------------------------------------------------------------
    def _quantize_k(self, k_new: np.ndarray) -> np.ndarray:
        """Per-position quantization along ``head_dim``."""
        if self.fmt is None:
            return k_new
        if self.block is not None and self.head_dim <= self.block:
            return quantize_partial_block(
                k_new, self.fmt, axis=-1, rounding=self.rounding, rng=self.rng
            )
        return self.fmt.quantize(k_new, axis=-1, rounding=self.rounding, rng=self.rng)

    def append(
        self,
        k_new: np.ndarray,
        v_new: np.ndarray,
        spec=...,
        *,
        k_quantized: bool = False,
        defer_tail: bool = False,
    ) -> None:
        """Extend the cache with raw projections of new positions.

        ``k_new``/``v_new`` are (B, H, T_new, head_dim) arrays.  K columns
        quantize per position; V seals every completed ``block``-row span
        (frozen until :meth:`reset`) and requantizes only the partial tail.

        ``k_quantized`` marks ``k_new`` as already carrying this cache's
        K payload quantization (the fused step quantizes every stream's
        columns in one call — bit-identical because K blocks are
        position-local).  ``defer_tail`` skips the final partial-tail
        requantization; the caller owns making :func:`requantize_tails`
        run before the V payload is next read.
        """
        if spec is not ... and spec is not self.spec:
            raise ValueError(
                "attention quant spec changed since this KVCache was built; "
                "create a fresh decode state after re-casting a model"
            )
        t_new = k_new.shape[2]
        t0 = self.length
        if t0 + t_new > self.capacity:
            raise ValueError(
                f"KV cache overflow: {t0} cached + {t_new} new > "
                f"capacity {self.capacity}"
            )
        kq = k_new if k_quantized else self._quantize_k(k_new)
        self.kT[:, :, :, t0 : t0 + t_new] = np.swapaxes(kq, -1, -2)

        if self.fmt is None:
            self.v[:, :, t0 : t0 + t_new] = v_new
            self.length = self.sealed = t0 + t_new
            return
        if self.block == 1:
            self.v[:, :, t0 : t0 + t_new] = self.fmt.quantize(
                v_new, axis=-2, rounding=self.rounding, rng=self.rng
            )
            self.length = self.sealed = t0 + t_new
            return
        if self.block is None:
            # no block structure to exploit: requantize the whole history
            self.v_raw[:, :, t0 : t0 + t_new] = v_new
            self.length = t0 + t_new
            self.v[:, :, : self.length] = self.fmt.quantize(
                self.v_raw[:, :, : self.length],
                axis=-2, rounding=self.rounding, rng=self.rng,
            )
            return

        block = self.block
        consumed = 0
        while consumed < t_new:
            tail_len = self.length - self.sealed
            remaining = t_new - consumed
            if tail_len == 0 and remaining >= block:
                # whole blocks seal in one aligned quantization
                whole = (remaining // block) * block
                chunk = v_new[:, :, consumed : consumed + whole]
                self.v[:, :, self.sealed : self.sealed + whole] = self.fmt.quantize(
                    chunk, axis=-2, rounding=self.rounding, rng=self.rng
                )
                self.sealed += whole
                self.length += whole
                consumed += whole
                continue
            take = min(block - tail_len, remaining)
            self.v_raw[:, :, tail_len : tail_len + take] = v_new[
                :, :, consumed : consumed + take
            ]
            self.length += take
            consumed += take
            tail_len += take
            if tail_len == block:
                self.v[:, :, self.sealed : self.sealed + block] = (
                    quantize_partial_block(
                        self.v_raw, self.fmt, axis=-2,
                        rounding=self.rounding, rng=self.rng,
                    )
                )
                self.sealed += block
        tail_len = self.length - self.sealed
        if tail_len and not defer_tail:
            self.v[:, :, self.sealed : self.length] = quantize_partial_block(
                self.v_raw[:, :, :tail_len], self.fmt, axis=-2,
                rounding=self.rounding, rng=self.rng,
            )

    def _tail_raw(self, tail_len: int) -> np.ndarray:
        """Raw staged rows of the open tail, ``(B, H, tail_len, head_dim)``."""
        return self.v_raw[:, :, :tail_len]

    def _tail_store(self, tail_len: int, vq: np.ndarray) -> None:
        """Write the requantized open tail back into the V payload."""
        self.v[:, :, self.sealed : self.sealed + tail_len] = vq

    # ------------------------------------------------------------------
    def project(self, attn, source) -> tuple[np.ndarray, np.ndarray]:
        """Append ``source``'s K/V projections; return the full payloads.

        Kept for direct cache users;
        :meth:`~repro.nn.attention.MultiHeadAttention._forward_cached` now
        feeds self-attention caches through the fused Q/K/V projection
        path and calls :meth:`append` itself.
        """
        k = attn._split_heads(attn.k_proj(source))
        v = attn._split_heads(attn.v_proj(source))
        self.append(k.data, v.data, spec=attn.quant)
        return self.keys_t, self.values


class PagedKVCache:
    """One sequence's quantized K/V history striped across pool pages.

    Drop-in for :class:`KVCache` (batch 1) except the backing memory
    belongs to a shared page pool (``repro.serve.sched.PagePool`` shape):
    each page holds exactly one level-1 V block of one layer, so the
    sealed/open-tail invariant maps directly onto page granularity —
    sealed blocks are frozen whole pages, and the single unsealed tail
    block lives in the last page (its raw rows staged in the page's
    ``v_raw`` area, requantized through the partial-block entry point
    exactly as :meth:`KVCache.append` does).  Quantization inputs, call
    shapes, and engine-call order are identical to the contiguous cache,
    so the scattered payload is bit-for-bit the same data.

    Pages are checked out atomically *before* any write (growth either
    succeeds whole or raises ``PoolExhausted`` leaving the cache
    untouched) and returned only by :meth:`free` — rewind and reset keep
    the table so a resumed stream reuses its pages.
    """

    def __init__(self, pool, owner: str, num_heads: int, head_dim: int,
                 capacity: int, spec: QuantSpec | None):
        self.spec = spec
        fmt, rounding, rng = _activation_format(spec)
        if fmt is not None and (rounding == "stochastic" or fmt.cache_key() is None):
            raise ValueError(
                "KV caching requires a stateless activation format with "
                f"deterministic rounding; got {fmt!r} with rounding "
                f"{rounding!r} (fall back to full-prefix recompute)"
            )
        block = fmt.block_size() if fmt is not None else 1
        if block is None:
            raise ValueError(
                f"paged KV caching needs a known level-1 block size; {fmt!r} "
                "has none (nothing seals, so pages could never freeze)"
            )
        if block > 1 and pool.page_size != block:
            raise ValueError(
                f"pool page size {pool.page_size} != format k1 block {block}; "
                "a page must hold exactly one sealed block"
            )
        if (pool.num_heads, pool.head_dim) != (num_heads, head_dim):
            raise ValueError(
                f"pool arena is ({pool.num_heads} heads, {pool.head_dim} dim); "
                f"cache wants ({num_heads}, {head_dim})"
            )
        self.fmt = fmt
        self.rounding = rounding
        self.rng = rng
        self.block = block
        self.head_dim = head_dim
        self.capacity = capacity
        self.pool = pool
        self.owner = owner
        self.page_size = pool.page_size
        self._pages: list[int] = []
        self.length = 0
        self.sealed = 0

    # ------------------------------------------------------------------
    @property
    def pages(self) -> int:
        """Pages currently held by this cache."""
        return len(self._pages)

    def pages_for(self, total: int) -> int:
        """Pages required to hold ``total`` positions."""
        return -(-total // self.page_size)

    def reserve(self, total: int) -> None:
        """Grow the page table to cover ``total`` positions, atomically.

        Either checks out every missing page or raises ``PoolExhausted``
        having taken none; no cache state changes on failure.
        """
        need = self.pages_for(total) - len(self._pages)
        if need > 0:
            self._pages.extend(self.pool.checkout_pages(self.owner, need))

    def _spans(self, start: int, stop: int):
        """Yield (page, offset-in-page, position, count) covering [start, stop)."""
        pos = start
        while pos < stop:
            page = self._pages[pos // self.page_size]
            off = pos % self.page_size
            take = min(self.page_size - off, stop - pos)
            yield page, off, pos, take
            pos += take

    # ------------------------------------------------------------------
    @property
    def keys_t(self) -> np.ndarray:
        """Quantized ``K^T`` payload, shape (1, H, head_dim, length)."""
        out = np.empty((1, self.pool.num_heads, self.head_dim, self.length))
        for page, off, pos, take in self._spans(0, self.length):
            out[0, :, :, pos : pos + take] = self.pool.kT[page][:, :, off : off + take]
        return out

    @property
    def values(self) -> np.ndarray:
        """Quantized ``V`` payload, shape (1, H, length, head_dim)."""
        out = np.empty((1, self.pool.num_heads, self.length, self.head_dim))
        for page, off, pos, take in self._spans(0, self.length):
            out[0, :, pos : pos + take] = self.pool.v[page][:, off : off + take]
        return out

    def reset(self) -> None:
        """Forget the history (pages are kept for the next prefill)."""
        self.length = 0
        self.sealed = 0

    def rewind(self) -> None:
        """Drop the unsealed suffix; the next append recomputes it."""
        self.length = self.sealed

    def free(self) -> int:
        """Release every page back to the pool (finish/evict); returns count."""
        released = len(self._pages)
        if released:
            self.pool.release_pages(self.owner, self._pages)
        self._pages = []
        self.length = 0
        self.sealed = 0
        return released

    # ------------------------------------------------------------------
    def _quantize_k(self, k_new: np.ndarray) -> np.ndarray:
        """Per-position quantization along ``head_dim`` (as :class:`KVCache`)."""
        if self.fmt is None:
            return k_new
        if self.block is not None and self.head_dim <= self.block:
            return quantize_partial_block(
                k_new, self.fmt, axis=-1, rounding=self.rounding, rng=self.rng
            )
        return self.fmt.quantize(k_new, axis=-1, rounding=self.rounding, rng=self.rng)

    def _scatter_k(self, kq_t: np.ndarray, t0: int) -> None:
        """Write pre-transposed K columns ``[t0, t0 + t_new)`` into pages."""
        written = 0
        for page, off, _, take in self._spans(t0, t0 + kq_t.shape[-1]):
            self.pool.kT[page][:, :, off : off + take] = (
                kq_t[0, :, :, written : written + take]
            )
            written += take

    def _scatter_v(self, vq: np.ndarray, t0: int) -> None:
        """Write quantized V rows ``[t0, t0 + t_new)`` into pages."""
        written = 0
        for page, off, _, take in self._spans(t0, t0 + vq.shape[2]):
            self.pool.v[page][:, off : off + take] = vq[0, :, written : written + take]
            written += take

    def append(
        self,
        k_new: np.ndarray,
        v_new: np.ndarray,
        spec=...,
        *,
        k_quantized: bool = False,
        defer_tail: bool = False,
    ) -> None:
        """Extend the cache with raw projections of new positions.

        Same contract and quantization sequence as :meth:`KVCache.append`
        (including ``k_quantized``/``defer_tail``); only the destination
        is paged.  Page growth happens first and is all-or-nothing, so
        ``PoolExhausted`` never leaves a half-appended cache.
        """
        if spec is not ... and spec is not self.spec:
            raise ValueError(
                "attention quant spec changed since this PagedKVCache was "
                "built; create a fresh decode state after re-casting a model"
            )
        t_new = k_new.shape[2]
        t0 = self.length
        if t0 + t_new > self.capacity:
            raise ValueError(
                f"KV cache overflow: {t0} cached + {t_new} new > "
                f"capacity {self.capacity}"
            )
        self.reserve(t0 + t_new)
        kq = k_new if k_quantized else self._quantize_k(k_new)
        self._scatter_k(np.swapaxes(kq, -1, -2), t0)

        if self.fmt is None:
            self._scatter_v(np.asarray(v_new), t0)
            self.length = self.sealed = t0 + t_new
            return
        if self.block == 1:
            self._scatter_v(
                self.fmt.quantize(v_new, axis=-2, rounding=self.rounding, rng=self.rng),
                t0,
            )
            self.length = self.sealed = t0 + t_new
            return

        block = self.block
        pool = self.pool
        consumed = 0
        while consumed < t_new:
            tail_len = self.length - self.sealed
            remaining = t_new - consumed
            if tail_len == 0 and remaining >= block:
                # whole blocks seal in one aligned quantization, each
                # landing as one frozen page
                whole = (remaining // block) * block
                chunk = v_new[:, :, consumed : consumed + whole]
                self._scatter_v(
                    self.fmt.quantize(
                        chunk, axis=-2, rounding=self.rounding, rng=self.rng
                    ),
                    self.sealed,
                )
                self.sealed += whole
                self.length += whole
                consumed += whole
                continue
            take = min(block - tail_len, remaining)
            page = self._pages[self.sealed // block]
            pool.v_raw[page][:, tail_len : tail_len + take] = v_new[
                0, :, consumed : consumed + take
            ]
            self.length += take
            consumed += take
            tail_len += take
            if tail_len == block:
                pool.v[page][:, :block] = quantize_partial_block(
                    pool.v_raw[page][None], self.fmt, axis=-2,
                    rounding=self.rounding, rng=self.rng,
                )[0]
                self.sealed += block
        tail_len = self.length - self.sealed
        if tail_len and not defer_tail:
            page = self._pages[self.sealed // block]
            pool.v[page][:, :tail_len] = quantize_partial_block(
                pool.v_raw[page][None, :, :tail_len], self.fmt, axis=-2,
                rounding=self.rounding, rng=self.rng,
            )[0]

    def _tail_raw(self, tail_len: int) -> np.ndarray:
        """Raw staged rows of the open tail, ``(1, H, tail_len, head_dim)``."""
        page = self._pages[self.sealed // self.block]
        return self.pool.v_raw[page][None, :, :tail_len]

    def _tail_store(self, tail_len: int, vq: np.ndarray) -> None:
        """Write the requantized open tail back into its page."""
        page = self._pages[self.sealed // self.block]
        self.pool.v[page][:, :tail_len] = vq[0]


class CrossKV:
    """Frozen quantized K/V of a static cross-attention memory.

    An encoder-decoder step recomputes (and requantizes) the memory's key
    and value projections for every emitted token; they only depend on the
    encoder output, so this cache builds them exactly once per decode.
    """

    def __init__(self):
        self.kT: np.ndarray | None = None
        self.v: np.ndarray | None = None

    def reset(self) -> None:
        self.kT = None
        self.v = None

    def project(self, attn, memory) -> tuple[np.ndarray, np.ndarray]:
        if self.kT is None:
            k = attn._split_heads(attn.k_proj(memory)).data
            v = attn._split_heads(attn.v_proj(memory)).data
            fmt, rounding, rng = _activation_format(attn.quant)
            if fmt is None:
                self.kT, self.v = np.swapaxes(k, -1, -2), v
            else:
                # mirror the uncached operand quantizations exactly:
                # K^T along head_dim, V along the (static) sequence axis
                self.kT = fmt.quantize(
                    np.swapaxes(k, -1, -2), axis=-2, rounding=rounding, rng=rng
                )
                self.v = fmt.quantize(v, axis=-2, rounding=rounding, rng=rng)
        return self.kT, self.v


class DecoderLayerKV:
    """Per-decoder-block pair: self-attention cache + cross-attention cache."""

    def __init__(self, self_kv: KVCache, cross_kv: CrossKV):
        self.self_kv = self_kv
        self.cross_kv = cross_kv

    def reset(self) -> None:
        self.self_kv.reset()
        self.cross_kv.reset()

    def rewind(self) -> None:
        self.self_kv.rewind()  # the cross memory is static — never rewinds


class DecodeState:
    """Positional + per-layer KV state for one incremental decode.

    ``layers`` holds one cache object per attention-bearing block (a
    :class:`KVCache` for causal LMs, a :class:`DecoderLayerKV` for
    encoder-decoder stacks); ``position`` is the number of positions the
    caches currently cover.  :meth:`reset` implements sliding-window
    eviction: once a window must shift, absolute positional encodings
    change for every cached entry, so the only bit-identical option is to
    drop the history and prefill the shifted window (buffers are reused).
    """

    def __init__(self, layers: list, capacity: int):
        self.layers = layers
        self.capacity = capacity
        self.position = 0

    def _kv(self, layer) -> KVCache:
        return layer.self_kv if isinstance(layer, DecoderLayerKV) else layer

    def reset(self) -> None:
        self.position = 0
        for layer in self.layers:
            layer.reset()

    def rewind(self) -> int:
        """Drop every layer's unsealed suffix; returns the stable boundary.

        The boundary is the largest block-aligned prefix sealed in *every*
        layer — positions below it are exactly stable under full-prefix
        recompute (module docstring), so only ``position - boundary`` rows
        (at most one block) need re-feeding.  With layers whose formats
        disagree on block alignment, the boundary conservatively degrades
        toward zero (full recompute through the cache API stays correct).
        """
        boundary = min((self._kv(layer).sealed for layer in self.layers), default=0)
        for layer in self.layers:
            kv = self._kv(layer)
            if kv.block is None or boundary % max(kv.block, 1):
                boundary = 0
                break
        for layer in self.layers:
            kv = self._kv(layer)
            kv.length = min(kv.length, boundary)
            kv.sealed = min(kv.sealed, boundary)
        self.position = boundary
        return boundary


class RecurrentDecodeState:
    """Carried (h, c) decoder state for LSTM seq2seq incremental decoding."""

    def __init__(self, initial):
        self.initial = initial
        self.state = initial
        self.position = 0

    def reset(self) -> None:
        self.state = self.initial
        self.position = 0


# ----------------------------------------------------------------------
# Gating and generic causal stepping
# ----------------------------------------------------------------------
def supports_cached_decode(model) -> bool:
    """True when incremental decoding of ``model`` is bit-identical.

    Full-prefix recompute quantizes every past position again on each
    step; an incremental step quantizes each position once.  The two agree
    exactly iff every quantization in the model is idempotent under
    recomputation: stateless formats (``cache_key() is not None``) with
    deterministic rounding, for activations and weights alike (a delayed
    scaler's history would advance differently, and stochastic rounding
    would redraw).  Embedding storage tables are held to the same bar, and
    attention activations additionally need a known block size so the
    sealed-boundary bookkeeping has alignment to work with.
    """
    for _, module in model.named_modules():
        spec = getattr(module, "quant", None)
        if spec is not None:
            quantized_roles = [
                getattr(spec, role)
                for role in ("activation", "weight")
                if getattr(spec, role) is not None
            ]
            if quantized_roles and spec.rounding == "stochastic":
                return False
            if any(fmt.cache_key() is None for fmt in quantized_roles):
                return False
        if isinstance(module, MultiHeadAttention):
            fmt = module.quant.activation if module.quant is not None else None
            if fmt is not None and fmt.block_size() is None:
                return False
        storage = getattr(module, "storage_quant", None)
        if storage is not None and storage.cache_key() is None:
            return False
    return True


def init_causal_decode_state(model, batch: int = 1) -> DecodeState:
    """A fresh :class:`DecodeState` for a GPT-shaped causal LM.

    Works for any model exposing ``config`` (dim/num_heads/max_len) and
    ``blocks`` whose elements carry an ``attn`` attention module.
    """
    config = model.config
    head_dim = config.dim // config.num_heads
    layers = [
        KVCache(batch, config.num_heads, head_dim, config.max_len, block.attn.quant)
        for block in model.blocks
    ]
    return DecodeState(layers, capacity=config.max_len)


def causal_forward_step(model, tokens: np.ndarray, state: DecodeState) -> Tensor:
    """Logits for ``tokens`` appended at ``state.position``.

    ``tokens`` is (B, T_new): the rows beyond the caches' current
    coverage.  Callers normally go through :func:`causal_decode_step`,
    which handles the rewind bookkeeping.
    """
    tokens = np.asarray(tokens)
    t_new = tokens.shape[-1]
    position = state.position
    total = position + t_new
    if total > state.capacity:
        raise ValueError(
            f"decode position {total} exceeds cache capacity {state.capacity}"
        )
    x = model.token_emb(tokens) + Tensor(model.positions[position:total])
    mask = causal_mask(total)[position:] if t_new > 1 else None
    for block, layer in zip(model.blocks, state.layers):
        x = block(x, mask=mask, cache=layer)
    state.position = total
    return model.head(model.ln_f(x))


def causal_decode_step(model, tokens: np.ndarray, state: DecodeState) -> Tensor:
    """One cached decode step over the full current window ``tokens``.

    ``tokens`` is (B, T): the whole token window so far (identical across
    calls except for the appended columns).  The state rewinds to the
    sealed boundary and only the open-block suffix re-runs; the returned
    logits cover the re-fed rows, so the next-token distribution is
    ``logits[:, -1]`` — bit-identical to ``model.forward(tokens)[:, -1]``
    for models passing :func:`supports_cached_decode`.
    """
    tokens = np.asarray(tokens)
    boundary = state.rewind()
    return causal_forward_step(model, tokens[..., boundary:], state)


def init_paged_decode_state(model, pool, owner: str) -> DecodeState:
    """A :class:`DecodeState` whose layer caches live in a shared page pool.

    One ``owner`` key covers every layer's cache, so the pool can reclaim
    a whole stream with a single ``release_all``.
    """
    config = model.config
    head_dim = config.dim // config.num_heads
    layers = [
        PagedKVCache(
            pool, owner, config.num_heads, head_dim, config.max_len,
            block.attn.quant,
        )
        for block in model.blocks
    ]
    return DecodeState(layers, capacity=config.max_len)


# ----------------------------------------------------------------------
# Fused stepping of ragged concurrent streams
# ----------------------------------------------------------------------
def supports_batched_decode(model) -> bool:
    """True when one fused step over ragged streams is bit-identical.

    Stacking streams of different lengths into one padded batch only
    preserves bits if no operation lets rows influence each other *and*
    no reduction regroups when the batch shape changes.  Row-local ops
    (embeddings, LayerNorm, residuals, per-row quantization) satisfy this
    unconditionally; matmul reductions satisfy it only when every dot
    product is exact in float64 — the
    :func:`~repro.nn.residency.supports_fused_projection` condition
    (pow2-scaled low-mantissa operands), under which accumulation order
    cannot matter.  Softmax sums are *not* length-stable under padding
    (NumPy's pairwise blocking regroups), so the fused step keeps the
    whole attention tail per-row at exactly serial shapes; this gate only
    has to certify the batched trunk around it.
    """
    from .layers import Linear
    from .residency import supports_epilogue, supports_fused_projection
    from .transformer import TransformerBlock

    if not supports_cached_decode(model):
        return False
    blocks = getattr(model, "blocks", None)
    if not blocks or not all(isinstance(b, TransformerBlock) for b in blocks):
        return False
    if any(getattr(block.drop, "p", 0.0) for block in blocks):
        return False
    if not all(hasattr(model, name)
               for name in ("token_emb", "positions", "ln_f", "head", "config")):
        return False
    for _, module in model.named_modules():
        if isinstance(module, Linear):
            if module.quant is None or not supports_fused_projection(module.quant):
                return False
    return all(supports_epilogue(block.attn.quant) for block in blocks)


def requantize_tails(caches) -> None:
    """Requantize deferred open-tail V blocks, grouped across caches.

    The fused step appends to every stream's cache with ``defer_tail``,
    then requantizes all the open tails here: caches whose tails have the
    same length stack into one ``quantize_partial_block`` call instead of
    one call each.  BDR quantization is block-local and V blocks never
    span the stacked axis, so the grouped payload is bit-identical to the
    per-cache calls it replaces (asserted by the decode test suite).
    """
    groups: dict[tuple, list] = {}
    for cache in caches:
        tail_len = cache.length - cache.sealed
        if tail_len and cache.fmt is not None and cache.block not in (None, 1):
            raw = cache._tail_raw(tail_len)
            groups.setdefault((tail_len, raw.shape), []).append((cache, raw))
    for (tail_len, _), members in groups.items():
        head = members[0][0]
        stacked = quantize_partial_block(
            np.stack([raw for _, raw in members]), head.fmt, axis=-2,
            rounding=head.rounding, rng=head.rng,
        )
        for (cache, _), vq in zip(members, stacked):
            cache._tail_store(tail_len, vq)


def _batched_block_step(block, x: Tensor, caches, bounds, totals, lens) -> Tensor:
    """One transformer block over a padded ragged batch, cached.

    The trunk (LayerNorm, fused Q/K/V projection, out_proj, FFN,
    residuals) runs batched; the attention tail (scores product, scale,
    mask, softmax, weights quantization, context product) runs per row
    with exactly the serial shapes ``(1, H, L_i, T_i)`` so every
    reduction groups identically to :meth:`MultiHeadAttention
    ._forward_cached` on that stream alone.  Rows beyond a stream's
    length hold garbage that no real row ever reads.

    Cache quantization is cross-stream batched: K columns for the whole
    padded batch quantize in one call (position-local, so the padding
    rows are inert), and the open-tail V requantizations group by tail
    length through :func:`requantize_tails`.
    """
    attn = block.attn
    normed = block.ln1(x)
    q, k, v = attn._project_qkv(normed, normed)
    kq = caches[0]._quantize_k(k.data) if caches else k.data
    for i, cache in enumerate(caches):
        cache.append(
            kq[i : i + 1, :, : lens[i]],
            v.data[i : i + 1, :, : lens[i]],
            spec=attn.quant,
            k_quantized=True,
            defer_tail=True,
        )
    requantize_tails(caches)
    fmt, rounding, rng = _activation_format(attn.quant)
    q_q = memo_quantize(q, fmt, -1, rounding=rounding, rng=rng)

    n, padded = x.data.shape[0], x.data.shape[1]
    ctx = np.zeros((n, padded, attn.num_heads * attn.head_dim))
    for i, cache in enumerate(caches):
        li = lens[i]
        mask = causal_mask(totals[i])[bounds[i] :] if li > 1 else None
        # repro: allow(direct-matmul): fused fast path on already-quantized payloads; proven bit-exact vs dispatch by the equivalence suite
        scores = np.matmul(q_q[i : i + 1, :, :li], cache.keys_t)
        row_ctx = attn._pipeline_tail(scores, mask, lambda c=cache: c.values)
        ctx[i, :li] = row_ctx.data[0]
    attended = attn.out_proj(Tensor(ctx))
    x = x + block.drop(attended)
    return x + block.drop(block.mlp(block.ln2(x)))


def batched_causal_decode_step(model, windows, states) -> np.ndarray:
    """One fused decode step over ragged concurrent streams.

    ``windows[i]`` is stream *i*'s whole 1-D token window so far and
    ``states[i]`` its :class:`DecodeState`; streams may sit at different
    positions.  Each state rewinds to its sealed boundary, the open
    suffixes are right-padded into one batch, and a single pass over the
    blocks advances every stream.  Returns the ``(n, vocab)`` next-token
    logits rows, each bit-identical to what
    :func:`causal_decode_step` would produce for that stream alone —
    guaranteed only under :func:`supports_batched_decode`.
    """
    n = len(windows)
    bounds, totals, suffixes = [], [], []
    for window, state in zip(windows, states):
        window = np.asarray(window)
        boundary = state.rewind()
        total = window.shape[-1]
        if total > state.capacity:
            raise ValueError(
                f"decode position {total} exceeds cache capacity {state.capacity}"
            )
        bounds.append(boundary)
        totals.append(total)
        suffixes.append(window[boundary:])
    lens = [suffix.shape[-1] for suffix in suffixes]
    padded = max(lens)
    tokens = np.zeros((n, padded), dtype=np.int64)
    positions = np.zeros((n, padded, model.config.dim))
    for i, suffix in enumerate(suffixes):
        tokens[i, : lens[i]] = suffix
        positions[i, : lens[i]] = model.positions[bounds[i] : totals[i]]

    x = model.token_emb(tokens) + Tensor(positions)
    for layer_idx, block in enumerate(model.blocks):
        caches = [state.layers[layer_idx] for state in states]
        x = _batched_block_step(block, x, caches, bounds, totals, lens)
    last = x.data[np.arange(n), np.asarray(lens) - 1]
    for state, total in zip(states, totals):
        state.position = total
    return model.head(model.ln_f(Tensor(last))).data
