"""Scalar element-wise precision emulation (BF16 / FP16 / FP32).

Per Section V, tensor-reduction ops run in MX while element-wise ops
(LayerNorm, Softmax, GELU, residual adds) run in a scalar format — BF16 by
default, except in numerically delicate spots (diffusion vector ops, MoE
gating softmax) which stay in FP32.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["round_bf16", "round_fp16", "VectorPrecision", "apply_vector_precision"]


def round_bf16(x: np.ndarray) -> np.ndarray:
    """Round an array to bfloat16 values (round-to-nearest-even).

    Implemented with uint32 bit manipulation on the FP32 image of the data:
    add the carry-aware rounding constant, then clear the low 16 bits.
    """
    f32 = np.asarray(x, dtype=np.float32)
    bits = f32.view(np.uint32)
    rounding_bias = ((bits >> 16) & 1) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32).astype(np.float64)


def round_fp16(x: np.ndarray) -> np.ndarray:
    """Round an array to IEEE half-precision values."""
    return np.asarray(x, dtype=np.float16).astype(np.float64)


class VectorPrecision:
    """Named element-wise precision policies."""

    FP32 = "fp32"
    BF16 = "bf16"
    FP16 = "fp16"


def apply_vector_precision(x: Tensor, precision: str) -> Tensor:
    """Round a tensor's *values* to the emulated scalar format.

    Uses a straight-through gradient (the rounding is treated as identity in
    backward), the standard emulation approach: precision loss is injected
    into forward activations without perturbing the FP32 gradient math.
    """
    if precision == VectorPrecision.FP32:
        return x
    if precision == VectorPrecision.BF16:
        rounded = round_bf16(x.data)
    elif precision == VectorPrecision.FP16:
        rounded = round_fp16(x.data)
    else:
        raise ValueError(f"unknown vector precision {precision!r}")

    def backward(grad):
        x._accumulate(grad)

    return Tensor._make(rounded, (x,), backward)
