"""Multi-head attention with the MX compute flow.

All four projections *and* the two attention products (scores, context) are
tensor reductions and run quantized; the softmax is an element-wise op and
runs in the scalar vector precision (BF16 by default in the paper).
"""

from __future__ import annotations

import functools

import numpy as np

from . import functional as F
from .layers import Linear, Module
from .precision import VectorPrecision, apply_vector_precision
from .quantized import QuantSpec, quantized_bmm, quantized_bmm_prequant
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "causal_mask"]


@functools.lru_cache(maxsize=128)
def causal_mask(t: int) -> np.ndarray:
    """Upper-triangular True mask blocking attention to future positions.

    Memoized — every layer of every forward asks for the same mask — and
    returned read-only so the shared array cannot be mutated in place.
    """
    mask = np.triu(np.ones((t, t), dtype=bool), k=1)
    mask.setflags(write=False)
    return mask


class MultiHeadAttention(Module):
    """Self- or cross-attention over (B, T, D) inputs."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng, quant=quant)
        self.k_proj = Linear(dim, dim, rng=rng, quant=quant)
        self.v_proj = Linear(dim, dim, rng=rng, quant=quant)
        self.out_proj = Linear(dim, dim, rng=rng, quant=quant)
        self.quant = quant
        self.vector_precision = VectorPrecision.FP32

    def set_quant(self, quant: QuantSpec | None) -> None:
        self.quant = quant
        for proj in (self.q_proj, self.k_proj, self.v_proj, self.out_proj):
            proj.quant = quant

    def _split_heads(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def forward(
        self,
        x: Tensor,
        context: Tensor | None = None,
        mask: np.ndarray | None = None,
        cache=None,
    ) -> Tensor:
        """Attend ``x`` to ``context`` (defaults to self-attention).

        ``mask`` is a boolean array broadcastable to (T_q, T_k); True
        positions are blocked.  With ``cache`` (a
        :class:`~repro.nn.decode.KVCache` or
        :class:`~repro.nn.decode.CrossKV`), ``x`` holds only *new*
        positions: K/V come from the cache's frozen quantized payloads and
        only the single-operand side of each product is quantized here —
        the incremental-decoding fast path, bit-identical to the uncached
        computation over the full prefix.
        """
        if cache is not None:
            return self._forward_cached(x, context, mask, cache)
        context = x if context is None else context
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(context))
        v = self._split_heads(self.v_proj(context))

        scores = quantized_bmm(q, k.transpose(0, 1, 3, 2), self.quant)
        scores = scores * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = F.masked_fill(scores, mask, -1e9)
        weights = apply_vector_precision(F.softmax(scores, axis=-1), self.vector_precision)
        attended = quantized_bmm(weights, v, self.quant)
        return self.out_proj(self._merge_heads(attended))

    def _forward_cached(self, x, context, mask, cache) -> Tensor:
        """One incremental step against cached quantized K/V payloads.

        Inference-only (the prequant products refuse to run under grad).
        The op sequence mirrors :meth:`forward` exactly — scale, mask,
        softmax, vector precision — so a query row here is bit-identical
        to the same row of the full-prefix computation.
        """
        q = self._split_heads(self.q_proj(x))
        kT_q, v_q = cache.project(self, x if context is None else context)
        scores = quantized_bmm_prequant(q, kT_q, self.quant)
        scores = scores * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = F.masked_fill(scores, mask, -1e9)
        weights = apply_vector_precision(F.softmax(scores, axis=-1), self.vector_precision)
        attended = quantized_bmm_prequant(weights, v_q, self.quant)
        return self.out_proj(self._merge_heads(attended))
