"""Multi-head attention with the MX compute flow.

All four projections *and* the two attention products (scores, context) are
tensor reductions and run quantized; the softmax is an element-wise op and
runs in the scalar vector precision (BF16 by default in the paper).

Inference runs a fused schedule (see :mod:`repro.nn.residency`): the three
Q/K/V projections collapse into one concatenated-weight matmul over the
*resident* quantized input payload, and the element-wise pipeline between
the two attention products (scale → mask → softmax → vector precision)
executes as in-place ufuncs on the raw score array instead of a chain of
autograd Tensor ops.  Both stages replay the exact unfused operation
sequence, so outputs are bit-identical; training always takes the unfused
autograd path.
"""

from __future__ import annotations

import functools

import numpy as np

from ..kernels.registry import get_backend
from . import functional as F
from .layers import Linear, Module
from .precision import VectorPrecision, apply_vector_precision, round_bf16, round_fp16
from .quantized import (
    QuantSpec,
    memo_quantize,
    quantized_bmm,
    quantized_bmm_prequant,
)
from .residency import (
    FusedWeightCache,
    acquire,
    supports_epilogue,
    supports_fused_projection,
)
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "causal_mask"]


@functools.lru_cache(maxsize=128)
def causal_mask(t: int) -> np.ndarray:
    """Upper-triangular True mask blocking attention to future positions.

    Memoized with an explicit bound — every layer of every forward asks
    for the same mask, and :func:`causal_mask.cache_info` feeds the
    serving metrics — and returned read-only so the shared array cannot
    be mutated in place.
    """
    mask = np.triu(np.ones((t, t), dtype=bool), k=1)
    mask.setflags(write=False)
    return mask


def _activation_role(spec: QuantSpec | None):
    """(format, rounding, rng) of the activation role, or passthrough."""
    if spec is None or spec.activation is None:
        return None, "nearest", None
    return spec.activation, spec.rounding, spec.rng


def _round_vector(data: np.ndarray, precision: str) -> np.ndarray:
    """Array form of :func:`~repro.nn.precision.apply_vector_precision`."""
    if precision == VectorPrecision.BF16:
        return round_bf16(data)
    if precision == VectorPrecision.FP16:
        return round_fp16(data)
    return data


class MultiHeadAttention(Module):
    """Self- or cross-attention over (B, T, D) inputs."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng, quant=quant)
        self.k_proj = Linear(dim, dim, rng=rng, quant=quant)
        self.v_proj = Linear(dim, dim, rng=rng, quant=quant)
        self.out_proj = Linear(dim, dim, rng=rng, quant=quant)
        self.quant = quant
        self.vector_precision = VectorPrecision.FP32
        self._fused_qkv = FusedWeightCache()

    def set_quant(self, quant: QuantSpec | None) -> None:
        self.quant = quant
        for proj in (self.q_proj, self.k_proj, self.v_proj, self.out_proj):
            proj.quant = quant
        self._fused_qkv.invalidate()

    def _split_heads(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def _can_fuse_projections(self) -> bool:
        """All three input projections may collapse into one matmul."""
        spec = self.q_proj.quant
        if not (self.k_proj.quant is spec and self.v_proj.quant is spec):
            return False  # a per-layer policy split the projections apart
        if not supports_fused_projection(spec):
            return False
        projections = (self.q_proj, self.k_proj, self.v_proj)
        with_bias = [proj.bias is not None for proj in projections]
        if any(with_bias) and not all(with_bias):
            return False
        return all(
            proj.vector_precision == VectorPrecision.FP32 for proj in projections
        )

    def _project_qkv(self, x: Tensor, context: Tensor) -> tuple[Tensor, Tensor, Tensor]:
        """Head-split (q, k, v) projections.

        Self-attention at inference fuses the three projections into one
        ``x_q @ [W_q | W_k | W_v]`` product over the resident quantized
        payload of ``x`` (plus a fused bias epilogue) and splits the output
        columns — bit-identical to three separate matmuls because the
        concatenated weight is the concatenation of the *same memoized*
        per-projection payloads and pow2-scaled BDR dot products are exact
        (order-independent) in float64.  Every other case — training,
        cross-attention, non-eligible formats — runs the historical three
        projections.
        """
        if context is x and self._can_fuse_projections():
            spec = self.q_proj.quant
            weight, bias = self._fused_qkv.payload(
                (self.q_proj, self.k_proj, self.v_proj), spec
            )
            payload = acquire(
                x, spec.activation, -1, rounding=spec.rounding, rng=spec.rng
            )
            fused = get_backend().matmul_epilogue(
                payload.data, weight, None if bias is None else "bias", bias
            )
            d = self.dim
            q = Tensor(fused[..., :d])
            k = Tensor(fused[..., d : 2 * d])
            v = Tensor(fused[..., 2 * d :])
        else:
            q = self.q_proj(x)
            k = self.k_proj(context)
            v = self.v_proj(context)
        return self._split_heads(q), self._split_heads(k), self._split_heads(v)

    # ------------------------------------------------------------------
    # The element-wise pipeline between the two attention products
    # ------------------------------------------------------------------
    def _pipeline_tail(self, scores: np.ndarray, mask, v_payload) -> Tensor:
        """scale → mask → softmax → vector precision → context, fused.

        ``scores`` is the raw (owned) score array, mutated in place;
        ``v_payload`` is a thunk producing the quantized V operand, called
        *after* the softmax weights are quantized so the engine-call order
        matches the unfused path exactly (stochastic rounding and delayed
        scaling observe tensors in the same sequence).  Every ufunc
        mirrors the Tensor-op chain of :meth:`forward` — identical
        operations and association order, hence identical bits.  Returns
        the head-merged ``(B, T, D)`` context, ready for ``out_proj``.
        """
        scores *= 1.0 / np.sqrt(self.head_dim)
        if mask is not None:
            np.copyto(scores, -1e9, where=mask)
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)
        weights = _round_vector(scores, self.vector_precision)
        fmt, rounding, rng = _activation_role(self.quant)
        if fmt is not None:
            weights = fmt.quantize(weights, axis=-1, rounding=rounding, rng=rng)
        # repro: allow(direct-matmul): fused fast path on already-quantized payloads; proven bit-exact vs dispatch by the equivalence suite
        context = np.matmul(weights, v_payload())
        b, h, t, d = context.shape
        return Tensor(context.transpose(0, 2, 1, 3).reshape(b, t, h * d))

    # ------------------------------------------------------------------
    def forward(
        self,
        x: Tensor,
        context: Tensor | None = None,
        mask: np.ndarray | None = None,
        cache=None,
    ) -> Tensor:
        """Attend ``x`` to ``context`` (defaults to self-attention).

        ``mask`` is a boolean array broadcastable to (T_q, T_k); True
        positions are blocked.  With ``cache`` (a
        :class:`~repro.nn.decode.KVCache` or
        :class:`~repro.nn.decode.CrossKV`), ``x`` holds only *new*
        positions: K/V come from the cache's frozen quantized payloads and
        only the single-operand side of each product is quantized here —
        the incremental-decoding fast path, bit-identical to the uncached
        computation over the full prefix.
        """
        if cache is not None:
            return self._forward_cached(x, context, mask, cache)
        context = x if context is None else context
        if (
            context is x
            and self._can_fuse_projections()
            and supports_fused_projection(self.quant)
            and supports_epilogue(self.quant)
        ):
            return self._forward_fused_self(x, mask)
        q, k, v = self._project_qkv(x, context)

        if supports_epilogue(self.quant):
            # inference: quantize q and k (resident payloads), then run
            # the element-wise pipeline in place on the raw score array.
            # k quantizes along its trailing head_dim axis and the payload
            # is view-transposed: blocks are head_dim fibers either way, so
            # this equals quantizing K^T along axis -2 bit-for-bit while
            # skipping the kernel's moveaxis copy.
            fmt, rounding, rng = _activation_role(self.quant)
            q_q = memo_quantize(q, fmt, -1, rounding=rounding, rng=rng)
            k_q = memo_quantize(k, fmt, -1, rounding=rounding, rng=rng)
            return self.out_proj(
                self._pipeline_tail(
                    # repro: allow(direct-matmul): fused fast path on already-quantized payloads; proven bit-exact vs dispatch by the equivalence suite
                    np.matmul(q_q, np.swapaxes(k_q, -1, -2)),
                    mask,
                    lambda: memo_quantize(v, fmt, -2, rounding=rounding, rng=rng),
                )
            )

        scores = quantized_bmm(q, k.transpose(0, 1, 3, 2), self.quant)
        scores = scores * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = F.masked_fill(scores, mask, -1e9)
        weights = apply_vector_precision(F.softmax(scores, axis=-1), self.vector_precision)
        attended = quantized_bmm(weights, v, self.quant)
        return self.out_proj(self._merge_heads(attended))

    def _forward_fused_self(self, x: Tensor, mask) -> Tensor:
        """Fully fused self-attention step (inference, eligible formats).

        One concatenated Q/K/V matmul over the resident payload of ``x``,
        then head splitting as pure views on the raw output: q and k
        quantize along their trailing head_dim axis straight off the head
        grid (no intermediate Tensor copies; the transposed payloads are
        views, bit-identical to quantizing after transposition because
        blocks are head_dim fibers either way), and the element-wise
        pipeline runs in place.  Engaged only when
        :func:`~repro.nn.residency.supports_fused_projection` holds for
        the product spec, so every dot product is exact and the schedule
        change cannot alter a single output bit.
        """
        spec = self.q_proj.quant
        weight, bias = self._fused_qkv.payload(
            (self.q_proj, self.k_proj, self.v_proj), spec
        )
        payload = acquire(x, spec.activation, -1, rounding=spec.rounding, rng=spec.rng)
        fused = get_backend().matmul_epilogue(
            payload.data, weight, None if bias is None else "bias", bias
        )
        b, t, _ = fused.shape
        h, hd = self.num_heads, self.head_dim
        grid = fused.reshape(b, t, 3 * h, hd)
        fmt, rounding, rng = _activation_role(self.quant)
        q_q = fmt.quantize(grid[:, :, :h], axis=-1, rounding=rounding, rng=rng)
        k_q = fmt.quantize(grid[:, :, h : 2 * h], axis=-1, rounding=rounding, rng=rng)
        # repro: allow(direct-matmul): fused fast path on already-quantized payloads; proven bit-exact vs dispatch by the equivalence suite
        scores = np.matmul(q_q.transpose(0, 2, 1, 3), k_q.transpose(0, 2, 3, 1))

        def v_payload():
            v_view = grid[:, :, 2 * h :].transpose(0, 2, 1, 3)
            return fmt.quantize(v_view, axis=-2, rounding=rounding, rng=rng)

        return self.out_proj(self._pipeline_tail(scores, mask, v_payload))

    def _forward_cached(self, x, context, mask, cache) -> Tensor:
        """One incremental step against cached quantized K/V payloads.

        Inference-only (the prequant products refuse to run under grad).
        The op sequence mirrors :meth:`forward` exactly — scale, mask,
        softmax, vector precision — so a query row here is bit-identical
        to the same row of the full-prefix computation.  Self-attention
        caches (anything exposing ``append``) receive projections through
        :meth:`_project_qkv`, so the fused Q/K/V matmul also feeds the
        decode path; cross-attention memories keep their frozen-payload
        ``project`` protocol.
        """
        source = x if context is None else context
        if hasattr(cache, "append") and source is x:
            q, k, v = self._project_qkv(x, x)
            cache.append(k.data, v.data, spec=self.quant)
            kT_q, v_q = cache.keys_t, cache.values
        else:
            q = self._split_heads(self.q_proj(x))
            kT_q, v_q = cache.project(self, source)

        if supports_epilogue(self.quant):
            fmt, rounding, rng = _activation_role(self.quant)
            q_q = memo_quantize(q, fmt, -1, rounding=rounding, rng=rng)
            return self.out_proj(
                # repro: allow(direct-matmul): fused fast path on already-quantized payloads; proven bit-exact vs dispatch by the equivalence suite
                self._pipeline_tail(np.matmul(q_q, kT_q), mask, lambda: v_q)
            )

        scores = quantized_bmm_prequant(q, kT_q, self.quant)
        scores = scores * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = F.masked_fill(scores, mask, -1e9)
        weights = apply_vector_precision(F.softmax(scores, axis=-1), self.vector_precision)
        attended = quantized_bmm_prequant(weights, v_q, self.quant)
        return self.out_proj(self._merge_heads(attended))
