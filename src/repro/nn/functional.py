"""Functional ops built on the autograd engine.

Composite functions (softmax, GELU, layer norm) are expressed in terms of
Tensor primitives so gradients come for free; ops with awkward composite
gradients (embedding gather, masked attention fill) register custom
backwards.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "silu",
    "layer_norm",
    "embedding",
    "dropout",
    "masked_fill",
    "cross_entropy",
    "one_hot",
]

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximated GELU (the transformer default)."""
    inner = (x + x * x * x * 0.044715) * _SQRT_2_OVER_PI
    return x * (inner.tanh() + 1.0) * 0.5


def silu(x: Tensor) -> Tensor:
    return x * x.sigmoid()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the trailing dimension."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered / (variance + eps).sqrt()
    return normalized * weight + bias


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``table`` (vocab, dim) by integer ``indices``."""
    indices = np.asarray(indices)
    out_data = table.data[indices]

    def backward(grad):
        full = np.zeros_like(table.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, table.shape[-1]))
        table._accumulate(full)

    return Tensor._make(out_data, (table,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = (rng.random(size=x.shape) >= p) / (1.0 - p)

    def backward(grad):
        x._accumulate(grad * keep)

    return Tensor._make(x.data * keep, (x,), backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace positions where ``mask`` is True with ``value`` (no gradient
    flows into filled positions)."""
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, value, x.data)

    def backward(grad):
        x._accumulate(np.where(mask, 0.0, grad))

    return Tensor._make(out_data, (x,), backward)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """Plain numpy one-hot (labels never need gradients)."""
    indices = np.asarray(indices)
    out = np.zeros(indices.shape + (depth,))
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def cross_entropy(
    logits: Tensor, targets: np.ndarray, ignore_index: int | None = None
) -> Tensor:
    """Mean cross entropy between (N..., C) logits and integer targets.

    Positions equal to ``ignore_index`` are excluded from the mean (used for
    padding tokens in language modelling).
    """
    targets = np.asarray(targets)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    count = max(int(valid.sum()), 1)
    safe_targets = np.where(valid, flat_targets, 0)
    logp = log_softmax(flat_logits, axis=-1)
    picked = logp * one_hot(safe_targets, logits.shape[-1])
    per_token = -picked.sum(axis=-1)
    weights = Tensor(valid.astype(np.float64) / count)
    return (per_token * weights).sum()
