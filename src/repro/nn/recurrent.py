"""LSTM cells and layers for the GNMT-style translation stand-in.

The gate projections are tensor reductions and run through the quantized
matmul path; gate non-linearities are element-wise and stay in the vector
precision, matching the Figure 8 split.
"""

from __future__ import annotations

import numpy as np

from .layers import Linear, Module
from .quantized import QuantSpec
from .tensor import Tensor, concat, stack

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step over (B, input_dim) -> (B, hidden_dim)."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.input_proj = Linear(input_dim, 4 * hidden_dim, rng=rng, quant=quant)
        self.hidden_proj = Linear(hidden_dim, 4 * hidden_dim, bias=False, rng=rng, quant=quant)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, Tensor]:
        batch = x.shape[0]
        if state is None:
            h = Tensor(np.zeros((batch, self.hidden_dim)))
            c = Tensor(np.zeros((batch, self.hidden_dim)))
        else:
            h, c = state
        gates = self.input_proj(x) + self.hidden_proj(h)
        d = self.hidden_dim
        i = gates[:, 0 * d : 1 * d].sigmoid()
        f = gates[:, 1 * d : 2 * d].sigmoid()
        g = gates[:, 2 * d : 3 * d].tanh()
        o = gates[:, 3 * d : 4 * d].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Unidirectional LSTM over (B, T, input_dim) sequences."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng=rng, quant=quant)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Returns (B, T, hidden) outputs and the final (h, c) state."""
        outputs = []
        h_c = state
        for t in range(x.shape[1]):
            h, c = self.cell(x[:, t], h_c)
            h_c = (h, c)
            outputs.append(h)
        return stack(outputs, axis=1), h_c
