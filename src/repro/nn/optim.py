"""Optimizers over FP32 master weights.

In the MX compute flow (Figure 8) the optimizer always sees full-precision
weights and gradients; quantization happens only inside tensor ops.  The
QAT recipe of Section VI-B ("reset the optimizer ... eliminated rate decay,
dropout, and momentum") is expressed by constructing a fresh optimizer with
``momentum=0``.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base: holds parameter references and per-parameter state."""

    def __init__(self, parameters: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr
        self._step = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float(np.sum(p.grad**2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.parameters:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._step
        bias2 = 1.0 - b2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            p.data -= self.lr * update
