"""Loss functions used by the benchmark suite."""

from __future__ import annotations

import numpy as np

from .functional import cross_entropy, log_softmax
from .tensor import Tensor

__all__ = ["cross_entropy", "mse_loss", "bce_with_logits", "nll_loss"]


def mse_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def bce_with_logits(logits: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Numerically stable binary cross entropy on logits.

    Uses ``max(x, 0) - x*t + log(1 + exp(-|x|))``.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    positive = logits.relu()
    abs_logits = logits.abs()
    softplus = ((-abs_logits).exp() + 1.0).log()
    return (positive - logits * target + softplus).mean()


def nll_loss(logits: Tensor, targets: np.ndarray, ignore_index: int | None = None) -> Tensor:
    """Alias of cross entropy on raw logits (kept for call-site clarity)."""
    return cross_entropy(logits, targets, ignore_index=ignore_index)


def perplexity_from_loss(loss: float) -> float:
    """Perplexity of a mean cross-entropy loss (nats)."""
    return float(np.exp(loss))
