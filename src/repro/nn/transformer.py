"""Transformer building blocks shared by the GPT / BERT / NMT stand-ins."""

from __future__ import annotations

import functools

import numpy as np

from . import functional as F
from .attention import MultiHeadAttention
from .layers import Dropout, GELU, LayerNorm, Linear, Module
from .precision import VectorPrecision
from .quantized import QuantSpec, quantized_matmul
from .residency import supports_epilogue
from .tensor import Tensor

__all__ = ["FeedForward", "TransformerBlock", "DecoderBlock", "sinusoidal_positions"]


@functools.lru_cache(maxsize=64)
def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Standard fixed sinusoidal positional encodings (length, dim).

    Memoized with an explicit bound — every model instance of a given
    geometry rebuilds the same table, and :func:`sinusoidal_positions
    .cache_info` feeds the serving metrics — and returned read-only so
    the shared array stays immutable.
    """
    position = np.arange(length)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    out = np.zeros((length, dim))
    out[:, 0::2] = np.sin(position * div)
    out[:, 1::2] = np.cos(position * div[: (dim + 1) // 2])
    out.setflags(write=False)
    return out


class FeedForward(Module):
    """Two-layer GELU MLP."""

    def __init__(
        self,
        dim: int,
        hidden: int | None = None,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        hidden = hidden or 4 * dim
        self.fc1 = Linear(dim, hidden, rng=rng, quant=quant)
        self.fc2 = Linear(hidden, dim, rng=rng, quant=quant)
        self.act = GELU()

    def forward(self, x: Tensor) -> Tensor:
        fc1 = self.fc1
        if (
            type(self.act) is GELU
            and fc1.bias is not None
            and fc1.vector_precision == VectorPrecision.FP32
            and supports_epilogue(fc1.quant)
        ):
            # inference: bias add + tanh-GELU run inside the kernel's
            # output loop, bit-identical to the separate passes below
            hidden = quantized_matmul(
                x, fc1.weight, fc1.quant, epilogue=("bias_gelu", fc1.bias.data)
            )
            return self.fc2(hidden)
        return self.fc2(self.act(self.fc1(x)))


class TransformerBlock(Module):
    """Pre-norm encoder block: LN -> attention -> LN -> MLP, residual."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        hidden: int | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng=rng, quant=quant)
        self.ln2 = LayerNorm(dim)
        self.mlp = FeedForward(dim, hidden, rng=rng, quant=quant)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None, cache=None) -> Tensor:
        """``cache`` is a :class:`~repro.nn.decode.KVCache` for incremental
        decoding: ``x`` then carries only the new positions."""
        x = x + self.drop(self.attn(self.ln1(x), mask=mask, cache=cache))
        return x + self.drop(self.mlp(self.ln2(x)))


class DecoderBlock(Module):
    """Pre-norm decoder block with cross-attention (for enc-dec models)."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        hidden: int | None = None,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.self_attn = MultiHeadAttention(dim, num_heads, rng=rng, quant=quant)
        self.ln2 = LayerNorm(dim)
        self.cross_attn = MultiHeadAttention(dim, num_heads, rng=rng, quant=quant)
        self.ln3 = LayerNorm(dim)
        self.mlp = FeedForward(dim, hidden, rng=rng, quant=quant)
        self.drop = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray | None = None,
        cross_mask: np.ndarray | None = None,
        cache=None,
    ) -> Tensor:
        """``cache`` is a :class:`~repro.nn.decode.DecoderLayerKV` pairing a
        self-attention KV cache with the frozen cross-attention memory
        payloads; ``x`` then carries only the new target positions."""
        self_kv = cache.self_kv if cache is not None else None
        cross_kv = cache.cross_kv if cache is not None else None
        x = x + self.drop(self.self_attn(self.ln1(x), mask=self_mask, cache=self_kv))
        x = x + self.drop(
            self.cross_attn(self.ln2(x), context=memory, mask=cross_mask, cache=cross_kv)
        )
        return x + self.drop(self.mlp(self.ln3(x)))
