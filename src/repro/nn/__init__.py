"""Deep-learning substrate: NumPy autograd, layers, optimizers, and the
quantized compute flow of Figure 8."""

from . import functional
from .attention import MultiHeadAttention, causal_mask
from .conv import Conv2d, avg_pool2d, conv2d, im2col, max_pool2d
from .decode import (
    CrossKV,
    DecodeState,
    DecoderLayerKV,
    KVCache,
    RecurrentDecodeState,
    supports_cached_decode,
)
from .layers import (
    GELU,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tanh,
)
from .losses import bce_with_logits, cross_entropy, mse_loss, nll_loss
from .optim import SGD, Adam, Optimizer
from .precision import VectorPrecision, apply_vector_precision, round_bf16, round_fp16
from .quantized import QuantSpec, quantized_bmm, quantized_matmul
from .recurrent import LSTM, LSTMCell
from .residency import (
    QuantizedActivation,
    acquire,
    configure_fusion,
    fusion_configured,
    fusion_disabled,
    fusion_enabled,
    quantize_call_count,
    reset_quantize_calls,
)
from .tensor import Tensor, concat, no_grad, stack
from .transformer import DecoderBlock, FeedForward, TransformerBlock, sinusoidal_positions

__all__ = [
    "functional",
    "MultiHeadAttention",
    "causal_mask",
    "Conv2d",
    "avg_pool2d",
    "conv2d",
    "im2col",
    "max_pool2d",
    "GELU",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "ReLU",
    "Sequential",
    "Tanh",
    "bce_with_logits",
    "cross_entropy",
    "mse_loss",
    "nll_loss",
    "SGD",
    "Adam",
    "Optimizer",
    "VectorPrecision",
    "apply_vector_precision",
    "round_bf16",
    "round_fp16",
    "QuantSpec",
    "quantized_bmm",
    "quantized_matmul",
    "QuantizedActivation",
    "acquire",
    "configure_fusion",
    "fusion_configured",
    "fusion_disabled",
    "fusion_enabled",
    "quantize_call_count",
    "reset_quantize_calls",
    "KVCache",
    "CrossKV",
    "DecoderLayerKV",
    "DecodeState",
    "RecurrentDecodeState",
    "supports_cached_decode",
    "LSTM",
    "LSTMCell",
    "Tensor",
    "concat",
    "no_grad",
    "stack",
    "DecoderBlock",
    "FeedForward",
    "TransformerBlock",
    "sinusoidal_positions",
]
