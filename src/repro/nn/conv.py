"""Convolutions via im2col, sharing the quantized-matmul compute flow.

A convolution is a dot product over ``C_in * KH * KW`` elements, so MX
quantization applies along that patch dimension — the reduction dimension —
for both the unfolded activations and the reshaped weights, exactly as the
matmul path does.
"""

from __future__ import annotations

import numpy as np

from .layers import Module
from .quantized import QuantSpec, memo_quantize
from .tensor import Tensor, is_grad_enabled

__all__ = ["Conv2d", "conv2d", "avg_pool2d", "max_pool2d", "im2col", "col2im"]


def _quantized_conv_weight(weight: Tensor, quant: QuantSpec) -> np.ndarray:
    """The reshaped ``(K, C_out)`` weight in the forward format, memoized on
    the weight tensor's data version (serving never re-quantizes it)."""
    c_out = weight.shape[0]
    return memo_quantize(
        weight,
        quant.weight,
        axis=0,
        rounding=quant.rounding,
        rng=quant.rng,
        prep=lambda d: d.reshape(c_out, -1).T,
        tag="conv_w2",
    )


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Unfold (B, C, H, W) into (B, OH, OW, C*kh*kw) patches."""
    b, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    sb, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, oh, ow, kh, kw),
        strides=(sb, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (B, OH, OW, C, kh, kw) -> (B, OH, OW, C*kh*kw)
    return windows.transpose(0, 2, 3, 1, 4, 5).reshape(b, oh, ow, c * kh * kw)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold (B, OH, OW, C*kh*kw) patch gradients back onto the input."""
    b, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    out = np.zeros((b, c, hp, wp))
    patches = cols.reshape(b, oh, ow, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += (
                patches[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    quant: QuantSpec | None = None,
) -> Tensor:
    """2-D convolution: x (B, C, H, W), weight (C_out, C_in, KH, KW)."""
    c_out, c_in, kh, kw = weight.shape
    b = x.shape[0]
    cols = im2col(x.data, kh, kw, stride, padding)  # (B, OH, OW, K)
    oh, ow = cols.shape[1], cols.shape[2]
    k = c_in * kh * kw
    w2 = weight.data.reshape(c_out, k).T  # (K, C_out)

    if quant is not None:
        cols_q = quant.quantize("activation", cols, axis=-1)
        w2_q = _quantized_conv_weight(weight, quant)
    else:
        cols_q, w2_q = cols, w2
    # repro: allow(direct-matmul): im2col product on already-quantized payloads, mirroring quantized_matmul's fused fast path
    out_data = cols_q.reshape(-1, k) @ w2_q  # (B*OH*OW, C_out)
    out_data = out_data.reshape(b, oh, ow, c_out).transpose(0, 3, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None, None]
    if not is_grad_enabled():
        # Inference fast path: skip the backward closure and its
        # transposed/backward-format quantizations (see quantized_matmul).
        return Tensor(out_data)

    def backward(grad):
        g2 = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)  # (B*OH*OW, C_out)
        if quant is not None:
            g_da = quant.quantize("backward", g2, axis=-1)
            wt = quant.quantize("backward", w2.T, axis=0)  # (C_out, K), blocks along C_out
            g_dw = quant.quantize("backward", g2, axis=0)
            cols_t = quant.quantize("backward", cols.reshape(-1, k).T, axis=-1)
        else:
            g_da, wt = g2, w2.T
            g_dw, cols_t = g2, cols.reshape(-1, k).T
        if x.requires_grad:
            # repro: allow(direct-matmul): backward-pass product on backward-quantized payloads, mirroring quantized_matmul's backward
            dcols = (g_da @ wt).reshape(b, oh, ow, k)
            x._accumulate(col2im(dcols, x.shape, kh, kw, stride, padding))
        if weight.requires_grad:
            # repro: allow(direct-matmul): backward-pass product on backward-quantized payloads, mirroring quantized_matmul's backward
            dw = (cols_t @ g_dw).T.reshape(c_out, c_in, kh, kw)
            weight._accumulate(dw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward)


class Conv2d(Module):
    """Conv layer with MX-aware compute, He-uniform initialized."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        groups: int = 1,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        rng = rng or np.random.default_rng()
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.quant = quant
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Tensor(
            rng.normal(
                scale=scale,
                size=(out_channels, in_channels // groups, kernel_size, kernel_size),
            ),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if self.groups == 1:
            return conv2d(x, self.weight, self.bias, self.stride, self.padding, self.quant)
        # grouped (incl. depthwise) convolution: split channels, run, concat
        from .tensor import concat

        in_per_group = x.shape[1] // self.groups
        out_per_group = self.weight.shape[0] // self.groups
        outputs = []
        for g in range(self.groups):
            xg = x[:, g * in_per_group : (g + 1) * in_per_group]
            wg = self.weight[g * out_per_group : (g + 1) * out_per_group]
            bg = (
                self.bias[g * out_per_group : (g + 1) * out_per_group]
                if self.bias is not None
                else None
            )
            outputs.append(conv2d(xg, wg, bg, self.stride, self.padding, self.quant))
        return concat(outputs, axis=1)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling."""
    b, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by {kernel}")
    reshaped = x.reshape(b, c, h // kernel, kernel, w // kernel, kernel)
    return reshaped.mean(axis=(3, 5))


def max_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping max pooling."""
    b, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by {kernel}")
    reshaped = x.reshape(b, c, h // kernel, kernel, w // kernel, kernel)
    return reshaped.max(axis=5).max(axis=3)
