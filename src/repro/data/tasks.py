"""Zero/few-shot multiple-choice tasks over the synthetic language.

Table IV evaluates direct-cast GPT3-175B on likelihood-ranked choice tasks
(HellaSwag, WIC, ANLI-r2, Winogrande).  These generators build structurally
analogous tasks over :class:`~repro.data.synthetic.SyntheticLanguage`: the
model scores each candidate continuation by total log-likelihood and picks
the argmax, with N-shot variants prepending solved examples.

Task families (difficulty mirrors the paper's spread):

* ``recall``       — complete a key-value recall (HellaSwag-like, learnable).
* ``pattern``      — distinguish a grammar-consistent continuation from a
  shuffled one (WIC-like, mid difficulty).
* ``adversarial``  — candidates drawn from near-identical distributions
  (ANLI-like, near chance by construction).
* ``coreference``  — pick which earlier entity a query refers to
  (Winogrande-like).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .synthetic import SyntheticLanguage

__all__ = ["ChoiceExample", "TASK_FAMILIES", "make_task", "render_few_shot"]

TASK_FAMILIES = ("recall", "pattern", "adversarial", "coreference")


@dataclass
class ChoiceExample:
    """One likelihood-ranked multiple-choice instance."""

    context: np.ndarray
    candidates: list[np.ndarray]
    answer: int


def _recall_example(lang: SyntheticLanguage, rng: np.random.Generator) -> ChoiceExample:
    """Context stores a value behind a copy marker; the query must recall it."""
    prefix = lang.sample_sequence(12, rng)
    value = int(rng.integers(lang.content_size))
    distractor = int((value + 1 + rng.integers(lang.content_size - 1)) % lang.content_size)
    context = np.concatenate([prefix, [lang.copy_token, value, lang.query_token]])
    candidates = [np.array([value]), np.array([distractor])]
    answer = 0
    order = rng.permutation(2)
    return ChoiceExample(context, [candidates[i] for i in order], int(np.argmin(order)))


def _pattern_example(lang: SyntheticLanguage, rng: np.random.Generator) -> ChoiceExample:
    """True continuation sampled from the grammar vs token-shuffled noise."""
    sequence = lang.sample_sequence(16, rng)
    context, true_cont = sequence[:12], sequence[12:]
    shuffled = rng.permutation(lang.content_size)[: len(true_cont)]
    candidates = [true_cont, shuffled.astype(np.int64)]
    order = rng.permutation(2)
    return ChoiceExample(context, [candidates[i] for i in order], int(np.argmin(order)))


def _adversarial_example(lang: SyntheticLanguage, rng: np.random.Generator) -> ChoiceExample:
    """Both candidates are grammar samples — near chance by construction."""
    context = lang.sample_sequence(12, rng)
    a = lang.sample_sequence(4, rng)
    b = lang.sample_sequence(4, rng)
    answer = int(rng.integers(2))
    candidates = [a, b] if answer == 0 else [b, a]
    return ChoiceExample(context, candidates, answer)


def _coreference_example(lang: SyntheticLanguage, rng: np.random.Generator) -> ChoiceExample:
    """Two stored entities; the query marker refers to the *first* one."""
    entity_a, entity_b = rng.choice(lang.content_size, size=2, replace=False)
    filler = lang.sample_sequence(6, rng)
    context = np.concatenate(
        [
            [lang.copy_token, entity_a],
            filler,
            [lang.separator, entity_b],
            [lang.query_token],
        ]
    )
    candidates = [np.array([int(entity_a)]), np.array([int(entity_b)])]
    order = rng.permutation(2)
    return ChoiceExample(context, [candidates[i] for i in order], int(np.argmin(order)))


_BUILDERS = {
    "recall": _recall_example,
    "pattern": _pattern_example,
    "adversarial": _adversarial_example,
    "coreference": _coreference_example,
}


def make_task(
    family: str, lang: SyntheticLanguage, n_examples: int, seed: int = 0
) -> list[ChoiceExample]:
    """Generate an evaluation set for one task family."""
    try:
        builder = _BUILDERS[family]
    except KeyError:
        raise ValueError(f"unknown task family {family!r}; known: {TASK_FAMILIES}") from None
    rng = np.random.default_rng(seed)
    return [builder(lang, rng) for _ in range(n_examples)]


def render_few_shot(
    example: ChoiceExample,
    shots: list[ChoiceExample],
    separator: int,
) -> ChoiceExample:
    """Prepend solved examples (context + gold answer) to the context."""
    parts = []
    for shot in shots:
        parts.append(shot.context)
        parts.append(shot.candidates[shot.answer])
        parts.append(np.array([separator]))
    parts.append(example.context)
    return ChoiceExample(np.concatenate(parts), example.candidates, example.answer)
