"""Synthetic datasets with the structure of the paper's 20+ benchmarks."""

from .synthetic import (
    CTRLogs,
    FrameAudio,
    GaussianMixture2D,
    ImageClasses,
    QACorpus,
    SyntheticLanguage,
    TranslationTask,
)
from .tasks import TASK_FAMILIES, ChoiceExample, make_task, render_few_shot

__all__ = [
    "CTRLogs",
    "FrameAudio",
    "GaussianMixture2D",
    "ImageClasses",
    "QACorpus",
    "SyntheticLanguage",
    "TranslationTask",
    "TASK_FAMILIES",
    "ChoiceExample",
    "make_task",
    "render_few_shot",
]
