"""Synthetic datasets with the task structure of the paper's benchmarks.

Each generator is deterministic given a seed and sized for laptop-scale
training.  The point is *within-model comparability across number formats*
(FP32 vs MX9 vs MX6 vs MX4), for which the dataset identity only shifts the
absolute metric values — see DESIGN.md section 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SyntheticLanguage",
    "TranslationTask",
    "ImageClasses",
    "QACorpus",
    "FrameAudio",
    "CTRLogs",
    "GaussianMixture2D",
]


class SyntheticLanguage:
    """A power-law Markov language with long-range key-value recalls.

    Sequences mix (a) first-order Markov transitions with a power-law
    stationary distribution and (b) delimiter-marked recall patterns
    (``<copy> x ... <query> -> x``) that reward context use, so LM loss
    improves with model capacity — the structure behind the GPT ladder of
    Table VII and the few-shot tasks of Table IV.
    """

    def __init__(self, vocab_size: int = 48, seed: int = 0):
        if vocab_size < 8:
            raise ValueError("vocab must hold special tokens plus content")
        self.vocab_size = vocab_size
        self.copy_token = vocab_size - 1
        self.query_token = vocab_size - 2
        self.separator = vocab_size - 3
        self.content_size = vocab_size - 3
        rng = np.random.default_rng(seed)
        logits = rng.normal(scale=1.4, size=(self.content_size, self.content_size))
        # power-law unigram bias makes some tokens much more frequent
        bias = -1.1 * np.log(np.arange(1, self.content_size + 1))
        logits = logits + bias[None, :]
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        self.transition = exp / exp.sum(axis=1, keepdims=True)
        self.initial = np.exp(bias) / np.exp(bias).sum()

    def sample_sequence(self, length: int, rng: np.random.Generator) -> np.ndarray:
        """One token sequence of the given length."""
        tokens = np.empty(length, dtype=np.int64)
        state = rng.choice(self.content_size, p=self.initial)
        pending: list[int] = []
        i = 0
        while i < length:
            roll = rng.random()
            if roll < 0.05 and i + 2 < length:
                value = rng.integers(self.content_size)
                tokens[i] = self.copy_token
                tokens[i + 1] = value
                pending.append(int(value))
                i += 2
                continue
            if roll < 0.10 and pending and i + 2 < length:
                tokens[i] = self.query_token
                tokens[i + 1] = pending.pop(0)
                i += 2
                continue
            state = rng.choice(self.content_size, p=self.transition[state])
            tokens[i] = state
            i += 1
        return tokens

    def batches(
        self, batch_size: int, seq_len: int, steps: int, seed: int = 0
    ):
        """Yield ``steps`` batches of (B, T+1) token arrays (inputs+target)."""
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            yield np.stack(
                [self.sample_sequence(seq_len + 1, rng) for _ in range(batch_size)]
            )


class TranslationTask:
    """Deterministic 'translation': map tokens through a fixed permutation
    and reverse the order — forces both lexical mapping and reordering."""

    def __init__(self, vocab_size: int = 32, seed: int = 0):
        self.vocab_size = vocab_size
        self.bos = 0
        self.eos = 1
        self.content = vocab_size - 2
        rng = np.random.default_rng(seed)
        self.mapping = rng.permutation(self.content) + 2

    def sample_pair(
        self, rng: np.random.Generator, min_len: int = 4, max_len: int = 10
    ) -> tuple[np.ndarray, np.ndarray]:
        """(source, target) including BOS/EOS on the target."""
        length = int(rng.integers(min_len, max_len + 1))
        source = rng.integers(2, self.vocab_size, size=length)
        translated = self.mapping[source - 2][::-1]
        target = np.concatenate(([self.bos], translated, [self.eos]))
        return source, target

    def batch(
        self, batch_size: int, rng: np.random.Generator, length: int = 8
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-length batch: (B, L) sources, (B, L+2) targets."""
        sources = rng.integers(2, self.vocab_size, size=(batch_size, length))
        translated = self.mapping[sources - 2][:, ::-1]
        bos = np.full((batch_size, 1), self.bos)
        eos = np.full((batch_size, 1), self.eos)
        targets = np.concatenate([bos, translated, eos], axis=1)
        return sources, targets

    def batches(self, batch_size: int, steps: int, seed: int = 0, length: int = 8):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            yield self.batch(batch_size, rng, length)


class ImageClasses:
    """Gaussian-template image classes (the ImageNet stand-in).

    Each class has a fixed smooth template; samples add amplitude jitter
    and pixel noise.  Difficulty is controlled by the noise level.
    """

    def __init__(
        self,
        num_classes: int = 8,
        size: int = 16,
        channels: int = 1,
        noise: float = 0.55,
        seed: int = 0,
    ):
        self.num_classes = num_classes
        self.size = size
        self.channels = channels
        self.noise = noise
        rng = np.random.default_rng(seed)
        raw = rng.normal(size=(num_classes, channels, size + 2, size + 2))
        # box-blur for smooth, distinguishable templates
        blurred = (
            raw[:, :, :-2, :-2] + raw[:, :, 1:-1, :-2] + raw[:, :, 2:, :-2]
            + raw[:, :, :-2, 1:-1] + raw[:, :, 1:-1, 1:-1] + raw[:, :, 2:, 1:-1]
            + raw[:, :, :-2, 2:] + raw[:, :, 1:-1, 2:] + raw[:, :, 2:, 2:]
        ) / 9.0
        self.templates = blurred / np.std(blurred, axis=(1, 2, 3), keepdims=True)

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(n, C, H, W) images and (n,) integer labels."""
        labels = rng.integers(self.num_classes, size=n)
        amplitude = 1.0 + 0.1 * rng.normal(size=(n, 1, 1, 1))
        images = self.templates[labels] * amplitude
        images = images + self.noise * rng.normal(size=images.shape)
        return images, labels

    def batches(self, batch_size: int, steps: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            yield self.sample(batch_size, rng)


class QACorpus:
    """Key-value passages with span-extraction questions (SQuAD stand-in).

    A passage lists (key, value) pairs — keys appear in a fixed canonical
    order so the task stays learnable at laptop scale — and the question
    repeats one key; the answer is that key's value span in the passage.
    """

    def __init__(self, vocab_size: int = 64, num_pairs: int = 6, seed: int = 0):
        self.vocab_size = vocab_size
        self.num_pairs = num_pairs
        self.sep = vocab_size - 1
        self.mask_token = vocab_size - 2
        self.num_keys = (vocab_size - 2) // 2
        self.seed = seed

    @property
    def passage_length(self) -> int:
        # pairs of (key, value) + separator + question key
        return 2 * self.num_pairs + 2

    def sample(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, int, int]:
        """(tokens, answer_start, answer_end) — end inclusive."""
        keys = np.arange(self.num_pairs)
        values = rng.integers(self.num_keys, 2 * self.num_keys, size=self.num_pairs)
        passage = np.empty(2 * self.num_pairs, dtype=np.int64)
        passage[0::2] = keys
        passage[1::2] = values
        which = int(rng.integers(self.num_pairs))
        tokens = np.concatenate([passage, [self.sep], [keys[which]]])
        answer_pos = 2 * which + 1
        return tokens, answer_pos, answer_pos

    def batch(self, batch_size: int, rng: np.random.Generator):
        """(B, L) tokens, (B,) starts, (B,) ends."""
        rows = [self.sample(rng) for _ in range(batch_size)]
        tokens = np.stack([r[0] for r in rows])
        starts = np.array([r[1] for r in rows])
        ends = np.array([r[2] for r in rows])
        return tokens, starts, ends

    def batches(self, batch_size: int, steps: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            yield self.batch(batch_size, rng)

    def mlm_batches(self, batch_size: int, steps: int, seed: int = 0, p: float = 0.15):
        """Masked-token batches: (tokens_with_masks, original_tokens, mask)."""
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            tokens, _, _ = self.batch(batch_size, rng)
            mask = rng.random(size=tokens.shape) < p
            mask[:, -2:] = False  # never mask the separator/question slot
            corrupted = np.where(mask, self.mask_token, tokens)
            yield corrupted, tokens, mask


class FrameAudio:
    """Synthetic 'speech': frame sequences of class-dependent spectra with
    temporal smearing (the Librispeech / wav2vec stand-in)."""

    def __init__(
        self,
        num_phones: int = 10,
        frame_dim: int = 24,
        noise: float = 0.7,
        seed: int = 0,
    ):
        self.num_phones = num_phones
        self.frame_dim = frame_dim
        self.noise = noise
        rng = np.random.default_rng(seed)
        self.spectra = rng.normal(size=(num_phones, frame_dim))

    def sample(
        self, n: int, length: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(n, T, frame_dim) frames and (n, T) phone labels (with repeats)."""
        labels = np.empty((n, length), dtype=np.int64)
        for row in range(n):
            t = 0
            while t < length:
                phone = int(rng.integers(self.num_phones))
                duration = int(rng.integers(2, 5))
                labels[row, t : t + duration] = phone
                t += duration
        frames = self.spectra[labels]
        # temporal smearing: average with the previous frame
        frames[:, 1:] = 0.7 * frames[:, 1:] + 0.3 * frames[:, :-1]
        frames = frames + self.noise * rng.normal(size=frames.shape)
        return frames, labels

    def batches(self, batch_size: int, length: int, steps: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            yield self.sample(batch_size, length, rng)


class CTRLogs:
    """Click-through logs with dense + categorical features (Criteo
    stand-in).  Ground truth: logistic in the dense features plus pairwise
    interactions of latent category embeddings."""

    def __init__(
        self,
        dense_dim: int = 8,
        cardinalities: tuple[int, ...] = (32, 32, 16, 16),
        latent_dim: int = 4,
        seed: int = 0,
    ):
        self.dense_dim = dense_dim
        self.cardinalities = tuple(cardinalities)
        rng = np.random.default_rng(seed)
        self.dense_weights = rng.normal(scale=0.8, size=dense_dim)
        self.latents = [
            rng.normal(scale=0.7, size=(card, latent_dim)) for card in cardinalities
        ]
        self.bias = -0.4

    def sample(self, n: int, rng: np.random.Generator):
        """(dense (n,D), cats (n,F), labels (n,))."""
        dense = rng.normal(size=(n, self.dense_dim))
        cats = np.stack(
            [rng.integers(card, size=n) for card in self.cardinalities], axis=1
        )
        logit = dense @ self.dense_weights + self.bias
        embedded = [table[cats[:, i]] for i, table in enumerate(self.latents)]
        for i in range(len(embedded)):
            for j in range(i + 1, len(embedded)):
                logit = logit + np.sum(embedded[i] * embedded[j], axis=1)
        probs = 1.0 / (1.0 + np.exp(-logit))
        labels = (rng.random(n) < probs).astype(np.float64)
        return dense, cats, labels

    def batches(self, batch_size: int, steps: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            yield self.sample(batch_size, rng)


@dataclass
class GaussianMixture2D:
    """Ring of 2-D Gaussians — the DDPM target distribution.

    Component index doubles as the class label for the conditional model
    and for the inception-score classifier.
    """

    num_components: int = 8
    radius: float = 4.0
    sigma: float = 0.35
    seed: int = 0

    @property
    def centers(self) -> np.ndarray:
        angles = 2 * np.pi * np.arange(self.num_components) / self.num_components
        return self.radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(n, 2) points and (n,) component labels."""
        labels = rng.integers(self.num_components, size=n)
        points = self.centers[labels] + self.sigma * rng.normal(size=(n, 2))
        return points, labels
