"""Section IV-C ablation: the parameter knees behind the MX definitions.

The paper justifies Table II with three specific trade-off measurements:

* d2 1 -> 2 bits: "+0.5 dB QSNR ... 30-50% increase in normalized cost";
* k2 8 -> 2 (at d2 = 1): "+~2 dB ... only a marginal 3% cost increase";
* k2 2 -> 1: "+0.7 dB ... a significant 30-40% cost increase".

This runner re-measures each knee with the library's fidelity and cost
models, plus two extensions: stochastic-rounding training (the FAST [43]
recipe) and the three-level parent scale (the paper's future-work note).
"""

from __future__ import annotations

from dataclasses import replace

from ..core.bdr import BDRConfig
from ..core.mx import MX6
from ..fidelity.qsnr import measure_qsnr
from ..formats.bdr_format import BDRFormat
from ..formats.three_level import ThreeLevelFormat
from ..hardware.cost import hardware_cost
from .registry import register
from .reporting import ExperimentResult


def _point(config: BDRConfig, n_vectors: int, seed: int):
    fmt = BDRFormat(config)
    return (
        measure_qsnr(fmt, n_vectors=n_vectors, seed=seed),
        hardware_cost(fmt).area_memory_product,
    )


@register("ablation")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n_vectors = 1500 if quick else 10_000
    result = ExperimentResult(
        exp_id="ablation",
        title="Section IV-C: parameter-knee ablations behind the Table II choices",
        columns=["change", "paper_claim", "dqsnr_db", "dcost_pct"],
        notes=["measured around the MX6 operating point (m=4)"],
    )
    base = MX6

    # d2: 1 -> 2 bits
    q1, c1 = _point(base, n_vectors, seed)
    q2, c2 = _point(replace(base, d2=2, name=None), n_vectors, seed)
    result.add_row(
        change="d2: 1 -> 2",
        paper_claim="+0.5 dB, +30-50% cost",
        dqsnr_db=round(q2 - q1, 2),
        dcost_pct=round(100 * (c2 - c1) / c1, 1),
    )

    # k2: 8 -> 2 at d2 = 1
    q8, c8 = _point(replace(base, k2=8, name=None), n_vectors, seed)
    result.add_row(
        change="k2: 8 -> 2",
        paper_claim="+~2 dB, +~3% cost",
        dqsnr_db=round(q1 - q8, 2),
        dcost_pct=round(100 * (c1 - c8) / c8, 1),
    )

    # k2: 2 -> 1
    q_1, c_1 = _point(
        BDRConfig(m=base.m, k1=base.k1, d1=base.d1, s_type="pow2",
                  k2=1, d2=1, ss_type="pow2"),
        n_vectors, seed,
    )
    result.add_row(
        change="k2: 2 -> 1",
        paper_claim="+0.7 dB, +30-40% cost",
        dqsnr_db=round(q_1 - q1, 2),
        dcost_pct=round(100 * (c_1 - c1) / c1, 1),
    )

    # extension: three-level parent scale (future work note of Section III)
    three = ThreeLevelFormat(base, k0=1024)
    q3 = measure_qsnr(three, n_vectors=n_vectors, seed=seed)
    result.add_row(
        change="+FP32 parent scale (3-level)",
        paper_claim="future work",
        dqsnr_db=round(q3 - q1, 2),
        dcost_pct=round(100 * (32.0 / 1024) / base.bits_per_element, 1),
    )

    # extension: stochastic mantissa rounding (FAST-style training recipe)
    fmt = BDRFormat(base)
    import numpy as np

    rng = np.random.default_rng(seed)
    from ..fidelity.distributions import sample

    x = sample("variable_normal", rng, 2000, 256)
    q_sto = fmt.quantize(x, rounding="stochastic", rng=rng)
    from ..fidelity.qsnr import qsnr

    result.add_row(
        change="stochastic rounding",
        paper_claim="(FAST [43] recipe)",
        dqsnr_db=round(qsnr(x, q_sto) - q1, 2),
        dcost_pct=0.0,
    )
    return result
