"""Table V: question answering with BERT — direct cast needs no fine-tuning.

Paper result: Bert-Base/Large lose < 0.2 EM/F1 under a *direct cast* to MX9
and even MX6.  Stand-in: span-extraction QA on the key-value corpus with
two encoder sizes.
"""

from __future__ import annotations

import numpy as np

from ..data.synthetic import QACorpus
from ..flow.cast import clear_quantization, direct_cast
from ..flow.compute_flow import TrainConfig, fit
from ..models.bert import BertQA
from .registry import register
from .reporting import ExperimentResult

#: Paper Table V values: model -> {column: (EM, F1)}.
PAPER_TABLE5 = {
    "Bert-Base": {
        "FP32": (80.80, 88.46),
        "Direct Cast (MX9)": (80.71, 88.45),
        "Direct Cast (MX6)": (80.62, 88.36),
    },
    "Bert-Large": {
        "FP32": (87.65, 93.48),
        "Direct Cast (MX9)": (87.63, 93.45),
        "Direct Cast (MX6)": (87.49, 93.37),
    },
}

#: (name, dim, layers, heads, steps)
MODELS = (
    ("Bert-Base", 32, 2, 4, 700),
    ("Bert-Large", 48, 3, 4, 700),
)


@register("table5")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    corpus = QACorpus(vocab_size=48, num_pairs=6, seed=seed)
    eval_batches = lambda: corpus.batches(64, 2, seed=seed + 98)

    result = ExperimentResult(
        exp_id="table5",
        title="Table V: BERT QA — Exact Match / F1 under direct cast",
        columns=["model", "column", "paper_em/f1", "em", "f1"],
        notes=["no quantization-aware fine-tuning anywhere in this table"],
    )
    models = MODELS[:1] if quick else MODELS
    for name, dim, layers, heads, steps in models:
        if quick:
            steps = 500
        model = BertQA(
            corpus.vocab_size, dim=dim, num_layers=layers, num_heads=heads,
            rng=np.random.default_rng(seed + 7),
        )
        fit(
            model,
            corpus.batches(32, steps, seed=seed + 8),
            TrainConfig(steps=steps, lr=2e-3, clip_norm=5.0),
        )
        for column, fmt in (("FP32", None), ("Direct Cast (MX9)", "mx9"), ("Direct Cast (MX6)", "mx6")):
            if fmt is None:
                clear_quantization(model)
            else:
                direct_cast(model, fmt)
            em, f1 = model.evaluate(eval_batches())
            paper = PAPER_TABLE5[name][column]
            result.add_row(
                model=name,
                column=column,
                **{"paper_em/f1": f"{paper[0]:.2f}/{paper[1]:.2f}"},
                em=round(em, 2),
                f1=round(f1, 2),
            )
        clear_quantization(model)
    return result
