"""Section IV-A validation: QSNR predicts end-to-end LM loss.

"We find a strong Pearson correlation between the results of our
statistical analysis and the language model loss achieved in our
end-to-end training runs in the narrow bit-width regime."

We train one GPT under several formats spanning the narrow-bit-width
regime and correlate each format's measured QSNR against the (negated)
final training loss — expecting a strongly positive r.
"""

from __future__ import annotations

import numpy as np

from ..data.synthetic import SyntheticLanguage
from ..fidelity.qsnr import measure_qsnr
from ..flow.compute_flow import TrainConfig, train_with_format
from ..formats.registry import get_format
from ..metrics.lm import pearson_correlation
from ..models.gpt import GPT, GPTConfig
from .registry import register
from .reporting import ExperimentResult

#: Formats spanning the single-digit-bit regime of the claim.
FORMATS = ("mx4", "msfp12", "mx6", "mx9")


@register("correlation")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    steps = 60 if quick else 200
    n_vectors = 500 if quick else 5000
    lang = SyntheticLanguage(seed=seed)

    result = ExperimentResult(
        exp_id="correlation",
        title="Section IV-A: QSNR vs end-to-end LM loss (statistical validation)",
        columns=["format", "qsnr_db", "final_lm_loss"],
        notes=[],
    )
    qsnrs, losses = [], []
    for name in FORMATS:
        model = GPT(
            lang.vocab_size,
            GPTConfig(dim=24, num_layers=2, num_heads=2),
            rng=np.random.default_rng(seed + 21),
        )
        train = train_with_format(
            model,
            lang.batches(8, 24, steps, seed=seed + 1),
            name,
            TrainConfig(steps=steps, lr=3e-3),
        )
        loss = model.eval_loss(lang.batches(16, 24, 4, seed=seed + 999))
        q = measure_qsnr(get_format(name), n_vectors=n_vectors, seed=seed)
        qsnrs.append(q)
        losses.append(loss)
        result.add_row(format=name, qsnr_db=round(q, 2), final_lm_loss=round(loss, 4))
        del train
    r = pearson_correlation(np.array(qsnrs), -np.array(losses))
    result.notes.append(
        f"Pearson r(QSNR, -loss) = {r:+.3f} (paper: 'strong correlation' "
        "in the narrow bit-width regime)"
    )
    return result
