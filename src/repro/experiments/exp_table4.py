"""Table IV: zero/few-shot direct-cast inferencing across (w, a) formats.

The paper direct-casts GPT3-175B and reports likelihood-ranked choice
accuracy for weight/activation format pairs from (MX9, MX9) down to
(MX4, MX4).  Stand-in: a GPT trained here on the synthetic language,
evaluated on the four task families of :mod:`repro.data.tasks` at 0/1/2
shots.  Expected shape: (MX9, MX9) ~ FP32; degradation grows toward
(MX4, MX4); the adversarial family sits near chance regardless (as ANLI-r2
does in the paper).
"""

from __future__ import annotations

import numpy as np

from ..data.synthetic import SyntheticLanguage
from ..data.tasks import TASK_FAMILIES, make_task, render_few_shot
from ..flow.cast import clear_quantization, direct_cast
from ..flow.compute_flow import TrainConfig, train_with_format
from ..models.gpt import GPT, GPTConfig, score_candidates
from .registry import register
from .reporting import ExperimentResult

#: The (weight, activation) columns of Table IV.
FORMAT_PAIRS = (
    ("FP32", None, None),
    ("(MX9, MX9)", "mx9", "mx9"),
    ("(MX6, MX9)", "mx6", "mx9"),
    ("(MX6, MX6)", "mx6", "mx6"),
    ("(MX4, MX9)", "mx4", "mx9"),
    ("(MX4, MX6)", "mx4", "mx6"),
    ("(MX4, MX4)", "mx4", "mx4"),
)


def _task_accuracy(model, examples, shots, separator) -> float:
    correct = 0
    for i, example in enumerate(examples):
        if shots:
            support = [examples[(i + j + 1) % len(examples)] for j in range(shots)]
            example = render_few_shot(example, support, separator)
        if score_candidates(model, example.context, example.candidates) == example.answer:
            correct += 1
    return 100.0 * correct / len(examples)


@register("table4")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n_examples = 24 if quick else 100
    shots_list = (0, 1) if quick else (0, 1, 2)
    train_steps = 250 if quick else 600
    lang = SyntheticLanguage(seed=seed)

    model = GPT(
        lang.vocab_size,
        GPTConfig(dim=32, num_layers=2, num_heads=4, max_len=96),
        rng=np.random.default_rng(seed + 11),
    )
    train_with_format(
        model,
        lang.batches(8, 32, train_steps, seed=seed + 1),
        None,
        TrainConfig(steps=train_steps, lr=3e-3),
    )

    result = ExperimentResult(
        exp_id="table4",
        title="Table IV: zero/few-shot direct-cast accuracy by (weight, activation) format",
        columns=["task", "n_shot"] + [label for label, _, _ in FORMAT_PAIRS],
        notes=[
            "stand-in for GPT3-175B: a GPT trained here on the synthetic "
            "language, scored by candidate log-likelihood",
            "expected shape: (MX9,MX9) ~ FP32, degradation grows toward "
            "(MX4,MX4); 'adversarial' sits near chance like ANLI-r2",
        ],
    )

    tasks = {
        family: make_task(family, lang, n_examples, seed=seed + 31)
        for family in TASK_FAMILIES
    }
    for family in TASK_FAMILIES:
        for shots in shots_list:
            row = {"task": family, "n_shot": shots}
            for label, w_fmt, a_fmt in FORMAT_PAIRS:
                if w_fmt is None:
                    clear_quantization(model)
                else:
                    direct_cast(model, w_fmt, a_fmt)
                row[label] = round(
                    _task_accuracy(model, tasks[family], shots, lang.separator), 1
                )
            clear_quantization(model)
            result.add_row(**row)
    return result
