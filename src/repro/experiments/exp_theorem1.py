"""Theorem 1 validation: measured QSNR >= the distribution-free bound.

The bound must hold for *arbitrary* distributions, including skewed ones
with correlated noise; this runner checks it across the full distribution
suite and several MX/BFP configurations, reporting the measured slack.
"""

from __future__ import annotations

from ..core.bdr import BDRConfig
from ..core.theorem import qsnr_lower_bound
from ..fidelity.distributions import list_distributions
from ..fidelity.qsnr import measure_qsnr
from ..formats.bdr_format import BDRFormat
from .registry import register
from .reporting import ExperimentResult

#: Configurations spanning the MX/BFP corner of the space.
CONFIGS = (
    BDRConfig.mx(m=7).with_name("MX9"),
    BDRConfig.mx(m=4).with_name("MX6"),
    BDRConfig.mx(m=2).with_name("MX4"),
    BDRConfig.bfp(m=7, k1=16).with_name("MSFP16"),
    BDRConfig.bfp(m=3, k1=16).with_name("MSFP12"),
    BDRConfig(m=4, k1=32, d1=8, s_type="pow2", k2=4, d2=2, ss_type="pow2").with_name(
        "bdr(m=4,k1=32,k2=4,d2=2)"
    ),
)


@register("theorem1")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n_vectors = 300 if quick else 3000
    result = ExperimentResult(
        exp_id="theorem1",
        title="Theorem 1 (Eq. 4): QSNR lower bound vs measurement, all distributions",
        columns=["format", "distribution", "bound_db", "measured_db", "slack_db", "holds"],
        notes=["the bound is distribution-free; 'holds' must be yes everywhere"],
    )
    for config in CONFIGS:
        fmt = BDRFormat(config)
        bound = qsnr_lower_bound(config, n=256)
        for dist in list_distributions():
            measured = measure_qsnr(
                fmt, distribution=dist, n_vectors=n_vectors, seed=seed
            )
            result.add_row(
                format=config.label,
                distribution=dist,
                bound_db=round(bound, 2),
                measured_db=round(measured, 2),
                slack_db=round(measured - bound, 2),
                holds="yes" if measured >= bound else "NO",
            )
    return result
