"""Figure 3: coarse software INT scaling vs fine hardware BFP scaling.

The figure's claim: at matched element bit-width, hardware-managed
fine-grained (k ~ 10) power-of-two scaling achieves much higher effective
resolution than software INT scaling amortized over k ~ 1K elements.  We
sweep the block granularity for both families and report QSNR.
"""

from __future__ import annotations

from ..core.bdr import BDRConfig
from ..fidelity.qsnr import measure_qsnr
from ..formats.bdr_format import BDRFormat
from .registry import register
from .reporting import ExperimentResult


@register("figure3")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n_vectors = 500 if quick else 5000
    length = 8192
    result = ExperimentResult(
        exp_id="figure3",
        title="Figure 3: INT (SW, coarse k) vs BFP (HW, fine k) at matched bit-width",
        columns=["family", "element_bits", "k", "bits_per_element", "qsnr_db"],
        notes=[
            "both families store sign + 7 magnitude bits; only the scaling "
            "granularity and encoding differ",
            "vectors of 8192 elements so even k=8192 forms one full block",
        ],
    )
    for k in (128, 1024, 8192):
        fmt = BDRFormat(BDRConfig.int_sw(m=7, k1=k), scaling="jit")
        result.add_row(
            family="INT8 (SW FP32 scale)",
            element_bits=8,
            k=k,
            bits_per_element=round(fmt.bits_per_element, 3),
            qsnr_db=round(
                measure_qsnr(fmt, n_vectors=n_vectors, length=length, seed=seed), 2
            ),
        )
    for k in (2, 16, 128):
        fmt = BDRFormat(BDRConfig.bfp(m=7, k1=k))
        result.add_row(
            family="BFP (HW 2^z scale)",
            element_bits=8,
            k=k,
            bits_per_element=round(fmt.bits_per_element, 3),
            qsnr_db=round(
                measure_qsnr(fmt, n_vectors=n_vectors, length=length, seed=seed), 2
            ),
        )
    return result
