"""Table I: classification of quantization approaches under two-level
scaling — regenerated from the library's own format constructors, proving
each family really occupies the claimed point in the BDR space."""

from __future__ import annotations

from ..core.bdr import BDRConfig
from ..formats.registry import get_format
from ..formats.scalar_float import FP8_E4M3, ScalarFloatFormat
from .registry import register
from .reporting import ExperimentResult


@register("table1")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    del quick, seed
    result = ExperimentResult(
        exp_id="table1",
        title="Table I: format families under the two-level scaling framework",
        columns=["format", "scale", "sub_scale", "s_type", "ss_type", "k1", "k2", "bits/elem"],
    )

    int_cfg = BDRConfig.int_sw(m=7)
    result.add_row(
        format="INT", scale="SW", sub_scale="-", s_type="FP32", ss_type="-",
        k1=int_cfg.k1, k2="-", **{"bits/elem": round(int_cfg.bits_per_element, 2)},
    )

    bfp = get_format("msfp16").config
    result.add_row(
        format="MSFP/BFP", scale="HW", sub_scale="-", s_type="2^z", ss_type="-",
        k1=bfp.k1, k2="-", **{"bits/elem": round(bfp.bits_per_element, 2)},
    )

    fp8 = ScalarFloatFormat(FP8_E4M3, scaling="delayed")
    result.add_row(
        format="FP8", scale="SW", sub_scale="HW", s_type="FP32", ss_type="2^z",
        k1=fp8.k1, k2=1, **{"bits/elem": round(fp8.bits_per_element, 2)},
    )

    vsq = get_format("vsq6").config
    result.add_row(
        format="VSQ", scale="SW", sub_scale="HW", s_type="FP32", ss_type="INT",
        k1=vsq.k1, k2=vsq.k2, **{"bits/elem": round(vsq.bits_per_element, 2)},
    )

    mx = get_format("mx9").config
    result.add_row(
        format="MX", scale="HW", sub_scale="HW", s_type="2^z", ss_type="2^z",
        k1=mx.k1, k2=mx.k2, **{"bits/elem": round(mx.bits_per_element, 2)},
    )
    return result
