"""Sparsity-affinity experiment: small blocks tolerate pruning better.

The introduction claims MX's 16-element blocks are "more amenable to
fine-grained sparsity support than larger block sizes".  We test exactly
that: apply 2:4 magnitude pruning, then quantize the survivors with BFP-
style shared scaling at several block sizes, and measure the QSNR of the
quantized-sparse tensor against the pruned (full-precision) reference.
Large blocks lose fidelity because pruning survivors inherit a shared
exponent pinned by distant large elements.
"""

from __future__ import annotations

import numpy as np

from ..core.bdr import BDRConfig
from ..core.sparsity import apply_nm_sparsity, sparse_quantize
from ..fidelity.distributions import sample
from ..fidelity.qsnr import qsnr
from .registry import register
from .reporting import ExperimentResult


@register("sparsity")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n_vectors = 500 if quick else 5000
    length = 1024
    rng = np.random.default_rng(seed)
    x = sample("outlier_normal", rng, n_vectors, length)
    pruned = apply_nm_sparsity(x, 2, 4, axis=-1)

    result = ExperimentResult(
        exp_id="sparsity",
        title="Sparsity affinity: 2:4 pruning + shared-scale quantization vs block size",
        columns=["config", "k1", "qsnr_vs_pruned_db"],
        notes=[
            "reference is the pruned FP32 tensor; distribution includes "
            "outliers so large blocks suffer scale pinning",
            "the paper's intro claim: small k1 is 'more amenable to fine-"
            "grained sparsity support than larger block sizes'",
        ],
    )
    for k1 in (16, 64, 256):
        config = BDRConfig.bfp(m=4, k1=k1)
        q = sparse_quantize(x, config, 2, 4, axis=-1)
        result.add_row(
            config=f"BFP m=4, k1={k1}",
            k1=k1,
            qsnr_vs_pruned_db=round(qsnr(pruned, q), 2),
        )
    # the MX point (k1=16 with microexponents) for reference
    mx6 = BDRConfig.mx(m=4)
    q = sparse_quantize(x, mx6, 2, 4, axis=-1)
    result.add_row(config="MX6 (k1=16, k2=2)", k1=16, qsnr_vs_pruned_db=round(qsnr(pruned, q), 2))
    return result
