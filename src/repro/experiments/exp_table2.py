"""Table II: the three basic MX data formats.

Regenerates the definition table and augments it with the measured QSNR on
the Figure 7 distribution and the Theorem 1 lower bound, verifying the
bits-per-element accounting (9 / 6 / 4) exactly.
"""

from __future__ import annotations

from ..core.mx import MX_FORMATS
from ..core.theorem import qsnr_lower_bound
from ..fidelity.qsnr import measure_qsnr
from ..formats.bdr_format import BDRFormat
from .registry import register
from .reporting import ExperimentResult


@register("table2")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n_vectors = 1000 if quick else 10_000
    result = ExperimentResult(
        exp_id="table2",
        title="Table II: definition of the basic MX data formats",
        columns=[
            "format", "k1", "k2", "d1", "d2", "mantissa_m",
            "bits_per_element", "qsnr_db", "theorem1_bound_db",
        ],
        notes=["QSNR measured on X ~ N(0, |N(0,1)|), the Figure 7 distribution"],
    )
    for name in ("MX9", "MX6", "MX4"):
        config = MX_FORMATS[name]
        fmt = BDRFormat(config)
        result.add_row(
            format=name,
            k1=config.k1,
            k2=config.k2,
            d1=config.d1,
            d2=config.d2,
            mantissa_m=config.m,
            bits_per_element=config.bits_per_element,
            qsnr_db=round(measure_qsnr(fmt, n_vectors=n_vectors, seed=seed), 2),
            theorem1_bound_db=round(qsnr_lower_bound(config), 2),
        )
    return result
