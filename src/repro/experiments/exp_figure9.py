"""Figure 9: LM loss vs normalized training cost, MX9 vs MX6.

The paper: "MX6 requires more training iterations compared to the baseline
... Given the relative throughput of MX6, however, the model can still
converge to the same quality ... with an overall lower training cost."

We train each ladder member with MX9 for S steps, then train an identical
copy with MX6 until it reaches the MX9 loss (or an iteration cap), and
price both runs with the hardware model: cost per iteration scales with
the format's area-memory product (the throughput proxy of the figure).
"""

from __future__ import annotations

import numpy as np

from ..data.synthetic import SyntheticLanguage
from ..flow.compute_flow import TrainConfig, fit
from ..flow.policy import apply_quant_policy
from ..formats.registry import get_format
from ..hardware.cost import hardware_cost
from ..models.gpt import GPT, GPT_SIZES
from ..spec.policy import UniformPolicy
from .registry import register
from .reporting import ExperimentResult


def _relative_iteration_cost(name: str, baseline: str = "mx9") -> float:
    """Per-iteration cost of a format relative to the MX9 baseline."""
    return (
        hardware_cost(get_format(name)).area_memory_product
        / hardware_cost(get_format(baseline)).area_memory_product
    )


@register("figure9")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    sizes = ["GPT-XS", "GPT-S"] if quick else ["GPT-XS", "GPT-S", "GPT-M", "GPT-L"]
    base_steps = 60 if quick else 150
    max_factor = 2.5  # iteration cap for MX6 relative to the MX9 budget
    seq_len = 24
    lang = SyntheticLanguage(seed=seed)
    mx6_cost = _relative_iteration_cost("mx6")

    result = ExperimentResult(
        exp_id="figure9",
        title="Figure 9: LM loss vs normalized training cost (MX9 vs MX6)",
        columns=["model", "format", "iterations", "iter_cost", "total_cost", "lm_loss"],
        notes=[
            f"MX6 per-iteration cost = {mx6_cost:.2f}x MX9 (area-memory "
            "throughput proxy, as in the figure's cost approximation)",
            "MX6 trains until it matches the MX9 loss (dashed-line extra "
            "iterations) or hits a 2.5x iteration cap",
        ],
    )

    for name in sizes:
        cfg = GPT_SIZES[name]

        def build():
            return GPT(lang.vocab_size, cfg, rng=np.random.default_rng(seed + 5))

        def eval_loss(model):
            return model.eval_loss(lang.batches(16, seq_len, 4, seed=seed + 999))

        # --- MX9 reference run ---
        mx9_model = build()
        apply_quant_policy(mx9_model, UniformPolicy(quant="mx9"))
        fit(
            mx9_model,
            lang.batches(8, seq_len, base_steps, seed=seed + 1),
            TrainConfig(steps=base_steps, lr=3e-3),
        )
        mx9_loss = eval_loss(mx9_model)
        result.add_row(
            model=name, format="MX9", iterations=base_steps, iter_cost=1.0,
            total_cost=float(base_steps), lm_loss=round(mx9_loss, 3),
        )

        # --- MX6: train in chunks until it matches, tracking iterations ---
        mx6_model = build()
        apply_quant_policy(mx6_model, UniformPolicy(quant="mx6"))
        chunk = max(base_steps // 4, 1)
        iterations = 0
        mx6_loss = float("inf")
        cap = int(base_steps * max_factor)
        data_seed = seed + 1
        while iterations < cap:
            fit(
                mx6_model,
                lang.batches(8, seq_len, chunk, seed=data_seed),
                TrainConfig(steps=chunk, lr=3e-3),
            )
            iterations += chunk
            data_seed += 1
            mx6_loss = eval_loss(mx6_model)
            if mx6_loss <= mx9_loss + 0.01:
                break
        result.add_row(
            model=name, format="MX6", iterations=iterations,
            iter_cost=round(mx6_cost, 3),
            total_cost=round(iterations * mx6_cost, 1),
            lm_loss=round(mx6_loss, 3),
        )
    return result
