"""Figures 1 and 2: the worked scaling examples.

The paper's introductory example quantizes X = [0.7, 1.4, 2.5, 6, 7.2] to
3-bit signed integers (qmax = 3) under three scaling strategies:

* (a) one real-valued max-based scale              -> QSNR 15.2 dB
* (b) one power-of-two scale                       -> QSNR 10.1 dB
* (c) two partitions with per-partition real scale -> QSNR 16.8 dB

Figure 2 reaches the same 16.8 dB with a *two-level* scheme: one global
real scale composed with cheap power-of-two sub-scales — the mechanism MX
implements in hardware.
"""

from __future__ import annotations

import numpy as np

from ..fidelity.qsnr import qsnr
from .registry import register
from .reporting import ExperimentResult

#: The example vector from Figure 1.
EXAMPLE_X = np.array([0.7, 1.4, 2.5, 6.0, 7.2])
#: 3-bit signed integer: codes in [-3, 3].
QMAX = 3


def _quantize_with_scale(x: np.ndarray, scale: float) -> np.ndarray:
    codes = np.clip(np.rint(x / scale), -QMAX, QMAX)
    return codes * scale


def scaling_example(strategy: str) -> float:
    """QSNR (dB) of one of the Figure 1/2 strategies on the example vector."""
    x = EXAMPLE_X
    if strategy == "real":
        scale = x.max() / QMAX
        recovered = _quantize_with_scale(x, scale)
    elif strategy == "pow2":
        scale = 2.0 ** np.ceil(np.log2(x.max() / QMAX))
        recovered = _quantize_with_scale(x, scale)
    elif strategy == "two_partition":
        low, high = x[:3], x[3:]
        recovered = np.concatenate(
            [
                _quantize_with_scale(low, low.max() / QMAX),
                _quantize_with_scale(high, high.max() / QMAX),
            ]
        )
    elif strategy == "two_level":
        # Figure 2: global real scale + power-of-two sub-scales per partition
        scale = x.max() / QMAX
        scaled = x / scale
        recovered_parts = []
        for part in (scaled[:3], scaled[3:]):
            sub = 2.0 ** np.ceil(np.log2(part.max() / QMAX))
            codes = np.clip(np.rint(part / sub), -QMAX, QMAX)
            recovered_parts.append(codes * sub * scale)
        recovered = np.concatenate(recovered_parts)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return qsnr(x, recovered)


@register("figure1")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    del quick, seed
    result = ExperimentResult(
        exp_id="figure1",
        title="Figures 1-2: scaling-strategy worked example (X = [0.7 1.4 2.5 6 7.2], 3-bit INT)",
        columns=["strategy", "paper_qsnr_db", "measured_qsnr_db"],
        notes=[
            "paper values read from Figure 1 (a)-(c) and Figure 2",
            "the two-level variant composes a real global scale with "
            "power-of-two sub-scales — the MX mechanism",
            "(a)/(b) match exactly; the figure's hand-worked partition "
            "examples mix rounding conventions, so consistent round-to-"
            "nearest lands ~1 dB above the figure's 16.8 dB",
        ],
    )
    paper = {"pow2": 10.1, "real": 15.2, "two_partition": 16.8, "two_level": 16.8}
    for strategy in ("pow2", "real", "two_partition", "two_level"):
        result.add_row(
            strategy=strategy,
            paper_qsnr_db=paper[strategy],
            measured_qsnr_db=round(scaling_example(strategy), 1),
        )
    return result
