"""One experiment runner per paper table/figure, behind a string registry.

Importing this package registers every runner; use::

    from repro.experiments import run_experiment, list_experiments
    print(run_experiment("figure7", quick=True))
"""

from . import (  # noqa: F401  (imports register the runners)
    exp_ablation,
    exp_correlation,
    exp_sparsity,
    exp_figure1,
    exp_figure3,
    exp_figure6,
    exp_figure7,
    exp_figure9,
    exp_table1,
    exp_table2,
    exp_table3,
    exp_table4,
    exp_table5,
    exp_table6,
    exp_table7,
    exp_theorem1,
)
from .registry import EXPERIMENTS, list_experiments, run_experiment
from .reporting import ExperimentResult, format_table

__all__ = [
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
    "ExperimentResult",
    "format_table",
]
