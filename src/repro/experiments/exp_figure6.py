"""Figure 6: the parameterized dot-product pipeline.

Rather than a circuit diagram, this runner reports the analytical area
account of each pipeline stage for representative configurations —
demonstrating the paper's central hardware argument: scalar FP spends its
area on per-element alignment shifters; MX replaces them with tiny
conditional shifts plus per-block alignment, freeing area for mantissa
precision.
"""

from __future__ import annotations

from ..formats.registry import get_format
from ..hardware.cost import pipeline_area
from ..hardware.power import pipeline_power
from .registry import register
from .reporting import ExperimentResult


@register("figure6")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    del quick, seed
    formats = ("mx9", "mx6", "mx4", "msfp16", "fp8_e4m3", "fp8_e5m2", "int8", "vsq6")
    breakdowns = {name: pipeline_area(get_format(name)) for name in formats}
    stages = sorted({s for bd in breakdowns.values() for s in bd.stages})

    result = ExperimentResult(
        exp_id="figure6",
        title="Figure 6: dot-product pipeline area breakdown (gate equivalents, r=64)",
        columns=["stage"] + list(formats),
        notes=[
            "substitution: analytical standard-cell model replaces Synopsys "
            "DC synthesis (see DESIGN.md); ratios, not absolute GE, matter",
            "scalar FP8 burns its area in per-element normalize shifts; "
            "MX shifts are 1-2 bits wide and alignment is per-block",
        ],
    )
    for stage in stages:
        row = {"stage": stage}
        for name in formats:
            area = breakdowns[name].stages.get(stage)
            row[name] = round(area) if area is not None else None
        result.add_row(**row)
    result.add_row(
        stage="TOTAL", **{name: round(bd.total) for name, bd in breakdowns.items()}
    )
    result.add_row(
        stage="POWER (rel.)",
        **{name: round(pipeline_power(bd).total) for name, bd in breakdowns.items()},
    )
    return result
