"""Figure 7: QSNR vs normalized area-memory product, the Pareto frontier.

Sweeps the BDR design space (several hundred pow2/pow2 configurations) plus
every named format, extracts the Pareto frontier, and checks the paper's
headline relationships:

* MX9 ~ FP8 cost with ~16 dB higher QSNR than E4M3;
* MX6 QSNR between E4M3 and E5M2 at ~2x lower cost;
* MX4 ~4x lower cost than FP8;
* MX9 ~ MSFP16 QSNR + 3.6 dB.
"""

from __future__ import annotations

from ..fidelity.sweep import run_sweep, sweep_frontier
from .registry import register
from .reporting import ExperimentResult


@register("figure7")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    # 2500 vectors keeps the full-grid sweep within ~2 minutes and is within
    # ~0.1 dB of the paper's 10K-vector asymptote; quick mode evaluates the
    # named formats only.
    n_vectors = 400 if quick else 2500
    configs = None if not quick else []  # quick mode: named formats only
    points = run_sweep(
        configs=configs, include_named=True, n_vectors=n_vectors, seed=seed
    )
    frontier = {p.label for p in sweep_frontier(points)}
    by_label = {p.label: p for p in points}

    result = ExperimentResult(
        exp_id="figure7",
        title="Figure 7: QSNR vs normalized area-memory efficiency product",
        columns=["format", "bits", "norm_area", "memory", "cost", "qsnr_db", "on_frontier"],
        notes=[],
    )
    named = [p for p in points if not p.label.startswith("bdr(")]
    for p in sorted(named, key=lambda p: p.cost):
        result.add_row(
            format=p.label,
            bits=round(p.bits_per_element, 2),
            norm_area=round(p.normalized_area, 3),
            memory=round(p.memory, 3),
            cost=round(p.cost, 3),
            qsnr_db=round(p.qsnr_db, 2),
            on_frontier="yes" if p.label in frontier else "",
        )

    mx9, mx6, mx4 = by_label["MX9"], by_label["MX6"], by_label["MX4"]
    e4m3, e5m2 = by_label["FP8 - E4M3"], by_label["FP8 - E5M2"]
    msfp16 = by_label["MSFP16"]
    fp8_cost = (e4m3.cost + e5m2.cost) / 2
    result.notes.extend(
        [
            f"swept {len(points)} design points ({len(points) - len(named)} BDR grid + "
            f"{len(named)} named); paper sweeps 800+",
            f"MX9 vs FP8-E4M3 QSNR delta: {mx9.qsnr_db - e4m3.qsnr_db:+.1f} dB (paper ~ +16 dB)",
            f"MX6 QSNR {mx6.qsnr_db:.1f} dB vs E5M2 {e5m2.qsnr_db:.1f} / E4M3 "
            f"{e4m3.qsnr_db:.1f} (paper: in between)",
            f"FP8/MX6 cost ratio: {fp8_cost / mx6.cost:.1f}x (paper ~2x); "
            f"FP8/MX4: {fp8_cost / mx4.cost:.1f}x (paper ~4x)",
            f"MX9 vs MSFP16 QSNR delta: {mx9.qsnr_db - msfp16.qsnr_db:+.1f} dB (paper ~ +3.6 dB)",
        ]
    )
    return result
