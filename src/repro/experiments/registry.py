"""Experiment registry: one runner per paper table/figure.

Each runner has signature ``run(quick=True, seed=0) -> ExperimentResult``;
``quick`` trades statistical tightness for wall-clock (benchmarks default
to quick mode, EXPERIMENTS.md records full-mode results).
"""

from __future__ import annotations

from collections.abc import Callable

from .reporting import ExperimentResult

__all__ = ["register", "run_experiment", "list_experiments", "EXPERIMENTS"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def register(exp_id: str, overwrite: bool = False):
    """Decorator registering a runner under a table/figure id.

    ``overwrite=True`` replaces an existing runner — the same escape hatch
    as :func:`repro.formats.register_format` for in-process experiments.
    """

    def wrap(fn):
        if exp_id in EXPERIMENTS and not overwrite:
            raise ValueError(f"experiment {exp_id!r} already registered")
        EXPERIMENTS[exp_id] = fn
        return fn

    return wrap


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id."""
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {exp_id!r}; known: {known}") from None
    return runner(**kwargs)


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)
