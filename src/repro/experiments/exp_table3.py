"""Table III: the training + inferencing matrix across every model family.

For each benchmark row the protocol is identical to the paper's:

1. train FP32 from seed s                        -> "Baseline FP32"
2. train MX9 from the *same* init and data order -> "MX9" (training column)
3. direct-cast the FP32 model to MX9 / MX6       -> the direct-cast columns
4. quantization-aware fine-tune the cast model
   (MX6 forward, FP32 backward, optimizer reset) -> "QA Fine-tuning (MX6)"

Expected shape (Section VI): MX9 training matches FP32 within run-to-run
noise; MX9 direct cast is a drop-in; MX6 direct cast degrades on the
fragile rows (MobileNet, diffusion) and fine-tuning recovers most of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from ..data.synthetic import (
    CTRLogs,
    FrameAudio,
    GaussianMixture2D,
    ImageClasses,
    QACorpus,
    SyntheticLanguage,
    TranslationTask,
)
from ..flow.cast import clear_quantization, direct_cast
from ..flow.compute_flow import TrainConfig, train_with_format
from ..flow.finetune import finetune
from ..metrics.fid import frechet_distance, inception_score
from ..models.bert import BertEncoder
from ..models.diffusion import DDPM2D
from ..models.dlrm import DLRM, evaluate_ctr
from ..models.speech import TinyWav2Vec, speech_wer
from ..models.translation import LSTMSeq2Seq, Seq2SeqTransformer, corpus_bleu
from ..models.vision import TinyMobileNet, TinyResNet, TinyViT, classification_accuracy
from .registry import register
from .reporting import ExperimentResult

#: Paper Table III reference values: row -> (metric, baseline, mx9_train,
#: cast_mx9, cast_mx6, finetune_mx6); None where the paper has no entry.
PAPER_TABLE3 = {
    "Transformer-Base": ("BLEU^", 26.85, 26.51, 26.55, 26.32, 26.81),
    "Transformer-Large": ("BLEU^", 27.63, 27.77, 27.60, 27.48, 27.62),
    "GNMT (LSTM)": ("BLEU^", 24.44, 24.47, 24.45, 24.45, None),
    "BERT-Base": ("PPLv", 4.58, 4.62, None, None, None),
    "DeiT-Tiny": ("Top-1^", 72.16, 72.84, 72.20, 71.23, 71.96),
    "DeiT-Small": ("Top-1^", 80.53, 80.31, 80.52, 80.07, 80.34),
    "ResNet-18": ("Top-1^", 70.79, 70.44, 70.80, 69.35, 70.74),
    "ResNet-50": ("Top-1^", 77.41, 77.09, 77.16, 75.63, 77.00),
    "MobileNet v2": ("Top-1^", 72.14, 71.56, 71.48, 67.64, 71.25),
    "DDPM (cond) FID": ("FIDv", 7.60, 5.37, 7.81, 26.62, 15.72),
    "DDPM (cond) IS": ("IS^", 34.76, 34.14, 37.40, 27.88, 31.77),
    "DDPM (uncond) FID": ("FIDv", 21.99, 21.46, 17.79, 44.74, 29.55),
    "DDPM (uncond) IS": ("IS^", 15.34, 15.72, 15.83, 13.10, 15.47),
    "Wav2Vec 2.0": ("WERv", 18.90, 17.27, 18.94, 20.98, 20.13),
    "DLRM": ("AUC^", 0.8028, 0.8026, 0.8027, 0.8013, None),
}


@dataclass
class RowSpec:
    """Everything needed to run the Table III protocol for one model row."""

    name: str
    build: Callable[[], object]
    train_batches: Callable[[], object]
    finetune_batches: Callable[[], object]
    evaluate: Callable[[object], dict]
    config: TrainConfig
    finetune_steps: int = 40


def _mixture_posterior(mix: GaussianMixture2D, points: np.ndarray) -> np.ndarray:
    """Reference classifier p(y|x) for the inception-score proxy."""
    d2 = ((points[:, None, :] - mix.centers[None, :, :]) ** 2).sum(axis=2)
    logits = -d2 / (2 * mix.sigma**2)
    logits -= logits.max(axis=1, keepdims=True)
    p = np.exp(logits)
    return p / p.sum(axis=1, keepdims=True)


def _build_rows(quick: bool, seed: int) -> list[RowSpec]:
    scale = 0.75 if quick else 1.0

    def steps(n):
        return max(int(n * scale), 20)

    rows: list[RowSpec] = []

    # ---- translation ----------------------------------------------------
    # Translation has a sharp phase transition (BLEU 0 -> ~100 within a few
    # dozen steps); both rows train to a fixed budget past the transition so
    # format comparisons are made between converged models.
    task = TranslationTask(seed=seed)
    for name, dim, layers, nmt_steps in (
        ("Transformer-Base", 24, 2, 400),
        ("Transformer-Large", 32, 2, 400),
    ):
        rows.append(
            RowSpec(
                name=name,
                build=lambda dim=dim, layers=layers: Seq2SeqTransformer(
                    task.vocab_size, dim=dim, num_layers=layers, num_heads=4,
                    rng=np.random.default_rng(seed + 3),
                ),
                train_batches=lambda n=nmt_steps: task.batches(16, n, seed=seed + 4),
                finetune_batches=lambda: task.batches(16, 100, seed=seed + 44),
                evaluate=lambda m: {"BLEU": corpus_bleu(task=task, model=m, n_sentences=32)},
                config=TrainConfig(steps=nmt_steps, lr=3e-3, clip_norm=5.0),
            )
        )
    rows.append(
        RowSpec(
            name="GNMT (LSTM)",
            build=lambda: LSTMSeq2Seq(
                task.vocab_size, dim=32, rng=np.random.default_rng(seed + 3)
            ),
            train_batches=lambda n=400: task.batches(32, n, seed=seed + 4),
            finetune_batches=lambda: task.batches(32, 100, seed=seed + 44),
            evaluate=lambda m: {"BLEU": corpus_bleu(task=task, model=m, n_sentences=32)},
            config=TrainConfig(steps=400, lr=3e-3, clip_norm=5.0),
        )
    )

    # ---- language encoding (masked LM perplexity) -----------------------
    corpus = QACorpus(vocab_size=48, num_pairs=6, seed=seed)
    rows.append(
        RowSpec(
            name="BERT-Base",
            build=lambda: BertEncoder(
                corpus.vocab_size, dim=32, num_layers=2, num_heads=4,
                rng=np.random.default_rng(seed + 7),
            ),
            train_batches=lambda n=steps(250): corpus.mlm_batches(32, n, seed=seed + 8),
            finetune_batches=lambda: corpus.mlm_batches(32, 80, seed=seed + 88),
            evaluate=lambda m: {
                "PPL": m.masked_perplexity(corpus.mlm_batches(64, 4, seed=seed + 98))
            },
            config=TrainConfig(steps=steps(250), lr=2e-3),
        )
    )

    # ---- image classification -------------------------------------------
    # noise 0.9 keeps FP32 accuracy off the 100% ceiling so direct-cast
    # degradation is visible, as in the paper's vision rows
    images = ImageClasses(noise=0.9, seed=seed)

    def image_eval(m):
        return {"Top-1": classification_accuracy(m, images.batches(128, 2, seed=seed + 99))}

    vision = (
        ("DeiT-Tiny", lambda: TinyViT(dim=32, num_layers=2, rng=np.random.default_rng(seed + 5)), 150, 2e-3),
        ("DeiT-Small", lambda: TinyViT(dim=48, num_layers=3, rng=np.random.default_rng(seed + 5)), 150, 2e-3),
        ("ResNet-18", lambda: TinyResNet(blocks=2, rng=np.random.default_rng(seed + 5)), 150, 3e-3),
        ("ResNet-50", lambda: TinyResNet(blocks=3, channels=12, rng=np.random.default_rng(seed + 5)), 150, 3e-3),
        ("MobileNet v2", lambda: TinyMobileNet(blocks=2, rng=np.random.default_rng(seed + 5)), 250, 3e-3),
    )
    for name, build, n, lr in vision:
        rows.append(
            RowSpec(
                name=name,
                build=build,
                train_batches=lambda n=steps(n): images.batches(32, n, seed=seed + 6),
                finetune_batches=lambda: images.batches(32, 80, seed=seed + 66),
                evaluate=image_eval,
                config=TrainConfig(steps=steps(n), lr=lr),
            )
        )

    # ---- denoising diffusion ---------------------------------------------
    mix = GaussianMixture2D(seed=seed)

    def diffusion_batches(n_steps, data_seed):
        rng = np.random.default_rng(data_seed)
        for _ in range(n_steps):
            yield mix.sample(128, rng)

    def diffusion_eval(m):
        rng = np.random.default_rng(seed + 95)
        reference, _ = mix.sample(256, rng)
        generated = m.sample(256, np.random.default_rng(seed + 94))
        return {
            "FID": frechet_distance(reference, generated),
            "IS": inception_score(_mixture_posterior(mix, generated)),
        }

    for name, classes in (("DDPM (cond)", 8), ("DDPM (uncond)", 0)):
        rows.append(
            RowSpec(
                name=name,
                build=lambda classes=classes: DDPM2D(
                    num_classes=classes, rng=np.random.default_rng(seed + 13)
                ),
                train_batches=lambda n=steps(300): diffusion_batches(n, seed + 14),
                finetune_batches=lambda: diffusion_batches(80, seed + 15),
                evaluate=diffusion_eval,
                config=TrainConfig(steps=steps(300), lr=3e-3),
            )
        )

    # ---- speech ------------------------------------------------------------
    audio = FrameAudio(seed=seed)
    rows.append(
        RowSpec(
            name="Wav2Vec 2.0",
            build=lambda: TinyWav2Vec(rng=np.random.default_rng(seed + 9)),
            train_batches=lambda n=steps(200): audio.batches(8, 24, n, seed=seed + 10),
            finetune_batches=lambda: audio.batches(8, 24, 60, seed=seed + 20),
            evaluate=lambda m: {"WER": speech_wer(m, audio.batches(16, 24, 3, seed=seed + 97))},
            config=TrainConfig(steps=steps(200), lr=3e-3),
        )
    )

    # ---- recommendation ------------------------------------------------------
    logs = CTRLogs(seed=seed)
    rows.append(
        RowSpec(
            name="DLRM",
            build=lambda: DLRM(interaction="dot", rng=np.random.default_rng(seed + 11)),
            train_batches=lambda n=steps(300): logs.batches(64, n, seed=seed + 12),
            finetune_batches=lambda: logs.batches(64, 80, seed=seed + 22),
            evaluate=lambda m: {"AUC": evaluate_ctr(m, logs.batches(512, 2, seed=seed + 96))[0]},
            config=TrainConfig(steps=steps(300), lr=3e-3),
        )
    )
    return rows


def _run_row(row: RowSpec) -> dict[str, dict]:
    """Run the 5-column protocol for one row; metric name -> column dict."""
    # 1) FP32 baseline
    fp32_model = row.build()
    train_with_format(fp32_model, row.train_batches(), None, row.config)
    baseline = row.evaluate(fp32_model)
    state = fp32_model.state_dict()

    # 2) MX9 training, same init/data
    mx9_model = row.build()
    train_with_format(mx9_model, row.train_batches(), "mx9", row.config)
    mx9_train = row.evaluate(mx9_model)

    # 3) direct casts of the FP32-trained model
    direct_cast(fp32_model, "mx9")
    cast_mx9 = row.evaluate(fp32_model)
    direct_cast(fp32_model, "mx6")
    cast_mx6 = row.evaluate(fp32_model)
    clear_quantization(fp32_model)

    # 4) quantization-aware fine-tuning from the FP32 checkpoint
    ft_model = row.build()
    ft_model.load_state_dict(state)
    finetune(ft_model, row.finetune_batches(), "mx6", steps=row.finetune_steps, lr=3e-4)
    ft_mx6 = row.evaluate(ft_model)

    metrics = {}
    for key in baseline:
        metrics[key] = {
            "baseline_fp32": baseline[key],
            "mx9_train": mx9_train[key],
            "direct_cast_mx9": cast_mx9[key],
            "direct_cast_mx6": cast_mx6[key],
            "finetune_mx6": ft_mx6[key],
        }
    return metrics


@register("table3")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table3",
        title="Table III: training and inferencing with MX data formats",
        columns=[
            "model", "metric", "paper_baseline",
            "baseline_fp32", "mx9_train", "direct_cast_mx9",
            "direct_cast_mx6", "finetune_mx6",
        ],
        notes=[
            "^ higher is better, v lower is better (suffix on metric names)",
            "absolute values are laptop-scale stand-ins; compare columns "
            "within each row",
            "QA fine-tuning: MX6 forward, FP32 backward, optimizer reset, "
            "no momentum/decay/dropout (the Section VI-B recipe)",
        ],
    )
    for row in _build_rows(quick, seed):
        metrics = _run_row(row)
        for metric_name, columns in metrics.items():
            paper_key = row.name if len(metrics) == 1 else f"{row.name} {metric_name}"
            paper = PAPER_TABLE3.get(paper_key)
            result.add_row(
                model=row.name,
                metric=paper[0] if paper else metric_name,
                paper_baseline=paper[1] if paper else None,
                **{k: round(v, 3) for k, v in columns.items()},
            )
    return result
