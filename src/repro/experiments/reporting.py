"""Structured experiment results and plain-text table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction.

    Attributes:
        exp_id: registry id ("table3", "figure7", ...).
        title: human-readable description referencing the paper artifact.
        columns: ordered column names shared by all rows.
        rows: list of dicts mapping column name -> value.
        notes: free-form remarks (substitutions, expected shapes).
    """

    exp_id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def __str__(self) -> str:
        return format_table(self)


def _render(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.3e}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render a result as an aligned monospace table."""
    header = [result.title, "=" * len(result.title)]
    cells = [[_render(row.get(col)) for col in result.columns] for row in result.rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(result.columns)
    ]
    lines = ["  ".join(col.ljust(w) for col, w in zip(result.columns, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    body = header + lines
    if result.notes:
        body.append("")
        body.extend(f"note: {note}" for note in result.notes)
    return "\n".join(body)
