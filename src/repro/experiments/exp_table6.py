"""Table VI: recommendation-model training NE deltas, MX9 and mixed precision.

The paper trains three production models (DLRM / transformer / DHEN
interactions) with MX9 and reports the normalized-entropy delta against
FP32, with a 0.02% production threshold; PR-rec2/PR-rec3 need a
mixed-precision policy (boundary layers high-precision) to meet it.

Stand-in rows use the three DLRM interaction variants on synthetic CTR
logs; both the uniform-MX9 and the first/last-high-precision policies run.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..data.synthetic import CTRLogs
from ..flow.compute_flow import TrainConfig, fit
from ..flow.policy import apply_quant_policy
from ..models.dlrm import DLRM, evaluate_ctr
from ..spec.policy import FirstLastHighPolicy, UniformPolicy
from .registry import register
from .reporting import ExperimentResult

#: Paper Table VI NE deltas (percent): model -> (MX9, mixed-precision).
PAPER_TABLE6 = {
    "PR-rec1 (DLRM)": (0.02, None),
    "PR-rec2 (Transformer)": (0.05, 0.01),
    "PR-rec3 (DHEN)": (0.10, -0.02),
}

ROWS = (
    ("PR-rec1 (DLRM)", "dot", False),
    ("PR-rec2 (Transformer)", "transformer", True),
    ("PR-rec3 (DHEN)", "dhen", True),
)


def _train_and_ne(logs, interaction, policy_builder, steps, lr, seed) -> float:
    model = DLRM(interaction=interaction, rng=np.random.default_rng(seed))
    apply_quant_policy(model, policy_builder(model))
    fit(
        model,
        logs.batches(64, steps, seed=seed + 1),
        TrainConfig(steps=steps, lr=lr),
    )
    _, ne = evaluate_ctr(model, logs.batches(512, 4, seed=seed + 96))
    return ne


@register("table6")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    steps = 150 if quick else 400
    lr = 3e-3
    logs = CTRLogs(seed=seed)

    result = ExperimentResult(
        exp_id="table6",
        title="Table VI: NE delta of MX9 (and mixed-precision) training vs FP32",
        columns=[
            "model", "paper_mx9_pct", "paper_mixed_pct",
            "ne_fp32", "ne_mx9", "mx9_delta_pct", "mixed_delta_pct",
        ],
        notes=[
            "delta = 100 * (NE_quantized - NE_fp32) / NE_fp32; the paper's "
            "production threshold is 0.02%",
            "mixed precision keeps the first/last quantizable layers in "
            "FP32, the Table VI recipe for PR-rec2/PR-rec3",
        ],
    )

    for name, interaction, run_mixed in ROWS:
        # crc32, not hash(): the builtin string hash is salted per process,
        # which would make rows nondeterministic across interpreter runs
        row_seed = seed + zlib.crc32(name.encode()) % 997
        ne_fp32 = _train_and_ne(
            logs, interaction, lambda m: UniformPolicy(), steps, lr, row_seed
        )
        ne_mx9 = _train_and_ne(
            logs, interaction,
            lambda m: UniformPolicy(quant="mx9"),
            steps, lr, row_seed,
        )
        mixed_delta = None
        if run_mixed:
            ne_mixed = _train_and_ne(
                logs, interaction,
                lambda m: FirstLastHighPolicy(quant="mx9"),
                steps, lr, row_seed,
            )
            mixed_delta = round(100.0 * (ne_mixed - ne_fp32) / ne_fp32, 3)
        paper = PAPER_TABLE6[name]
        result.add_row(
            model=name,
            paper_mx9_pct=paper[0],
            paper_mixed_pct=paper[1],
            ne_fp32=round(ne_fp32, 4),
            ne_mx9=round(ne_mx9, 4),
            mx9_delta_pct=round(100.0 * (ne_mx9 - ne_fp32) / ne_fp32, 3),
            mixed_delta_pct=mixed_delta,
        )
    return result
