"""Table VII: generative training of dense + MoE LMs, MX9 vs FP32.

The paper's claim: MX9 matches the FP32 LM loss across the ladder with no
recipe change.  Each ladder member is trained twice from the *same
initialization* — once in FP32, once with uniform MX9 — and evaluated on
held-out batches.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..data.synthetic import SyntheticLanguage
from ..flow.compute_flow import TrainConfig, train_with_format
from ..models.gpt import GPT, GPT_SIZES
from ..models.moe import MoEGPT
from .registry import register
from .reporting import ExperimentResult

#: Paper Table VII (model -> (FP32 loss, MX9 loss)), for row mapping.
PAPER_TABLE7 = {
    "GPT-XS": (4.61, 4.61),
    "GPT-S": (4.03, 4.03),
    "GPT-M": (3.31, 3.31),
    "GPT-L": (3.11, 3.11),
    "GPT-XL": (2.74, 2.74),
    "MoE": (2.22, 2.21),
}


def _train_pair(build, batches_fn, config) -> tuple[float, float]:
    """Train FP32 and MX9 copies from identical init; return eval losses."""
    fp32_model = build()
    train_with_format(fp32_model, batches_fn(), None, config)
    mx9_model = build()
    train_with_format(mx9_model, batches_fn(), "mx9", config)
    eval_batches = lambda: batches_fn(eval_mode=True)
    return fp32_model.eval_loss(eval_batches()), mx9_model.eval_loss(eval_batches())


@register("table7")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    sizes = ["GPT-XS", "GPT-S", "GPT-M"] if quick else list(GPT_SIZES)
    steps = 60 if quick else 200
    seq_len = 24 if quick else 32
    lang = SyntheticLanguage(seed=seed)
    config = TrainConfig(steps=steps, lr=3e-3)

    result = ExperimentResult(
        exp_id="table7",
        title="Table VII: dense/MoE generative training, FP32 vs MX9 LM loss",
        columns=["model", "paper_fp32", "paper_mx9", "fp32_loss", "mx9_loss", "delta"],
        notes=[
            "models are laptop-scale; compare the FP32-vs-MX9 *delta*, "
            "not absolute losses",
            "both runs share initialization, data order and hyper-parameters "
            "(the paper's no-recipe-change claim)",
        ],
    )

    def batches_fn_for(name):
        def batches_fn(eval_mode: bool = False):
            data_seed = seed + 999 if eval_mode else seed + 1
            n = 8 if not eval_mode else 16
            count = 4 if eval_mode else steps
            return lang.batches(n, seq_len, count, seed=data_seed)

        return batches_fn

    for name in sizes:
        cfg = GPT_SIZES[name]
        # crc32, not hash(): the builtin string hash is salted per process
        rng_seed = seed + zlib.crc32(name.encode()) % 1000

        def build(cfg=cfg, rng_seed=rng_seed):
            return GPT(lang.vocab_size, cfg, rng=np.random.default_rng(rng_seed))

        fp32_loss, mx9_loss = _train_pair(build, batches_fn_for(name), config)
        paper = PAPER_TABLE7[name]
        result.add_row(
            model=name,
            paper_fp32=paper[0],
            paper_mx9=paper[1],
            fp32_loss=round(fp32_loss, 3),
            mx9_loss=round(mx9_loss, 3),
            delta=round(mx9_loss - fp32_loss, 4),
        )

    # MoE row
    moe_cfg = GPT_SIZES["GPT-S" if quick else "GPT-M"]

    def build_moe():
        return MoEGPT(lang.vocab_size, moe_cfg, rng=np.random.default_rng(seed + 77))

    fp32_loss, mx9_loss = _train_pair(build_moe, batches_fn_for("MoE"), config)
    result.add_row(
        model="MoE",
        paper_fp32=PAPER_TABLE7["MoE"][0],
        paper_mx9=PAPER_TABLE7["MoE"][1],
        fp32_loss=round(fp32_loss, 3),
        mx9_loss=round(mx9_loss, 3),
        delta=round(mx9_loss - fp32_loss, 4),
    )
    return result
