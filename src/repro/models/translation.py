"""Neural machine translation stand-ins: encoder-decoder transformer
(Transformer-Base/Large rows) and an attention LSTM seq2seq (GNMT row).
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.attention import causal_mask
from ..nn.layers import Embedding, LayerNorm, Linear, Module
from ..nn.quantized import QuantSpec
from ..nn.recurrent import LSTM
from ..nn.tensor import Tensor, concat, no_grad
from ..nn.transformer import DecoderBlock, TransformerBlock, sinusoidal_positions

__all__ = ["Seq2SeqTransformer", "LSTMSeq2Seq", "greedy_decode", "corpus_bleu"]


class Seq2SeqTransformer(Module):
    """Pre-norm encoder-decoder transformer for token-to-token translation."""

    def __init__(
        self,
        vocab_size: int,
        dim: int = 32,
        num_layers: int = 2,
        num_heads: int = 4,
        max_len: int = 32,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.dim = dim
        self.num_heads = num_heads
        self.max_len = max_len
        self.src_emb = Embedding(vocab_size, dim, rng=rng)
        self.tgt_emb = Embedding(vocab_size, dim, rng=rng)
        self.positions = sinusoidal_positions(max_len, dim)
        self.encoder = [
            TransformerBlock(dim, num_heads, rng=rng, quant=quant)
            for _ in range(num_layers)
        ]
        self.decoder = [
            DecoderBlock(dim, num_heads, rng=rng, quant=quant)
            for _ in range(num_layers)
        ]
        self.ln_f = LayerNorm(dim)
        self.head = Linear(dim, vocab_size, rng=rng, quant=quant)

    def encode(self, sources: np.ndarray) -> Tensor:
        sources = np.asarray(sources)
        x = self.src_emb(sources) + Tensor(self.positions[: sources.shape[-1]])
        for block in self.encoder:
            x = block(x)
        return x

    def decode(self, targets_in: np.ndarray, memory: Tensor) -> Tensor:
        targets_in = np.asarray(targets_in)
        t = targets_in.shape[-1]
        x = self.tgt_emb(targets_in) + Tensor(self.positions[:t])
        mask = causal_mask(t)
        for block in self.decoder:
            x = block(x, memory, self_mask=mask)
        return self.head(self.ln_f(x))

    def forward(self, sources: np.ndarray, targets_in: np.ndarray) -> Tensor:
        return self.decode(targets_in, self.encode(sources))

    def loss(self, batch) -> Tensor:
        """Teacher-forced cross entropy over (sources, targets) pairs."""
        sources, targets = batch
        logits = self.forward(sources, targets[:, :-1])
        return F.cross_entropy(logits, targets[:, 1:])

    # ------------------------------------------------------------------
    # Incremental decoding (the KV-cache serving path)
    # ------------------------------------------------------------------
    def init_decode_state(self, batch: int, capacity: int | None = None):
        """Per-decoder-block self + cross KV caches for :meth:`decode_step`."""
        from ..nn.decode import CrossKV, DecodeState, DecoderLayerKV, KVCache

        capacity = self.max_len if capacity is None else capacity
        head_dim = self.dim // self.num_heads
        layers = [
            DecoderLayerKV(
                KVCache(batch, self.num_heads, head_dim, capacity, block.self_attn.quant),
                CrossKV(),
            )
            for block in self.decoder
        ]
        return DecodeState(layers, capacity=capacity)

    def decode_step(self, targets: np.ndarray, memory: Tensor, state) -> Tensor:
        """Cached decoder logits over the current target window (B, Tt).

        Self-attention re-runs only the open-block suffix against frozen
        quantized payloads; the cross-attention K/V of ``memory`` are
        quantized exactly once per decode.  ``logits[:, -1]`` is
        bit-identical to ``decode(targets, memory)[:, -1]`` for models
        passing :func:`~repro.nn.decode.supports_cached_decode`.
        """
        targets = np.asarray(targets)
        t = targets.shape[-1]
        boundary = state.rewind()
        if t > state.capacity:
            raise ValueError(f"decode length {t} exceeds cache capacity {state.capacity}")
        window = targets[..., boundary:]
        x = self.tgt_emb(window) + Tensor(self.positions[boundary:t])
        mask = causal_mask(t)[boundary:] if t - boundary > 1 else None
        for block, layer in zip(self.decoder, state.layers):
            x = block(x, memory, self_mask=mask, cache=layer)
        state.position = t
        return self.head(self.ln_f(x))


class LSTMSeq2Seq(Module):
    """GNMT-flavoured LSTM encoder-decoder with dot-product attention."""

    def __init__(
        self,
        vocab_size: int,
        dim: int = 32,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.src_emb = Embedding(vocab_size, dim, rng=rng)
        self.tgt_emb = Embedding(vocab_size, dim, rng=rng)
        self.encoder = LSTM(dim, dim, rng=rng, quant=quant)
        self.decoder = LSTM(dim, dim, rng=rng, quant=quant)
        self.attn_proj = Linear(dim, dim, rng=rng, quant=quant)
        self.head = Linear(2 * dim, vocab_size, rng=rng, quant=quant)

    def encode(self, sources: np.ndarray):
        embedded = self.src_emb(np.asarray(sources))
        memory, state = self.encoder(embedded)
        return memory, state

    def decode(self, targets_in: np.ndarray, memory: Tensor, state) -> Tensor:
        embedded = self.tgt_emb(np.asarray(targets_in))
        hidden, _ = self.decoder(embedded, state)
        # Luong-style dot attention over encoder memory
        queries = self.attn_proj(hidden)  # (B, Tt, D)
        scores = queries @ memory.transpose(0, 2, 1)  # (B, Tt, Ts)
        weights = F.softmax(scores, axis=-1)
        context = weights @ memory  # (B, Tt, D)
        return self.head(concat([hidden, context], axis=-1))

    def forward(self, sources: np.ndarray, targets_in: np.ndarray) -> Tensor:
        memory, state = self.encode(sources)
        return self.decode(targets_in, memory, state)

    def loss(self, batch) -> Tensor:
        sources, targets = batch
        logits = self.forward(sources, targets[:, :-1])
        return F.cross_entropy(logits, targets[:, 1:])

    # ------------------------------------------------------------------
    # Incremental decoding: carry (h, c) instead of re-running the prefix
    # ------------------------------------------------------------------
    def init_decode_state(self, encoder_state):
        """Wrap the encoder's final (h, c) for :meth:`decode_step`."""
        from ..nn.decode import RecurrentDecodeState

        return RecurrentDecodeState(encoder_state)

    def decode_step(self, targets: np.ndarray, memory: Tensor, state) -> Tensor:
        """Logits for the yet-unfed suffix of the target window (B, Tt).

        The LSTM consumes each position exactly once, carrying (h, c)
        across calls — the same cell applications the full :meth:`decode`
        would re-run, so results match it position for position (exactly
        for quantized gate projections, to BLAS kernel-selection noise for
        pure FP32).  The Luong attention and head are position-local.
        """
        targets = np.asarray(targets)
        window = targets[..., state.position :]
        embedded = self.tgt_emb(window)
        hidden, carried = self.decoder(embedded, state.state)
        state.state = carried
        state.position = targets.shape[-1]
        queries = self.attn_proj(hidden)
        scores = queries @ memory.transpose(0, 2, 1)
        weights = F.softmax(scores, axis=-1)
        context = weights @ memory
        return self.head(concat([hidden, context], axis=-1))


def greedy_decode(model, sources: np.ndarray, max_len: int, bos: int, eos: int) -> list[list[int]]:
    """Greedy autoregressive decoding for either seq2seq model.

    Delegates to :class:`~repro.serve.adapters.TranslationAdapter`, the
    same code path the micro-batched serving session uses.
    """
    from ..serve.adapters import adapter_for

    with no_grad():
        return adapter_for(model).greedy_decode(np.asarray(sources), max_len, bos, eos)


def corpus_bleu(model, task, n_sentences: int = 64, seed: int = 123, length: int = 8) -> float:
    """BLEU of greedy decodes on fresh task samples."""
    from ..metrics.bleu import bleu_score

    rng = np.random.default_rng(seed)
    sources, targets = task.batch(n_sentences, rng, length=length)
    hypotheses = greedy_decode(
        model, sources, max_len=targets.shape[1], bos=task.bos, eos=task.eos
    )
    references = [[int(t) for t in row[1:-1]] for row in targets]
    return bleu_score(references, hypotheses)
