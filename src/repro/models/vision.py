"""Image-classification stand-ins: residual CNN (ResNet rows), depthwise-
separable CNN (MobileNet-v2 row) and a tiny vision transformer (DeiT rows).
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.conv import Conv2d, avg_pool2d
from ..nn.layers import LayerNorm, Linear, Module
from ..nn.quantized import QuantSpec
from ..nn.tensor import Tensor, no_grad
from ..nn.transformer import TransformerBlock, sinusoidal_positions

__all__ = ["TinyResNet", "TinyMobileNet", "TinyViT", "classification_accuracy"]


class _ResidualBlock(Module):
    def __init__(self, channels, rng, quant):
        super().__init__()
        self.conv1 = Conv2d(channels, channels, 3, padding=1, rng=rng, quant=quant)
        self.conv2 = Conv2d(channels, channels, 3, padding=1, rng=rng, quant=quant)

    def forward(self, x):
        h = self.conv1(x).relu()
        return (x + self.conv2(h)).relu()


class TinyResNet(Module):
    """Stem conv + residual stages + global average pooling head."""

    def __init__(
        self,
        num_classes: int = 8,
        channels: int = 8,
        blocks: int = 2,
        in_channels: int = 1,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.stem = Conv2d(in_channels, channels, 3, padding=1, rng=rng, quant=quant)
        self.blocks = [_ResidualBlock(channels, rng, quant) for _ in range(blocks)]
        self.head = Linear(channels, num_classes, rng=rng, quant=quant)

    def forward(self, images: np.ndarray | Tensor) -> Tensor:
        x = images if isinstance(images, Tensor) else Tensor(images)
        x = self.stem(x).relu()
        x = avg_pool2d(x, 2)
        for block in self.blocks:
            x = block(x)
        x = x.mean(axis=(2, 3))
        return self.head(x)

    def loss(self, batch) -> Tensor:
        images, labels = batch
        return F.cross_entropy(self.forward(images), labels)


class _SeparableBlock(Module):
    """Depthwise 3x3 + pointwise 1x1, the MobileNet primitive."""

    def __init__(self, in_channels, out_channels, rng, quant):
        super().__init__()
        self.depthwise = Conv2d(
            in_channels, in_channels, 3, padding=1, groups=in_channels, rng=rng, quant=quant
        )
        self.pointwise = Conv2d(in_channels, out_channels, 1, rng=rng, quant=quant)

    def forward(self, x):
        return self.pointwise(self.depthwise(x).relu()).relu()


class TinyMobileNet(Module):
    """Stack of depthwise-separable blocks — deliberately quantization-
    fragile like its namesake (depthwise convs have tiny reduction dims)."""

    def __init__(
        self,
        num_classes: int = 8,
        channels: int = 8,
        blocks: int = 2,
        in_channels: int = 1,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.stem = Conv2d(in_channels, channels, 3, padding=1, rng=rng, quant=quant)
        self.blocks = [_SeparableBlock(channels, channels, rng, quant) for _ in range(blocks)]
        self.head = Linear(channels, num_classes, rng=rng, quant=quant)

    def forward(self, images: np.ndarray | Tensor) -> Tensor:
        x = images if isinstance(images, Tensor) else Tensor(images)
        x = self.stem(x).relu()
        x = avg_pool2d(x, 2)
        for block in self.blocks:
            x = block(x)
        x = x.mean(axis=(2, 3))
        return self.head(x)

    def loss(self, batch) -> Tensor:
        images, labels = batch
        return F.cross_entropy(self.forward(images), labels)


class TinyViT(Module):
    """Patchify -> transformer encoder -> mean-pool head (DeiT stand-in)."""

    def __init__(
        self,
        num_classes: int = 8,
        image_size: int = 16,
        patch_size: int = 4,
        dim: int = 32,
        num_layers: int = 2,
        num_heads: int = 4,
        in_channels: int = 1,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        if image_size % patch_size:
            raise ValueError("image size must be divisible by patch size")
        rng = rng or np.random.default_rng()
        self.patch_size = patch_size
        self.num_patches = (image_size // patch_size) ** 2
        patch_dim = in_channels * patch_size * patch_size
        self.patch_embed = Linear(patch_dim, dim, rng=rng, quant=quant)
        self.positions = sinusoidal_positions(self.num_patches, dim)
        self.blocks = [
            TransformerBlock(dim, num_heads, rng=rng, quant=quant)
            for _ in range(num_layers)
        ]
        self.ln_f = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng, quant=quant)

    def _patchify(self, images: Tensor) -> Tensor:
        b, c, h, w = images.shape
        p = self.patch_size
        x = images.reshape(b, c, h // p, p, w // p, p)
        x = x.transpose(0, 2, 4, 1, 3, 5)
        return x.reshape(b, self.num_patches, c * p * p)

    def forward(self, images: np.ndarray | Tensor) -> Tensor:
        x = images if isinstance(images, Tensor) else Tensor(images)
        x = self.patch_embed(self._patchify(x)) + Tensor(self.positions)
        for block in self.blocks:
            x = block(x)
        return self.head(self.ln_f(x).mean(axis=1))

    def loss(self, batch) -> Tensor:
        images, labels = batch
        return F.cross_entropy(self.forward(images), labels)


def classification_accuracy(model: Module, batches) -> float:
    """Top-1 accuracy (percent) of any of the vision models.

    Predictions run through the family's serving adapter
    (:class:`~repro.serve.adapters.VisionAdapter`), the same code path
    the micro-batched serving session uses.
    """
    from ..serve.adapters import adapter_for

    adapter = adapter_for(model)
    correct = 0
    total = 0
    with no_grad():
        for images, labels in batches:
            predictions = adapter.classify([{"images": np.asarray(images)}])[0]["label"]
            correct += int(np.sum(predictions == labels))
            total += len(labels)
    if total == 0:
        raise ValueError("empty evaluation set")
    return 100.0 * correct / total
