"""Denoising diffusion probabilistic model on 2-D mixtures (DDPM stand-in).

Covers the Table III "Denoising Diffusion" rows: a conditioned and an
unconditioned DDPM, evaluated by Frechet distance (FID) and a classifier
inception-score proxy.  Per Section V, the *vector operations in the
diffusion loop* stay in FP32 — only the MLP matmuls quantize.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear, Module
from ..nn.losses import mse_loss
from ..nn.quantized import QuantSpec
from ..nn.tensor import Tensor, no_grad

__all__ = ["DDPM2D", "time_embedding"]


def time_embedding(t: np.ndarray, dim: int, max_steps: int) -> np.ndarray:
    """Sinusoidal timestep embedding (n, dim)."""
    t = np.asarray(t, dtype=np.float64)[:, None] / max_steps
    freqs = np.exp(np.linspace(0.0, np.log(100.0), dim // 2))[None, :]
    return np.concatenate([np.sin(t * freqs * 2 * np.pi), np.cos(t * freqs * 2 * np.pi)], axis=1)


class DDPM2D(Module):
    """DDPM with an MLP epsilon-predictor over 2-D samples.

    Args:
        num_classes: >0 enables class conditioning (the "Conditioned DDPM"
            row); 0 builds the unconditional variant.
        steps: diffusion steps (paper uses 4000; scaled down with the data).
    """

    def __init__(
        self,
        num_classes: int = 0,
        steps: int = 60,
        hidden: int = 64,
        time_dim: int = 16,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_classes = num_classes
        self.steps = steps
        self.time_dim = time_dim
        betas = np.linspace(1e-4, 0.05, steps)
        self.betas = betas
        self.alphas = 1.0 - betas
        self.alpha_bar = np.cumprod(self.alphas)

        in_dim = 2 + time_dim + (num_classes if num_classes else 0)
        self.fc1 = Linear(in_dim, hidden, rng=rng, quant=quant)
        self.fc2 = Linear(hidden, hidden, rng=rng, quant=quant)
        self.fc3 = Linear(hidden, 2, rng=rng, quant=quant)
        self._rng = rng

    def _features(self, x: np.ndarray, t: np.ndarray, labels: np.ndarray | None) -> np.ndarray:
        parts = [x, time_embedding(t, self.time_dim, self.steps)]
        if self.num_classes:
            if labels is None:
                raise ValueError("conditioned model requires labels")
            parts.append(F.one_hot(labels, self.num_classes))
        return np.concatenate(parts, axis=1)

    def predict_noise(self, x: np.ndarray, t: np.ndarray, labels: np.ndarray | None) -> Tensor:
        """Predicted epsilon; graph-capable (used by training, the sampling
        loop, and the serving adapter's batched ``denoise`` task)."""
        h = Tensor(self._features(x, t, labels))
        h = F.gelu(self.fc1(h))
        h = F.gelu(self.fc2(h))
        return self.fc3(h)

    def loss(self, batch) -> Tensor:
        """Simple DDPM objective: MSE between true and predicted noise."""
        points, labels = batch
        labels = labels if self.num_classes else None
        n = points.shape[0]
        t = self._rng.integers(self.steps, size=n)
        eps = self._rng.normal(size=points.shape)
        ab = self.alpha_bar[t][:, None]
        noisy = np.sqrt(ab) * points + np.sqrt(1.0 - ab) * eps
        predicted = self.predict_noise(noisy, t, labels)
        return mse_loss(predicted, eps)

    def sample(
        self, n: int, rng: np.random.Generator, labels: np.ndarray | None = None
    ) -> np.ndarray:
        """Ancestral sampling; the loop arithmetic stays FP32 (Section V)."""
        if self.num_classes and labels is None:
            labels = rng.integers(self.num_classes, size=n)
        x = rng.normal(size=(n, 2))
        with no_grad():
            for step in reversed(range(self.steps)):
                t = np.full(n, step)
                eps_hat = self.predict_noise(x, t, labels).data
                alpha = self.alphas[step]
                ab = self.alpha_bar[step]
                mean = (x - (1 - alpha) / np.sqrt(1 - ab) * eps_hat) / np.sqrt(alpha)
                if step > 0:
                    x = mean + np.sqrt(self.betas[step]) * rng.normal(size=x.shape)
                else:
                    x = mean
        return x
