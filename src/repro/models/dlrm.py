"""Recommendation models for the Table III / Table VI rows.

Three interaction architectures, mirroring the paper's production models:

* ``"dot"``         — canonical DLRM pairwise dot interactions (PR-rec1).
* ``"transformer"`` — transformer encoder over feature tokens (PR-rec2).
* ``"dhen"``        — a hierarchical ensemble of dot and MLP interaction
  branches (DHEN-flavoured, PR-rec3).

Embedding tables support storage quantization (Section V quantizes both the
embedding tables and the tensor compute for memory-bound inference).
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Embedding, Linear, Module, Sequential, ReLU
from ..nn.losses import bce_with_logits
from ..nn.quantized import QuantSpec
from ..nn.tensor import Tensor, concat, no_grad, stack
from ..nn.transformer import TransformerBlock

__all__ = ["DLRM", "evaluate_ctr"]

INTERACTIONS = ("dot", "transformer", "dhen")


class DLRM(Module):
    def __init__(
        self,
        dense_dim: int = 8,
        cardinalities: tuple[int, ...] = (32, 32, 16, 16),
        embedding_dim: int = 8,
        hidden: int = 32,
        interaction: str = "dot",
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        if interaction not in INTERACTIONS:
            raise ValueError(f"interaction must be one of {INTERACTIONS}")
        rng = rng or np.random.default_rng()
        self.interaction = interaction
        self.embedding_dim = embedding_dim
        self.num_features = len(cardinalities) + 1  # categorical + dense token

        self.embeddings = [
            Embedding(card, embedding_dim, rng=rng) for card in cardinalities
        ]
        self.bottom = Sequential(
            Linear(dense_dim, hidden, rng=rng, quant=quant),
            ReLU(),
            Linear(hidden, embedding_dim, rng=rng, quant=quant),
        )

        n_pairs = self.num_features * (self.num_features - 1) // 2
        if interaction == "dot":
            top_in = embedding_dim + n_pairs
        elif interaction == "transformer":
            self.encoder = TransformerBlock(embedding_dim, 2, rng=rng, quant=quant)
            top_in = self.num_features * embedding_dim
        else:  # dhen: ensemble of a dot branch and an MLP branch
            self.dhen_mlp = Sequential(
                Linear(self.num_features * embedding_dim, hidden, rng=rng, quant=quant),
                ReLU(),
                Linear(hidden, embedding_dim, rng=rng, quant=quant),
            )
            top_in = embedding_dim + n_pairs + embedding_dim
        self.top = Sequential(
            Linear(top_in, hidden, rng=rng, quant=quant),
            ReLU(),
            Linear(hidden, 1, rng=rng, quant=quant),
        )

    # ------------------------------------------------------------------
    def _feature_tokens(self, dense: np.ndarray, cats: np.ndarray) -> tuple[Tensor, Tensor]:
        """(bottom_out (B, D), tokens (B, F, D)) shared by all interactions."""
        bottom_out = self.bottom(Tensor(np.asarray(dense)))
        vectors = [bottom_out] + [
            emb(np.asarray(cats)[:, i]) for i, emb in enumerate(self.embeddings)
        ]
        return bottom_out, stack(vectors, axis=1)

    @staticmethod
    def _pairwise_dots(tokens: Tensor) -> Tensor:
        """Upper-triangular pairwise dot products between feature tokens."""
        gram = tokens @ tokens.transpose(0, 2, 1)  # (B, F, F)
        f = gram.shape[1]
        rows, cols = np.triu_indices(f, k=1)
        flat = gram.reshape(gram.shape[0], f * f)
        return flat[:, rows * f + cols]

    def forward(self, dense: np.ndarray, cats: np.ndarray) -> Tensor:
        """CTR logit (B,)."""
        bottom_out, tokens = self._feature_tokens(dense, cats)
        if self.interaction == "dot":
            features = concat([bottom_out, self._pairwise_dots(tokens)], axis=-1)
        elif self.interaction == "transformer":
            encoded = self.encoder(tokens)
            features = encoded.reshape(encoded.shape[0], -1)
        else:
            flat = tokens.reshape(tokens.shape[0], -1)
            features = concat(
                [bottom_out, self._pairwise_dots(tokens), self.dhen_mlp(flat)], axis=-1
            )
        return self.top(features).reshape(-1)

    def loss(self, batch) -> Tensor:
        dense, cats, labels = batch
        return bce_with_logits(self.forward(dense, cats), labels)

    def predict_proba(self, dense: np.ndarray, cats: np.ndarray) -> np.ndarray:
        """Click probabilities, via the serving adapter
        (:class:`~repro.serve.adapters.CTRAdapter`)."""
        from ..serve.adapters import adapter_for

        with no_grad():
            return adapter_for(self).predict_proba(
                np.asarray(dense, dtype=np.float64), np.asarray(cats)
            )

    def quantize_embeddings(self, fmt) -> None:
        """Storage-quantize every embedding table (Section V optimization)."""
        for emb in self.embeddings:
            emb.storage_quant = fmt


def evaluate_ctr(model: DLRM, batches) -> tuple[float, float]:
    """(AUC, normalized entropy) over CTR batches."""
    from ..metrics.auc import auc, normalized_entropy

    labels_all, probs_all = [], []
    for dense, cats, labels in batches:
        probs_all.append(model.predict_proba(dense, cats))
        labels_all.append(labels)
    labels = np.concatenate(labels_all)
    probs = np.concatenate(probs_all)
    return auc(labels, probs), normalized_entropy(labels, probs)
