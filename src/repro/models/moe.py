"""Mixture-of-Experts generative model (the DeepSpeed-MoE stand-in).

The paper trains a 1.9B MoE with MX9 (Table VII) and notes one precision
exception: "the Softmax in the mixture-of-experts gating function" runs in
FP32 rather than BF16 (Section V).  The gating softmax here is therefore
always kept in full vector precision.

Routing substitution: the reference model uses sparse top-1 routing; with
a handful of laptop-scale experts we use the dense softmax-weighted mixture
(every expert evaluated, gate-weighted sum), which preserves the numerical
role of the gate while staying differentiable end to end.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.attention import MultiHeadAttention, causal_mask
from ..nn.layers import Embedding, LayerNorm, Linear, Module
from ..nn.quantized import QuantSpec
from ..nn.tensor import Tensor, no_grad
from ..nn.transformer import sinusoidal_positions
from .gpt import GPTConfig

__all__ = ["MoEFeedForward", "MoEGPT"]


class MoEFeedForward(Module):
    """Dense softmax-gated mixture of GELU-MLP experts."""

    def __init__(
        self,
        dim: int,
        num_experts: int = 4,
        hidden: int | None = None,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        hidden = hidden or 4 * dim
        rng = rng or np.random.default_rng()
        self.gate = Linear(dim, num_experts, rng=rng, quant=quant)
        self.experts_fc1 = [Linear(dim, hidden, rng=rng, quant=quant) for _ in range(num_experts)]
        self.experts_fc2 = [Linear(hidden, dim, rng=rng, quant=quant) for _ in range(num_experts)]

    def forward(self, x: Tensor) -> Tensor:
        # gating softmax stays FP32 (the paper's explicit exception)
        weights = F.softmax(self.gate(x), axis=-1)
        out = None
        for i, (fc1, fc2) in enumerate(zip(self.experts_fc1, self.experts_fc2)):
            expert_out = fc2(F.gelu(fc1(x)))
            gated = expert_out * weights[:, :, i : i + 1]
            out = gated if out is None else out + gated
        return out


class _MoEBlock(Module):
    def __init__(self, dim, num_heads, num_experts, rng, quant):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng=rng, quant=quant)
        self.ln2 = LayerNorm(dim)
        self.moe = MoEFeedForward(dim, num_experts, rng=rng, quant=quant)

    def forward(self, x, mask=None, cache=None):
        x = x + self.attn(self.ln1(x), mask=mask, cache=cache)
        return x + self.moe(self.ln2(x))


class MoEGPT(Module):
    """Causal LM with MoE feed-forward blocks."""

    def __init__(
        self,
        vocab_size: int,
        config: GPTConfig,
        num_experts: int = 4,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.config = config
        self.token_emb = Embedding(vocab_size, config.dim, rng=rng)
        self.positions = sinusoidal_positions(config.max_len, config.dim)
        self.blocks = [
            _MoEBlock(config.dim, config.num_heads, num_experts, rng, quant)
            for _ in range(config.num_layers)
        ]
        self.ln_f = LayerNorm(config.dim)
        self.head = Linear(config.dim, vocab_size, rng=rng, quant=quant)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        t = tokens.shape[-1]
        x = self.token_emb(tokens) + Tensor(self.positions[:t])
        mask = causal_mask(t)
        for block in self.blocks:
            x = block(x, mask=mask)
        return self.head(self.ln_f(x))

    def loss(self, batch: np.ndarray) -> Tensor:
        batch = np.asarray(batch)
        logits = self.forward(batch[:, :-1])
        return F.cross_entropy(logits, batch[:, 1:])

    def eval_loss(self, batches) -> float:
        losses = []
        with no_grad():
            for batch in batches:
                losses.append(float(self.loss(batch).data))
        return float(np.mean(losses))

    def sequence_logprob(self, context: np.ndarray, continuation: np.ndarray) -> float:
        """Total log-probability of ``continuation`` given ``context``
        (served through the shared causal-LM adapter, like :class:`GPT`)."""
        from ..serve.adapters import adapter_for

        return adapter_for(self).sequence_logprob(context, continuation)

    def generate(self, prompt: np.ndarray, max_new_tokens: int = 16, eos: int | None = None):
        """Greedy continuation of ``prompt`` (list of generated token ids)."""
        from ..serve.adapters import adapter_for

        return list(adapter_for(self).generate_stream(prompt, max_new_tokens, eos=eos))

    # ------------------------------------------------------------------
    # Incremental decoding (shared with GPT via the causal decode helpers)
    # ------------------------------------------------------------------
    def init_decode_state(self, batch: int = 1):
        """Fresh per-layer KV caches for :meth:`forward_step`."""
        from ..nn.decode import init_causal_decode_state

        return init_causal_decode_state(self, batch)

    def forward_step(self, tokens: np.ndarray, state) -> Tensor:
        """Cached next-token logits over the current window (see :class:`GPT`)."""
        from ..nn.decode import causal_decode_step

        return causal_decode_step(self, tokens, state)
