"""Mixture-of-Experts generative model (the DeepSpeed-MoE stand-in).

The paper trains a 1.9B MoE with MX9 (Table VII) and notes one precision
exception: "the Softmax in the mixture-of-experts gating function" runs in
FP32 rather than BF16 (Section V).  The gating softmax here is therefore
always kept in full vector precision.

Routing substitution: the reference model uses sparse top-1 routing; with
a handful of laptop-scale experts we use the dense softmax-weighted mixture
(every expert evaluated, gate-weighted sum), which preserves the numerical
role of the gate while staying differentiable end to end.
"""

from __future__ import annotations

import numpy as np

from ..kernels.registry import get_backend
from ..nn import functional as F
from ..nn.attention import MultiHeadAttention, causal_mask
from ..nn.layers import Embedding, LayerNorm, Linear, Module
from ..nn.precision import VectorPrecision
from ..nn.quantized import QuantSpec, memo_quantize
from ..nn.residency import (
    FusedWeightCache,
    acquire,
    supports_epilogue,
    supports_fused_projection,
)
from ..nn.tensor import Tensor, no_grad
from ..nn.transformer import sinusoidal_positions
from .gpt import GPTConfig

__all__ = ["MoEFeedForward", "MoEGPT"]


class MoEFeedForward(Module):
    """Dense softmax-gated mixture of GELU-MLP experts.

    At inference the expert ``fc1`` layers all consume the same block
    input: the router input is quantized **once** (the resident payload is
    shared by the gate and every expert), and when the installed formats
    make concatenated products exact (see
    :func:`~repro.nn.residency.supports_fused_projection`) the expert
    up-projections fuse into a single ``x_q @ [W_1 | ... | W_E]`` matmul
    with a ``bias_gelu`` kernel epilogue — bit-identical to the
    per-expert loop, which training always uses.
    """

    def __init__(
        self,
        dim: int,
        num_experts: int = 4,
        hidden: int | None = None,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        hidden = hidden or 4 * dim
        rng = rng or np.random.default_rng()
        self.gate = Linear(dim, num_experts, rng=rng, quant=quant)
        self.experts_fc1 = [Linear(dim, hidden, rng=rng, quant=quant) for _ in range(num_experts)]
        self.experts_fc2 = [Linear(hidden, dim, rng=rng, quant=quant) for _ in range(num_experts)]
        self._fused_fc1 = FusedWeightCache()

    def _can_fuse_experts(self) -> bool:
        spec = self.experts_fc1[0].quant
        if not all(
            fc1.quant is spec and fc2.quant is spec
            for fc1, fc2 in zip(self.experts_fc1, self.experts_fc2)
        ):
            return False  # a per-layer policy split the experts apart
        # the fused path concatenates projections AND runs kernel
        # epilogues (bias_gelu, the in-place mixture), so both stages
        # must be enabled for the toggles to isolate what they claim
        if not (supports_fused_projection(spec) and supports_epilogue(spec)):
            return False
        return all(
            layer.bias is not None and layer.vector_precision == VectorPrecision.FP32
            for layer in (*self.experts_fc1, *self.experts_fc2)
        )

    def forward(self, x: Tensor) -> Tensor:
        # gating softmax stays FP32 (the paper's explicit exception); the
        # gate's product also makes x's quantized payload resident, so the
        # experts below reuse it instead of requantizing
        weights = F.softmax(self.gate(x), axis=-1)
        if self._can_fuse_experts():
            return self._forward_fused(x, weights)
        out = None
        for i, (fc1, fc2) in enumerate(zip(self.experts_fc1, self.experts_fc2)):
            expert_out = fc2(F.gelu(fc1(x)))
            gated = expert_out * weights[:, :, i : i + 1]
            out = gated if out is None else out + gated
        return out

    def _forward_fused(self, x: Tensor, weights: Tensor) -> Tensor:
        """One concatenated up-projection for every expert (inference).

        The whole mixture runs on raw arrays: one ``bias_gelu`` epilogue
        produces every expert's hidden block, each down-projection
        consumes its slice through the fused-bias kernel (per-expert
        quantizes keep the kernel's working set cache-sized — faster than
        one ``(…, E*hidden)`` call despite the extra engine entries, and
        bit-identical either way), and the gate weighting/accumulation
        run as in-place ufuncs replaying the Tensor chain exactly.
        """
        spec = self.experts_fc1[0].quant
        backend = get_backend()
        w_cat, b_cat = self._fused_fc1.payload(self.experts_fc1, spec)
        payload = acquire(x, spec.activation, -1, rounding=spec.rounding, rng=spec.rng)
        hidden_all = backend.matmul_epilogue(payload.data, w_cat, "bias_gelu", b_cat)
        hidden = self.experts_fc1[0].out_features
        gates = weights.data
        out = None
        for i, fc2 in enumerate(self.experts_fc2):
            h_i = hidden_all[..., i * hidden : (i + 1) * hidden]
            a_q = spec.activation.quantize(
                h_i, axis=-1, rounding=spec.rounding, rng=spec.rng
            )
            w_q = memo_quantize(
                fc2.weight, spec.weight, 0, rounding=spec.rounding, rng=spec.rng
            )
            expert_out = backend.matmul_epilogue(a_q, w_q, "bias", fc2.bias.data)
            expert_out *= gates[:, :, i : i + 1]
            if out is None:
                out = expert_out
            else:
                out += expert_out
        return Tensor(out)


class _MoEBlock(Module):
    def __init__(self, dim, num_heads, num_experts, rng, quant):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng=rng, quant=quant)
        self.ln2 = LayerNorm(dim)
        self.moe = MoEFeedForward(dim, num_experts, rng=rng, quant=quant)

    def forward(self, x, mask=None, cache=None):
        x = x + self.attn(self.ln1(x), mask=mask, cache=cache)
        return x + self.moe(self.ln2(x))


class MoEGPT(Module):
    """Causal LM with MoE feed-forward blocks."""

    def __init__(
        self,
        vocab_size: int,
        config: GPTConfig,
        num_experts: int = 4,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.config = config
        self.token_emb = Embedding(vocab_size, config.dim, rng=rng)
        self.positions = sinusoidal_positions(config.max_len, config.dim)
        self.blocks = [
            _MoEBlock(config.dim, config.num_heads, num_experts, rng, quant)
            for _ in range(config.num_layers)
        ]
        self.ln_f = LayerNorm(config.dim)
        self.head = Linear(config.dim, vocab_size, rng=rng, quant=quant)

    def _trunk(self, tokens: np.ndarray) -> Tensor:
        """Final-block hidden states (B, T, D) for a token batch."""
        tokens = np.asarray(tokens)
        t = tokens.shape[-1]
        x = self.token_emb(tokens) + Tensor(self.positions[:t])
        mask = causal_mask(t)
        for block in self.blocks:
            x = block(x, mask=mask)
        return x

    def forward(self, tokens: np.ndarray) -> Tensor:
        return self.head(self.ln_f(self._trunk(tokens)))

    def forward_rows(self, tokens: np.ndarray, batch_idx, row_idx) -> Tensor:
        """Logits only at selected positions (see :meth:`GPT.forward_rows`)."""
        x = self._trunk(tokens)
        picked = Tensor(x.data[np.asarray(batch_idx), np.asarray(row_idx)])
        return self.head(self.ln_f(picked))

    def loss(self, batch: np.ndarray) -> Tensor:
        batch = np.asarray(batch)
        logits = self.forward(batch[:, :-1])
        return F.cross_entropy(logits, batch[:, 1:])

    def eval_loss(self, batches) -> float:
        losses = []
        with no_grad():
            for batch in batches:
                losses.append(float(self.loss(batch).data))
        return float(np.mean(losses))

    def sequence_logprob(self, context: np.ndarray, continuation: np.ndarray) -> float:
        """Total log-probability of ``continuation`` given ``context``
        (served through the shared causal-LM adapter, like :class:`GPT`)."""
        from ..serve.adapters import adapter_for

        return adapter_for(self).sequence_logprob(context, continuation)

    def generate(self, prompt: np.ndarray, max_new_tokens: int = 16, eos: int | None = None):
        """Greedy continuation of ``prompt`` (list of generated token ids)."""
        from ..serve.adapters import adapter_for

        return list(adapter_for(self).generate_stream(prompt, max_new_tokens, eos=eos))

    # ------------------------------------------------------------------
    # Incremental decoding (shared with GPT via the causal decode helpers)
    # ------------------------------------------------------------------
    def init_decode_state(self, batch: int = 1):
        """Fresh per-layer KV caches for :meth:`forward_step`."""
        from ..nn.decode import init_causal_decode_state

        return init_causal_decode_state(self, batch)

    def forward_step(self, tokens: np.ndarray, state) -> Tensor:
        """Cached next-token logits over the current window (see :class:`GPT`)."""
        from ..nn.decode import causal_decode_step

        return causal_decode_step(self, tokens, state)
