"""Encoder-only model with MLM and span-extraction heads (BERT stand-in).

Covers the Table III "Language Encoding" rows (masked perplexity) and the
Table V SQuAD-style question answering rows (Exact Match / F1 on the
key-value :class:`~repro.data.synthetic.QACorpus`).
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Embedding, LayerNorm, Linear, Module
from ..nn.quantized import QuantSpec
from ..nn.tensor import Tensor, no_grad
from ..nn.transformer import TransformerBlock, sinusoidal_positions

__all__ = ["BertEncoder", "BertQA"]


class BertEncoder(Module):
    """Bidirectional transformer encoder with an MLM head."""

    def __init__(
        self,
        vocab_size: int,
        dim: int = 32,
        num_layers: int = 2,
        num_heads: int = 4,
        max_len: int = 64,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.token_emb = Embedding(vocab_size, dim, rng=rng)
        self.positions = sinusoidal_positions(max_len, dim)
        self.blocks = [
            TransformerBlock(dim, num_heads, rng=rng, quant=quant)
            for _ in range(num_layers)
        ]
        self.ln_f = LayerNorm(dim)
        self.mlm_head = Linear(dim, vocab_size, rng=rng, quant=quant)

    def encode(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        t = tokens.shape[-1]
        x = self.token_emb(tokens) + Tensor(self.positions[:t])
        for block in self.blocks:
            x = block(x)
        return self.ln_f(x)

    def forward(self, tokens: np.ndarray) -> Tensor:
        return self.mlm_head(self.encode(tokens))

    def loss(self, batch) -> Tensor:
        """Masked-LM loss over (corrupted, original, mask) batches."""
        corrupted, original, mask = batch
        logits = self.forward(corrupted)
        targets = np.where(mask, original, -1)
        return F.cross_entropy(logits, targets, ignore_index=-1)

    def masked_perplexity(self, batches) -> float:
        """Perplexity over masked positions (the Table III metric)."""
        losses = []
        with no_grad():
            for batch in batches:
                losses.append(float(self.loss(batch).data))
        return float(np.exp(np.mean(losses)))

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Mean-pooled sentence embeddings, via the serving adapter."""
        from ..serve.adapters import adapter_for

        with no_grad():
            return adapter_for(self).embed([{"tokens": tokens}])[0]


class BertQA(Module):
    """Encoder + span head: start/end logits over passage positions."""

    def __init__(
        self,
        vocab_size: int,
        dim: int = 32,
        num_layers: int = 2,
        num_heads: int = 4,
        max_len: int = 64,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.encoder = BertEncoder(
            vocab_size, dim, num_layers, num_heads, max_len, rng=rng, quant=quant
        )
        self.span_head = Linear(dim, 2, rng=rng, quant=quant)

    def forward(self, tokens: np.ndarray) -> tuple[Tensor, Tensor]:
        """(start_logits, end_logits), each (B, T)."""
        hidden = self.encoder.encode(tokens)
        logits = self.span_head(hidden)
        b, t, _ = logits.shape
        flat = logits.reshape(b, t * 2)
        start = flat[:, 0::2]
        end = flat[:, 1::2]
        return start, end

    def loss(self, batch) -> Tensor:
        tokens, starts, ends = batch
        start_logits, end_logits = self.forward(tokens)
        return F.cross_entropy(start_logits, starts) + F.cross_entropy(end_logits, ends)

    def predict_spans(self, tokens: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Greedy (start, end) predictions per example.

        Delegates to :class:`~repro.serve.adapters.BertSpanAdapter`, the
        same code path the micro-batched serving session uses.
        """
        from ..serve.adapters import adapter_for

        with no_grad():
            return adapter_for(self).predict_spans(np.asarray(tokens))

    def evaluate(self, batches) -> tuple[float, float]:
        """(EM, F1) in percent over span batches."""
        from ..metrics.classification import squad_scores

        gold, predicted = [], []
        for tokens, starts, ends in batches:
            p_start, p_end = self.predict_spans(tokens)
            tokens = np.asarray(tokens)
            for row in range(tokens.shape[0]):
                gold.append(list(tokens[row, starts[row] : ends[row] + 1]))
                predicted.append(list(tokens[row, p_start[row] : p_end[row] + 1]))
        return squad_scores(gold, predicted)
