"""The benchmark model zoo: laptop-scale, architecture-faithful stand-ins
for every model family in the paper's Table III-VII evaluation."""

from .bert import BertEncoder, BertQA
from .diffusion import DDPM2D, time_embedding
from .dlrm import DLRM, evaluate_ctr
from .gpt import GPT, GPT_SIZES, GPTConfig, score_candidates
from .moe import MoEFeedForward, MoEGPT
from .speech import TinyWav2Vec, speech_wer
from .translation import LSTMSeq2Seq, Seq2SeqTransformer, corpus_bleu, greedy_decode
from .vision import TinyMobileNet, TinyResNet, TinyViT, classification_accuracy

__all__ = [
    "BertEncoder",
    "BertQA",
    "DDPM2D",
    "time_embedding",
    "DLRM",
    "evaluate_ctr",
    "GPT",
    "GPT_SIZES",
    "GPTConfig",
    "score_candidates",
    "MoEFeedForward",
    "MoEGPT",
    "TinyWav2Vec",
    "speech_wer",
    "LSTMSeq2Seq",
    "Seq2SeqTransformer",
    "corpus_bleu",
    "greedy_decode",
    "TinyMobileNet",
    "TinyResNet",
    "TinyViT",
    "classification_accuracy",
]
