"""Decoder-only generative language models (the GPT family stand-in).

The paper trains dense GPTs from 6M to 175B parameters; this ladder keeps
the architecture (pre-norm causal transformer, learned token embeddings,
sinusoidal positions, weight-tied-free LM head) at laptop scale.  Names
follow Table VII; parameter counts are of course far smaller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import functional as F
from ..nn.attention import causal_mask
from ..nn.layers import Embedding, LayerNorm, Linear, Module
from ..nn.quantized import QuantSpec
from ..nn.tensor import Tensor, no_grad
from ..nn.transformer import TransformerBlock, sinusoidal_positions

__all__ = ["GPTConfig", "GPT", "GPT_SIZES", "score_candidates"]


@dataclass(frozen=True)
class GPTConfig:
    """Architecture of one ladder member."""

    dim: int
    num_layers: int
    num_heads: int
    max_len: int = 96
    hidden_multiple: int = 4


#: The Table VII ladder, scaled to laptop size (names kept for row mapping).
GPT_SIZES: dict[str, GPTConfig] = {
    "GPT-XS": GPTConfig(dim=16, num_layers=1, num_heads=2),
    "GPT-S": GPTConfig(dim=24, num_layers=2, num_heads=2),
    "GPT-M": GPTConfig(dim=32, num_layers=2, num_heads=4),
    "GPT-L": GPTConfig(dim=48, num_layers=3, num_heads=4),
    "GPT-XL": GPTConfig(dim=64, num_layers=4, num_heads=4),
}


class GPT(Module):
    """Causal transformer language model over integer token sequences."""

    def __init__(
        self,
        vocab_size: int,
        config: GPTConfig,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.config = config
        self.token_emb = Embedding(vocab_size, config.dim, rng=rng)
        self.positions = sinusoidal_positions(config.max_len, config.dim)
        self.blocks = [
            TransformerBlock(
                config.dim,
                config.num_heads,
                hidden=config.hidden_multiple * config.dim,
                rng=rng,
                quant=quant,
            )
            for _ in range(config.num_layers)
        ]
        self.ln_f = LayerNorm(config.dim)
        self.head = Linear(config.dim, vocab_size, rng=rng, quant=quant)

    def _trunk(self, tokens: np.ndarray) -> Tensor:
        """Final-block hidden states (B, T, D) for a token batch."""
        tokens = np.asarray(tokens)
        t = tokens.shape[-1]
        if t > self.config.max_len:
            raise ValueError(f"sequence length {t} exceeds max_len {self.config.max_len}")
        x = self.token_emb(tokens) + Tensor(self.positions[:t])
        mask = causal_mask(t)
        for block in self.blocks:
            x = block(x, mask=mask)
        return x

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Logits (B, T, V) for next-token prediction."""
        return self.head(self.ln_f(self._trunk(tokens)))

    def forward_rows(self, tokens: np.ndarray, batch_idx, row_idx) -> Tensor:
        """Logits only at the ``(batch_idx[j], row_idx[j])`` positions.

        The serving scorer reads a handful of continuation rows out of the
        full (B, T, V) logit block; this entry point runs the transformer
        trunk as usual, then gathers the requested rows *before* the final
        LayerNorm and LM head, skipping their cost for every unread
        position.  LayerNorm and the head product are row-local, so each
        returned row is bit-identical to the same row of
        ``forward(tokens)`` whenever the head's dot products are exact
        (the :func:`~repro.nn.residency.supports_fused_projection` gate
        callers apply).  Inference-only: the gather detaches the graph.
        """
        x = self._trunk(tokens)
        picked = Tensor(x.data[np.asarray(batch_idx), np.asarray(row_idx)])
        return self.head(self.ln_f(picked))

    # ------------------------------------------------------------------
    # Incremental decoding (the KV-cache serving path)
    # ------------------------------------------------------------------
    def init_decode_state(self, batch: int = 1):
        """Fresh per-layer KV caches for :meth:`forward_step`."""
        from ..nn.decode import init_causal_decode_state

        return init_causal_decode_state(self, batch)

    def forward_step(self, tokens: np.ndarray, state) -> Tensor:
        """Cached next-token logits over the current window ``tokens`` (B, T).

        Re-runs only the open-block suffix against the state's frozen
        quantized K/V payloads; ``logits[:, -1]`` is bit-identical to
        ``forward(tokens)[:, -1]`` for models passing
        :func:`~repro.nn.decode.supports_cached_decode` (inference only).
        """
        from ..nn.decode import causal_decode_step

        return causal_decode_step(self, tokens, state)

    def loss(self, batch: np.ndarray) -> Tensor:
        """Next-token cross entropy over a (B, T+1) token batch."""
        batch = np.asarray(batch)
        logits = self.forward(batch[:, :-1])
        return F.cross_entropy(logits, batch[:, 1:])

    def eval_loss(self, batches) -> float:
        """Mean LM loss over held-out batches (no gradients)."""
        losses = []
        with no_grad():
            for batch in batches:
                losses.append(float(self.loss(batch).data))
        return float(np.mean(losses))

    def sequence_logprob(self, context: np.ndarray, continuation: np.ndarray) -> float:
        """Total log-probability of ``continuation`` given ``context``.

        Delegates to the family's serving adapter
        (:class:`~repro.serve.adapters.CausalLMAdapter`), which owns the
        scoring computation for both this method and the batched
        :mod:`repro.serve` session path.
        """
        from ..serve.adapters import adapter_for

        return adapter_for(self).sequence_logprob(context, continuation)

    def generate(self, prompt: np.ndarray, max_new_tokens: int = 16, eos: int | None = None):
        """Greedy continuation of ``prompt`` (list of generated token ids)."""
        from ..serve.adapters import adapter_for

        return list(adapter_for(self).generate_stream(prompt, max_new_tokens, eos=eos))


def score_candidates(model: GPT, context: np.ndarray, candidates) -> int:
    """Likelihood-ranked choice: index of the highest-scoring candidate.

    Delegates to the serving adapter, which scores every candidate in one
    right-padded batch — bit-identical to the historical per-candidate
    loop (the causal mask keeps padded positions out of real ones).
    """
    from ..serve.adapters import adapter_for

    with no_grad():
        result = adapter_for(model).score(
            [{"context": context, "candidates": list(candidates)}]
        )[0]
    return result["choice"]
