"""Speech-recognition stand-in (the wav2vec 2.0 row of Table III).

A frame encoder (the "feature extractor") followed by a transformer
context network and a per-frame phone classifier; word error rate is
computed on CTC-style collapsed frame predictions.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear, Module
from ..nn.quantized import QuantSpec
from ..nn.tensor import Tensor, no_grad
from ..nn.transformer import TransformerBlock, sinusoidal_positions

__all__ = ["TinyWav2Vec", "speech_wer"]


class TinyWav2Vec(Module):
    def __init__(
        self,
        frame_dim: int = 24,
        num_phones: int = 10,
        dim: int = 32,
        num_layers: int = 2,
        num_heads: int = 4,
        max_len: int = 64,
        rng: np.random.Generator | None = None,
        quant: QuantSpec | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.feature_extractor = Linear(frame_dim, dim, rng=rng, quant=quant)
        self.positions = sinusoidal_positions(max_len, dim)
        self.context = [
            TransformerBlock(dim, num_heads, rng=rng, quant=quant)
            for _ in range(num_layers)
        ]
        self.classifier = Linear(dim, num_phones, rng=rng, quant=quant)

    def forward(self, frames: np.ndarray) -> Tensor:
        frames = np.asarray(frames)
        x = F.gelu(self.feature_extractor(Tensor(frames)))
        x = x + Tensor(self.positions[: frames.shape[1]])
        for block in self.context:
            x = block(x)
        return self.classifier(x)

    def loss(self, batch) -> Tensor:
        frames, labels = batch
        return F.cross_entropy(self.forward(frames), labels)

    def transcribe(self, frames: np.ndarray) -> list[list[int]]:
        """Greedy per-frame decode with repeat collapse, via the serving
        adapter (:class:`~repro.serve.adapters.SpeechAdapter`)."""
        from ..serve.adapters import adapter_for

        with no_grad():
            return adapter_for(self).transcribe(np.asarray(frames))


def speech_wer(model: TinyWav2Vec, batches) -> float:
    """Corpus WER (percent) over (frames, labels) batches."""
    from ..metrics.wer import collapse_repeats, wer

    references, hypotheses = [], []
    for frames, labels in batches:
        hypotheses.extend(model.transcribe(frames))
        references.extend(collapse_repeats(row) for row in labels)
    return wer(references, hypotheses)
