"""The paper's primary contribution: BDR configs, two-level quantization,
the MX formats, and the Theorem 1 fidelity bound."""

from .bdr import BDRConfig
from .mx import MX4, MX6, MX9, MX_FORMATS, mx_quantize
from .quantize import QuantizeResult, bdr_quantize, bdr_quantize_detailed
from .rounding import ROUNDING_MODES, apply_rounding
from .scaling import DelayedScaler, floor_log2, shared_exponent
from .sparsity import apply_nm_sparsity, density, nm_sparsity_mask, sparse_quantize
from .theorem import qsnr_lower_bound, qsnr_lower_bound_params

__all__ = [
    "BDRConfig",
    "MX4",
    "MX6",
    "MX9",
    "MX_FORMATS",
    "mx_quantize",
    "QuantizeResult",
    "bdr_quantize",
    "bdr_quantize_detailed",
    "ROUNDING_MODES",
    "apply_rounding",
    "DelayedScaler",
    "floor_log2",
    "shared_exponent",
    "qsnr_lower_bound",
    "qsnr_lower_bound_params",
    "apply_nm_sparsity",
    "density",
    "nm_sparsity_mask",
    "sparse_quantize",
]
