"""Scale-factor selection strategies.

Three strategies appear in the paper's evaluation (Figure 7 caption):

* hardware power-of-two scaling from the current block maximum (BFP / MX),
* software FP32 scaling from the current tensor maximum (the "just-in-time"
  variant used for static weights), and
* *delayed scaling* per NVIDIA's Transformer Engine [40]: the FP32 scale is
  derived from the maximum absolute value over a window of previously
  observed tensors, which is how dynamic activations and gradients are
  scaled during training.
"""

from __future__ import annotations

from collections import deque

import numpy as np

#: Guard against log2(0); any magnitude below this is treated as zero.
_TINY = np.finfo(np.float64).tiny


def floor_log2(x: np.ndarray) -> np.ndarray:
    """Exact ``floor(log2(|x|))`` for positive inputs via frexp.

    ``frexp`` returns ``x = mant * 2**exp`` with ``mant in [0.5, 1)``, so the
    floor of the base-2 logarithm is ``exp - 1``.  Zeros map to the most
    negative representable exponent so they never win a shared-exponent max.
    """
    x = np.abs(np.asarray(x, dtype=np.float64))
    mant, exp = np.frexp(x)
    del mant
    exp = exp.astype(np.int64) - 1
    return np.where(x < _TINY, np.int64(-(2**30)), exp)


def shared_exponent(x: np.ndarray, axis: int = -1, d1: int = 8) -> np.ndarray:
    """Per-block shared exponent: ``floor(log2(max |x|))`` along ``axis``.

    The result is clamped to the ``d1``-bit biased exponent range
    ``[1 - 2^(d1-1), 2^(d1-1)]`` so that an 8-bit shared exponent behaves
    like FP32's exponent field.  All-zero blocks clamp to the bottom of the
    range; their elements quantize to zero under any scale.
    """
    amax = np.max(np.abs(x), axis=axis)
    exp = floor_log2(amax)
    lo, hi = exponent_range(d1)
    return np.clip(exp, lo, hi)


def exponent_range(d1: int) -> tuple[int, int]:
    """Representable exponent interval for a ``d1``-bit biased field."""
    half = 1 << (d1 - 1)
    return 1 - half, half


def amax_scale(amax: np.ndarray, qmax: float) -> np.ndarray:
    """FP32 scale aligning ``amax`` with the largest representable code."""
    amax = np.asarray(amax, dtype=np.float64)
    scale = amax / qmax
    return np.where(amax < _TINY, 1.0, scale)


def pow2_scale(amax: np.ndarray, qmax: float) -> np.ndarray:
    """Power-of-two scale: ``amax / qmax`` rounded up to a power of two.

    Rounding the ideal scale *up* guarantees no clipping, matching the
    ``RoundToPwr2`` step in Figure 1(b).

    Implemented with ``np.frexp`` rather than ``ceil(log2(...))``: the
    float log2 of an exact power of two ``2^-k`` can land at ``-k +/- ulp``,
    and the ceil then yields a scale off by a full factor of two.  ``frexp``
    decomposes ``ideal = mant * 2^exp`` with ``mant in [0.5, 1)`` exactly,
    so ``ceil(log2(ideal))`` is ``exp - 1`` when ``mant == 0.5`` (an exact
    power of two) and ``exp`` otherwise.
    """
    ideal = amax_scale(amax, qmax)
    mant, exp = np.frexp(ideal)
    exp = np.where(mant == 0.5, exp - 1, exp)
    return np.where(np.isfinite(ideal), np.ldexp(1.0, exp), ideal)


class DelayedScaler:
    """Windowed-amax scale estimation per the Transformer Engine recipe [40].

    Keeps the ``window`` most recent per-tensor maxima; the working scale for
    the next tensor is derived from the max of that history.  The first call
    falls back to just-in-time scaling (no history yet).
    """

    def __init__(self, qmax: float, window: int = 16, margin: float = 1.0):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.qmax = float(qmax)
        self.window = window
        #: extra headroom multiplier applied to the historical amax
        self.margin = float(margin)
        self._history: deque[float] = deque(maxlen=window)

    def observe(self, x: np.ndarray) -> None:
        """Record the amax of a freshly seen tensor."""
        self._history.append(float(np.max(np.abs(x), initial=0.0)))

    @property
    def history_amax(self) -> float:
        """Largest amax in the current window (0.0 when empty)."""
        if not self._history:
            return 0.0
        return max(self._history)

    def scale(self, x: np.ndarray | None = None) -> float:
        """Scale for the next tensor; falls back to ``x``'s own amax."""
        amax = self.history_amax * self.margin
        if amax <= 0.0:
            if x is None:
                return 1.0
            amax = float(np.max(np.abs(x), initial=0.0))
        if amax <= 0.0:
            return 1.0
        return amax / self.qmax

    def scale_and_observe(self, x: np.ndarray) -> float:
        """Convenience: compute the working scale for ``x`` then record it."""
        s = self.scale(x)
        self.observe(x)
        return s
