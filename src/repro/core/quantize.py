"""The generic BDR two-level quantization engine (Figure 5 of the paper).

Quantization proceeds along one tensor axis in blocks of ``k1`` elements:

1. a global scale ``s`` is selected per block (power-of-two from the shared
   exponent, or a real FP32 scale),
2. each ``k2``-element sub-block selects a sub-scale ``ss_i`` (a power-of-two
   shift of at most ``2^d2 - 1``, or a ``d2``-bit integer for VSQ),
3. elements are rounded to ``m``-bit sign-magnitude codes on the grid
   ``s * ss_i``, and
4. dequantization recovers ``s * ss_i * code``.

The engine returns *fake-quantized* values (dequantized onto the original
scale) which, by construction, are exactly the values a native BDR machine
would produce.

Saturation corner: the block-max element has mantissa in [1, 2); patterns
above ``(2^m - 1 + 0.5) * 2^(1-m)`` round up beyond the largest code and
saturate (as BFP/MX hardware does), so its error can reach one full grid
step instead of the half step of Eq. 7.  Theorem 1 still holds — verified
by the property suite — because the saturating element also contributes
``~2^(2E)`` of signal power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bdr import BDRConfig
from .rounding import apply_rounding
from .scaling import amax_scale, exponent_range, floor_log2

__all__ = ["QuantizeResult", "bdr_quantize", "bdr_quantize_detailed"]


@dataclass
class QuantizeResult:
    """Full decomposition of a quantization pass, for inspection and tests.

    Attributes:
        values: dequantized values, same shape as the input.
        codes: per-element integer codes in ``[-(2^m - 1), 2^m - 1]``,
            blocked shape ``(..., blocks, k1)``.
        scale: effective per-block level-1 scale (already a real number,
            ``2^E`` for power-of-two scaling), shape ``(..., blocks)``.
        sub_scale: effective per-sub-block multiplier relative to ``scale``
            (``2^-tau`` for MX, the integer sub-scale for VSQ), shape
            ``(..., blocks, k1/k2)``; ``None`` for single-level formats.
        step: per-element grid step used for rounding, blocked shape.
    """

    values: np.ndarray
    codes: np.ndarray
    scale: np.ndarray
    sub_scale: np.ndarray | None
    step: np.ndarray


def bdr_quantize(
    x: np.ndarray,
    config: BDRConfig,
    axis: int = -1,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
    scale_override: float | np.ndarray | None = None,
) -> np.ndarray:
    """Quantize ``x`` to a BDR format and return the dequantized values.

    Args:
        x: input array (any shape, any float dtype).
        config: the BDR design point.
        axis: axis along which blocks are formed (the reduction dimension
            for dot-product operands; MX is a directional format).
        rounding: mantissa rounding mode, see :mod:`repro.core.rounding`.
        rng: generator for stochastic rounding.
        scale_override: replaces the data-derived level-1 scale; used for
            delayed scaling of INT/VSQ formats.  A scalar or an array
            broadcastable to the per-block scale shape.

    Returns:
        Array of the same shape and dtype float64 containing values exactly
        representable in the target format.
    """
    return _quantize(x, config, axis, rounding, rng, scale_override, detailed=False)


def bdr_quantize_detailed(
    x: np.ndarray,
    config: BDRConfig,
    axis: int = -1,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
    scale_override: float | np.ndarray | None = None,
) -> QuantizeResult:
    """Like :func:`bdr_quantize` but returns the full decomposition."""
    return _quantize(x, config, axis, rounding, rng, scale_override, detailed=True)


# ----------------------------------------------------------------------
# Implementation
# ----------------------------------------------------------------------
def _quantize(x, config, axis, rounding, rng, scale_override, detailed):
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        empty = x.copy()
        if not detailed:
            return empty
        return QuantizeResult(empty, empty, empty, None, empty)

    blocked, restore = _to_blocks(x, config.k1, axis)

    if config.s_type == "pow2":
        result = _quantize_pow2(blocked, config, rounding, rng)
    elif config.ss_type == "int":
        result = _quantize_vsq(blocked, config, rounding, rng, scale_override)
    else:
        result = _quantize_int(blocked, config, rounding, rng, scale_override)

    values = restore(result.values)
    if not detailed:
        return values
    result.values = values
    return result


def _to_blocks(x, k, axis):
    """Reshape so the chosen axis becomes trailing ``(blocks, k)`` pairs.

    Pads with zeros to a multiple of ``k``; zero padding never influences a
    block maximum, so it is numerically inert.  Returns the blocked view and
    a closure undoing the transformation.
    """
    moved = np.moveaxis(x, axis, -1)
    n = moved.shape[-1]
    pad = (-n) % k
    if pad:
        width = [(0, 0)] * (moved.ndim - 1) + [(0, pad)]
        moved = np.pad(moved, width)
    blocked = moved.reshape(moved.shape[:-1] + ((n + pad) // k, k))

    def restore(values):
        flat = values.reshape(values.shape[:-2] + (n + pad,))
        if pad:
            flat = flat[..., :n]
        return np.moveaxis(flat, -1, axis)

    return blocked, restore


def _quantize_pow2(blocked, config, rounding, rng):
    """BFP (d2 = 0) and MX (pow2 sub-scales): hardware-managed scaling."""
    lo, hi = exponent_range(config.d1)
    amax = np.max(np.abs(blocked), axis=-1)
    exp = np.clip(floor_log2(amax), lo, hi)  # shared block exponent E

    if config.ss_type == "pow2":
        shape = blocked.shape[:-1] + (config.num_subblocks, config.k2)
        sub = blocked.reshape(shape)
        sub_amax = np.max(np.abs(sub), axis=-1)
        sub_exp = np.clip(floor_log2(sub_amax), lo, hi)
        tau = np.clip(exp[..., None] - sub_exp, 0, config.beta)
        # grid step per element: 2^(E - tau - (m - 1))
        step_sub = np.exp2((exp[..., None] - tau - (config.m - 1)).astype(np.float64))
        step = np.repeat(step_sub, config.k2, axis=-1).reshape(blocked.shape)
        sub_scale = np.exp2(-tau.astype(np.float64))
    else:
        step = np.exp2((exp - (config.m - 1)).astype(np.float64))[..., None]
        step = np.broadcast_to(step, blocked.shape)
        sub_scale = None

    codes = apply_rounding(blocked / step, rounding, rng)
    codes = np.clip(codes, -config.qmax, config.qmax)
    values = codes * step
    scale = np.exp2(exp.astype(np.float64))
    return QuantizeResult(values, codes, scale, sub_scale, step)


def _quantize_int(blocked, config, rounding, rng, scale_override):
    """Software-scaled symmetric integer quantization (FP32 scale)."""
    if scale_override is None:
        amax = np.max(np.abs(blocked), axis=-1)
        scale = amax_scale(amax, config.qmax)
    else:
        scale = np.broadcast_to(
            np.asarray(scale_override, dtype=np.float64), blocked.shape[:-1]
        ).copy()
    scale = _as_fp32(scale)

    step = scale[..., None]
    codes = apply_rounding(blocked / step, rounding, rng)
    codes = np.clip(codes, -config.qmax, config.qmax)
    values = codes * step
    return QuantizeResult(values, codes, scale, None, np.broadcast_to(step, blocked.shape))


def _quantize_vsq(blocked, config, rounding, rng, scale_override):
    """VSQ: FP32 level-1 scale plus d2-bit unsigned integer sub-scales.

    Per-sub-block ideal scales are themselves quantized against the level-1
    scale; rounding the sub-scale *up* (ceil) guarantees elements never clip,
    the standard VS-Quant recipe.
    """
    ss_qmax = (1 << config.d2) - 1
    shape = blocked.shape[:-1] + (config.num_subblocks, config.k2)
    sub = blocked.reshape(shape)
    sigma = amax_scale(np.max(np.abs(sub), axis=-1), config.qmax)
    sigma = np.where(np.max(np.abs(sub), axis=-1) <= 0, 0.0, sigma)

    if scale_override is None:
        scale = np.max(sigma, axis=-1) / ss_qmax
        scale = np.where(scale <= 0, 1.0, scale)
    else:
        scale = np.broadcast_to(
            np.asarray(scale_override, dtype=np.float64), blocked.shape[:-1]
        ).copy()
    scale = _as_fp32(scale)

    sub_codes = np.ceil(sigma / scale[..., None])
    sub_codes = np.clip(sub_codes, 0, ss_qmax)

    step_sub = scale[..., None] * sub_codes
    safe_step = np.where(step_sub <= 0, 1.0, step_sub)
    codes_sub = apply_rounding(sub / safe_step[..., None], rounding, rng)
    codes_sub = np.clip(codes_sub, -config.qmax, config.qmax)
    codes_sub = np.where(step_sub[..., None] <= 0, 0.0, codes_sub)
    values = (codes_sub * step_sub[..., None]).reshape(blocked.shape)
    codes = codes_sub.reshape(blocked.shape)
    step = np.repeat(step_sub, config.k2, axis=-1).reshape(blocked.shape)
    return QuantizeResult(values, codes, scale, sub_codes, step)


def _as_fp32(scale):
    """Scales are stored in FP32 by the software formats; round-trip them."""
    return scale.astype(np.float32).astype(np.float64)
