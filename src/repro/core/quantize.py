"""The generic BDR two-level quantization engine (Figure 5 of the paper).

Quantization proceeds along one tensor axis in blocks of ``k1`` elements:

1. a global scale ``s`` is selected per block (power-of-two from the shared
   exponent, or a real FP32 scale),
2. each ``k2``-element sub-block selects a sub-scale ``ss_i`` (a power-of-two
   shift of at most ``2^d2 - 1``, or a ``d2``-bit integer for VSQ),
3. elements are rounded to ``m``-bit sign-magnitude codes on the grid
   ``s * ss_i``, and
4. dequantization recovers ``s * ss_i * code``.

The engine returns *fake-quantized* values (dequantized onto the original
scale) which, by construction, are exactly the values a native BDR machine
would produce.

Execution is delegated to the kernel subsystem (:mod:`repro.kernels`): the
default ``"numpy"`` backend runs fused, plan-cached kernels; the
``"reference"`` backend keeps the original straight-line path as a
bit-exact oracle.  Select with ``REPRO_KERNEL_BACKEND`` or
:func:`repro.kernels.use_backend`.

Saturation corner: the block-max element has mantissa in [1, 2); patterns
above ``(2^m - 1 + 0.5) * 2^(1-m)`` round up beyond the largest code and
saturate (as BFP/MX hardware does), so its error can reach one full grid
step instead of the half step of Eq. 7.  Theorem 1 still holds — verified
by the property suite — because the saturating element also contributes
``~2^(2E)`` of signal power.
"""

from __future__ import annotations

import threading

import numpy as np

from ..kernels.base import QuantizeResult
from ..kernels.registry import get_backend
from .bdr import BDRConfig

__all__ = [
    "QuantizeResult",
    "bdr_quantize",
    "bdr_quantize_detailed",
    "bdr_quantize_partial",
    "quantize_call_count",
    "reset_quantize_calls",
    "set_fault_probe",
]

# ----------------------------------------------------------------------
# Engine-invocation counter (the activation-residency observable)
# ----------------------------------------------------------------------
# Every non-empty entry into the BDR engine bumps this process-wide
# counter, so callers can assert *structural* properties — "this forward
# quantized each unique activation exactly once" — instead of inferring
# them from wall-clock.  Memo/residency cache hits never reach the engine
# and therefore never count.  The lock keeps the count exact under the
# serving session's worker threads; its cost is noise next to even the
# smallest kernel call.
_CALL_LOCK = threading.Lock()
_CALLS = 0


def _count_call() -> None:
    global _CALLS
    with _CALL_LOCK:
        _CALLS += 1


def quantize_call_count() -> int:
    """Total BDR engine invocations since process start (or last reset)."""
    with _CALL_LOCK:
        return _CALLS


def reset_quantize_calls() -> int:
    """Zero the engine-invocation counter; returns the previous count."""
    global _CALLS
    with _CALL_LOCK:
        previous = _CALLS
        _CALLS = 0
        return previous


# ----------------------------------------------------------------------
# Fault probe (chaos testing; see repro.serve.faults)
# ----------------------------------------------------------------------
# When a fault plan watching kernel sites is active, the serving layer
# installs a probe here; every engine entry then calls it with the site
# name "kernel.quantize" and the probe may raise or stall.  Without a
# probe the engine pays a single module-global None-check.
_FAULT_PROBE = None


def set_fault_probe(probe) -> object | None:
    """Install (or with ``None`` remove) the kernel-site fault probe.

    Returns the previous probe.  The probe is called as
    ``probe("kernel.quantize")`` on every non-empty engine invocation.
    """
    global _FAULT_PROBE
    previous = _FAULT_PROBE
    _FAULT_PROBE = probe
    return previous


def bdr_quantize(
    x: np.ndarray,
    config: BDRConfig,
    axis: int = -1,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
    scale_override: float | np.ndarray | None = None,
) -> np.ndarray:
    """Quantize ``x`` to a BDR format and return the dequantized values.

    Args:
        x: input array (any shape, any float dtype).
        config: the BDR design point.
        axis: axis along which blocks are formed (the reduction dimension
            for dot-product operands; MX is a directional format).
        rounding: mantissa rounding mode, see :mod:`repro.core.rounding`.
        rng: generator for stochastic rounding.
        scale_override: replaces the data-derived level-1 scale; used for
            delayed scaling of INT/VSQ formats.  A scalar or an array
            broadcastable to the per-block scale shape.

    Returns:
        Array of the same shape and dtype float64 containing values exactly
        representable in the target format.
    """
    return _quantize(x, config, axis, rounding, rng, scale_override, detailed=False)


def bdr_quantize_detailed(
    x: np.ndarray,
    config: BDRConfig,
    axis: int = -1,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
    scale_override: float | np.ndarray | None = None,
) -> QuantizeResult:
    """Like :func:`bdr_quantize` but returns the full decomposition."""
    return _quantize(x, config, axis, rounding, rng, scale_override, detailed=True)


def bdr_quantize_partial(
    x: np.ndarray,
    config: BDRConfig,
    axis: int = -1,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Quantize a single (possibly partial) block per row along ``axis``.

    The decode-path entry point for KV caches: the caller's length along
    ``axis`` must not exceed ``config.k1`` (one block, zero-padded by the
    backend as needed).  Bit-identical to :func:`bdr_quantize` on the same
    input — partial blocks are block-local, so quantizing the growing tail
    of a cached tensor alone reproduces exactly what a full-tensor
    quantization would produce for those rows — but dispatched through
    :meth:`~repro.kernels.base.KernelBackend.quantize_partial`, which
    backends implement without per-shape plan-cache traffic.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape[axis] > config.k1:
        raise ValueError(
            f"partial-block quantize needs length <= k1={config.k1} along "
            f"axis {axis}, got shape {x.shape}"
        )
    if x.size == 0:
        return x.copy()
    _count_call()
    if _FAULT_PROBE is not None:
        _FAULT_PROBE("kernel.quantize")
    return get_backend().quantize_partial(x, config, axis, rounding, rng)


def _quantize(x, config, axis, rounding, rng, scale_override, detailed):
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        empty = x.copy()
        if not detailed:
            return empty
        return QuantizeResult(empty, empty, empty, None, empty)
    _count_call()
    if _FAULT_PROBE is not None:
        _FAULT_PROBE("kernel.quantize")
    return get_backend().quantize(
        x, config, axis, rounding, rng, scale_override, detailed
    )
