"""Theorem 1: the distribution-free QSNR lower bound for BDR formats.

For an ``N``-dimensional vector drawn from *any* distribution, quantized with
mantissa bits ``m``, block sizes ``k1``/``k2`` and sub-scale width ``d2``
(``beta = 2^d2 - 1``), the paper proves (Section IX):

    QSNR >= 6.02 m + 10 log10( 2^(2 beta) / (min(N, k1) + (2^(2 beta) - 1) k2) )

The bound captures the two empirical trends of Figure 7: QSNR grows linearly
with ``m`` (~6 dB per mantissa bit) and degrades logarithmically with the
block granularities.
"""

from __future__ import annotations

import math

from .bdr import BDRConfig

__all__ = ["qsnr_lower_bound", "qsnr_lower_bound_params"]


def qsnr_lower_bound_params(m: int, k1: int, k2: int, d2: int, n: int | None = None) -> float:
    """Evaluate the Theorem 1 bound from raw parameters, in decibels.

    Args:
        m: explicit mantissa bits.
        k1: level-1 block granularity.
        k2: level-2 sub-block granularity (use ``k2 = k1`` when there is no
            second level: with ``beta = 0`` the bound degenerates to the
            classic BFP bound ``6.02 m - 10 log10 min(N, k1)``).
        d2: sub-scale bit-width (0 for single-level formats).
        n: vector length; defaults to ``k1`` (the bound is tightest there).
    """
    if m < 0 or k1 < 1 or k2 < 1 or d2 < 0:
        raise ValueError("parameters must be non-negative (k1, k2 >= 1)")
    if n is None:
        n = k1
    beta = (1 << d2) - 1
    if 2 * beta > 60:
        # asymptote as beta -> inf: the block term vanishes and the bound
        # tends to 6.02 m - 10 log10(k2); evaluate there to avoid overflow
        return 6.02 * m - 10.0 * math.log10(k2)
    four_beta = 2.0 ** (2 * beta)
    denom = min(n, k1) + (four_beta - 1.0) * k2
    return 6.02 * m + 10.0 * math.log10(four_beta / denom)


def qsnr_lower_bound(config: BDRConfig, n: int | None = None) -> float:
    """Theorem 1 bound for a :class:`BDRConfig`, in decibels.

    Single-level configs (``d2 = 0``) use ``k2 = k1`` so the second term
    reduces to the plain block-floating-point penalty.
    """
    k2 = config.k2 if config.d2 > 0 else config.k1
    return qsnr_lower_bound_params(config.m, config.k1, k2, config.d2, n=n)
