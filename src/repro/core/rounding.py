"""Rounding primitives shared by every quantizer in the library.

The paper quantizes mantissas by "rounding to the nearest floating point
number" (Section IX), i.e. round-half-to-even, which is the default
everywhere in this library.  Stochastic rounding and truncation are provided
for ablations (FAST [43] and related BFP training work rely on stochastic
rounding).
"""

from __future__ import annotations

import numpy as np

#: Rounding mode names accepted by :func:`apply_rounding`.
ROUNDING_MODES = ("nearest", "stochastic", "truncate")


def round_nearest_even(x: np.ndarray) -> np.ndarray:
    """Round to the nearest integer, ties to even (IEEE 754 default)."""
    return np.rint(x)


def round_stochastic(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Round up with probability equal to the fractional part.

    Unbiased: ``E[round_stochastic(x)] == x``.
    """
    floor = np.floor(x)
    frac = x - floor
    return floor + (rng.random(size=np.shape(x)) < frac)


def round_truncate(x: np.ndarray) -> np.ndarray:
    """Round toward zero (drop the fractional bits)."""
    return np.trunc(x)


def apply_rounding(
    x: np.ndarray,
    mode: str = "nearest",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Dispatch to one of the rounding primitives by name.

    Args:
        x: values already scaled onto an integer grid.
        mode: one of :data:`ROUNDING_MODES`.
        rng: required for ``"stochastic"`` mode.

    Raises:
        ValueError: on an unknown mode or a missing generator.
    """
    if mode == "nearest":
        return round_nearest_even(x)
    if mode == "truncate":
        return round_truncate(x)
    if mode == "stochastic":
        if rng is None:
            raise ValueError("stochastic rounding requires an rng")
        return round_stochastic(x, rng)
    raise ValueError(f"unknown rounding mode {mode!r}; expected one of {ROUNDING_MODES}")
