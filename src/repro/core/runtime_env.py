"""Process-start environment toggles shared across layers.

The fusion schedule is consulted from two places that must agree — the
:mod:`repro.nn` switchboard flags and the kernel execution strategy in
:mod:`repro.kernels.numpy_backend` — so both read their defaults through
this one parser.  The module imports nothing from the package, keeping it
usable from any layer without cycles.
"""

from __future__ import annotations

import os

__all__ = ["FUSION_ENV_VAR", "fusion_env_enabled"]

#: Environment variable selecting the process-start fusion schedule:
#: ``0`` / ``off`` / ``false`` / ``no`` start with every fusion stage
#: disabled (the pre-residency execution); anything else enables them.
FUSION_ENV_VAR = "REPRO_FUSION"

_OFF_TOKENS = ("0", "off", "false", "no")


def fusion_env_enabled() -> bool:
    """Whether the fusion schedule starts enabled for this process."""
    return os.environ.get(FUSION_ENV_VAR, "1").strip().lower() not in _OFF_TOKENS
