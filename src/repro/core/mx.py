"""The MX shared-microexponent formats (Table II of the paper).

All three basic formats share ``k1 = 16``, ``k2 = 2``, ``d1 = 8`` and
``d2 = 1`` and differ only in the mantissa bit-width, which maximizes
hardware reuse:

=========================  ====  ====  ====
Parameter                  MX9   MX6   MX4
=========================  ====  ====  ====
Block granularity ``k1``   16    16    16
Sub-block ``k2``           2     2     2
Scale bits ``d1``          8     8     8
Sub-scale bits ``d2``      1     1     1
Mantissa bits ``m``        7     4     2
Average bits per element   9     6     4
=========================  ====  ====  ====

A value is stored as a sign, an ``m``-bit magnitude, one sixteenth of an
8-bit shared block exponent, and one half of a 1-bit *microexponent*: a
conditional right shift that doubles the effective resolution of sub-blocks
sitting below the block maximum — "a little shifting goes a long way".
"""

from __future__ import annotations

import numpy as np

from .bdr import BDRConfig
from .quantize import bdr_quantize

__all__ = ["MX9", "MX6", "MX4", "MX_FORMATS", "mx_quantize"]

#: MX9: drop-in replacement for FP32/BF16 in training and inference.
MX9 = BDRConfig.mx(m=7).with_name("MX9")
#: MX6: ~2x cheaper than FP8 with QSNR between E4M3 and E5M2.
MX6 = BDRConfig.mx(m=4).with_name("MX6")
#: MX4: ultra-narrow inference/training format, ~4x cheaper than FP8.
MX4 = BDRConfig.mx(m=2).with_name("MX4")

#: The three basic formats by name.
MX_FORMATS: dict[str, BDRConfig] = {"MX9": MX9, "MX6": MX6, "MX4": MX4}


def mx_quantize(
    x: np.ndarray,
    fmt: str | BDRConfig = MX9,
    axis: int = -1,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Quantize along ``axis`` to an MX format and dequantize.

    MX is a *directional* format: hardware benefits require quantizing
    along the reduction dimension of the consuming dot product (Section V),
    so callers must pass the correct ``axis``.

    Args:
        x: input array.
        fmt: ``"MX9" | "MX6" | "MX4"`` or any MX-family :class:`BDRConfig`.
        axis: the reduction dimension.
        rounding: mantissa rounding mode.
        rng: generator for stochastic rounding.
    """
    if isinstance(fmt, str):
        try:
            fmt = MX_FORMATS[fmt.upper()]
        except KeyError:
            raise ValueError(
                f"unknown MX format {fmt!r}; expected one of {sorted(MX_FORMATS)}"
            ) from None
    return bdr_quantize(x, fmt, axis=axis, rounding=rounding, rng=rng)
