"""Block Data Representations (BDR): the paper's unifying configuration space.

A BDR point quantizes a vector in blocks of ``k1`` elements sharing a global
scale ``s`` (``d1`` bits), optionally subdivided into sub-blocks of ``k2``
elements sharing a sub-scale ``ss_i`` (``d2`` bits), with each element storing
a sign and ``m`` explicit mantissa (magnitude) bits.

The per-element storage cost is ``(m + 1) + d1/k1 + d2/k2`` bits (Section
III).  Table I of the paper maps the popular format families onto this space:

========  =====  =========  =======  ========  ======  ======
Format    scale  sub-scale  s type   ss type   k1      k2
========  =====  =========  =======  ========  ======  ======
INT       SW     --         FP32     --        ~1K     --
MSFP/BFP  HW     --         2^z      --        ~10     --
FP8       SW     HW         FP32     2^z       ~10K    1
VSQ       SW     HW         FP32     INT       ~1K     ~10
MX        HW     HW         2^z      2^z       ~10     ~1
========  =====  =========  =======  ========  ======  ======
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Valid encodings for the level-1 scale factor.
SCALE_TYPES = ("pow2", "fp32")
#: Valid encodings for the level-2 sub-scale factor.
SUBSCALE_TYPES = ("none", "pow2", "int")


@dataclass(frozen=True)
class BDRConfig:
    """One point in the BDR design space.

    Attributes:
        m: explicit mantissa (magnitude) bits per element, excluding the sign
            bit.  Scalar floating-point's implicit leading one is *not*
            counted here, matching the paper's footnote 1.
        k1: level-1 block granularity (elements sharing ``s``).
        d1: bit-width of the level-1 scale factor.
        s_type: ``"pow2"`` for a hardware exponent scale, ``"fp32"`` for a
            software-managed real-valued scale.
        k2: level-2 sub-block granularity (elements sharing ``ss_i``).
        d2: bit-width of each sub-scale factor (0 disables the second level).
        ss_type: ``"none"``, ``"pow2"`` (shared microexponent) or ``"int"``
            (VSQ-style integer sub-scale).
        name: optional display name for tables and plots.
    """

    m: int
    k1: int
    d1: int
    s_type: str = "pow2"
    k2: int = 1
    d2: int = 0
    ss_type: str = "none"
    name: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.m < 0:
            raise ValueError(f"mantissa bits must be >= 0, got {self.m}")
        if self.k1 < 1:
            raise ValueError(f"k1 must be >= 1, got {self.k1}")
        if self.k2 < 1:
            raise ValueError(f"k2 must be >= 1, got {self.k2}")
        if self.k1 % self.k2 != 0:
            raise ValueError(f"k2 ({self.k2}) must divide k1 ({self.k1})")
        if self.d1 < 1:
            raise ValueError(f"d1 must be >= 1, got {self.d1}")
        if self.d2 < 0:
            raise ValueError(f"d2 must be >= 0, got {self.d2}")
        if self.s_type not in SCALE_TYPES:
            raise ValueError(f"s_type must be one of {SCALE_TYPES}, got {self.s_type!r}")
        if self.ss_type not in SUBSCALE_TYPES:
            raise ValueError(
                f"ss_type must be one of {SUBSCALE_TYPES}, got {self.ss_type!r}"
            )
        if (self.d2 == 0) != (self.ss_type == "none"):
            raise ValueError("d2 == 0 exactly when ss_type == 'none'")
        if self.ss_type != "none" and self.k2 >= self.k1 and self.k1 > 1:
            raise ValueError("a second scaling level requires k2 < k1")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def beta(self) -> int:
        """Maximum sub-block shift ``2^d2 - 1`` (Theorem 1's beta)."""
        return (1 << self.d2) - 1

    @property
    def bits_per_element(self) -> float:
        """Average storage bits per element: ``(m+1) + d1/k1 + d2/k2``."""
        bits = (self.m + 1) + self.d1 / self.k1
        if self.ss_type != "none":
            bits += self.d2 / self.k2
        return bits

    @property
    def qmax(self) -> int:
        """Largest representable magnitude code: ``2^m - 1``."""
        return (1 << self.m) - 1

    @property
    def num_subblocks(self) -> int:
        """Sub-blocks per block, ``k1 / k2``."""
        return self.k1 // self.k2

    @property
    def family(self) -> str:
        """Coarse classification used for hardware-cost dispatch."""
        if self.s_type == "pow2":
            if self.ss_type == "pow2":
                return "mx"
            return "bfp"
        if self.ss_type == "int":
            return "vsq"
        if self.ss_type == "pow2":
            return "scalar_float"
        return "int"

    def with_name(self, name: str) -> "BDRConfig":
        """Return a copy carrying a display name."""
        return replace(self, name=name)

    @property
    def label(self) -> str:
        """Display name, synthesized from the parameters when unset."""
        if self.name is not None:
            return self.name
        return (
            f"bdr(m={self.m},k1={self.k1},d1={self.d1},{self.s_type}"
            f",k2={self.k2},d2={self.d2},{self.ss_type})"
        )

    # ------------------------------------------------------------------
    # Named constructors for the families of Table I
    # ------------------------------------------------------------------
    @classmethod
    def mx(cls, m: int, k1: int = 16, k2: int = 2, d1: int = 8, d2: int = 1) -> "BDRConfig":
        """A shared-microexponent format (Table II defaults)."""
        return cls(m=m, k1=k1, d1=d1, s_type="pow2", k2=k2, d2=d2, ss_type="pow2")

    @classmethod
    def bfp(cls, m: int, k1: int = 16, d1: int = 8) -> "BDRConfig":
        """Conventional block floating-point (MSFP-style, d2 = 0)."""
        return cls(m=m, k1=k1, d1=d1, s_type="pow2")

    @classmethod
    def int_sw(cls, m: int, k1: int = 1024) -> "BDRConfig":
        """Software-scaled integer quantization (FP32 scale, coarse block)."""
        return cls(m=m, k1=k1, d1=32, s_type="fp32")

    @classmethod
    def vsq(cls, m: int, d2: int = 6, k1: int = 1024, k2: int = 16) -> "BDRConfig":
        """Per-vector scaled quantization: FP32 scale + integer sub-scale."""
        return cls(m=m, k1=k1, d1=32, s_type="fp32", k2=k2, d2=d2, ss_type="int")
