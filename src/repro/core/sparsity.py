"""Fine-grained structured sparsity interacting with BDR blocks.

The paper's introduction motivates MX's small block sizes partly because
they are "more amenable to fine-grained sparsity support than larger block
sizes": with N:M structured sparsity (keep N of every M elements, as in
Ampere's 2:4), pruning happens *within* a scaling block, and the smaller
the block, the less a pruned outlier distorts the survivors' shared scale.

This module provides the N:M machinery and the combined prune-then-quantize
transform used by the ``sparsity`` experiment.
"""

from __future__ import annotations

import numpy as np

from .bdr import BDRConfig
from .quantize import bdr_quantize

__all__ = ["nm_sparsity_mask", "apply_nm_sparsity", "sparse_quantize", "density"]


def nm_sparsity_mask(x: np.ndarray, n: int, m: int, axis: int = -1) -> np.ndarray:
    """Boolean keep-mask implementing N:M magnitude pruning along ``axis``.

    In every group of ``m`` consecutive elements the ``n`` largest
    magnitudes survive.  Trailing partial groups keep their proportional
    share (ceil), so any length is accepted.
    """
    if not 0 < n <= m:
        raise ValueError(f"need 0 < n <= m, got {n}:{m}")
    x = np.asarray(x)
    moved = np.moveaxis(x, axis, -1)
    length = moved.shape[-1]
    pad = (-length) % m
    if pad:
        width = [(0, 0)] * (moved.ndim - 1) + [(0, pad)]
        padded = np.pad(np.abs(moved), width, constant_values=-1.0)
    else:
        padded = np.abs(moved)
    groups = padded.reshape(padded.shape[:-1] + (-1, m))
    # rank within each group; keep the n largest magnitudes
    order = np.argsort(groups, axis=-1)
    ranks = np.argsort(order, axis=-1)
    keep = ranks >= (m - n)
    keep = keep.reshape(padded.shape)[..., :length]
    return np.moveaxis(keep, -1, axis)


def apply_nm_sparsity(x: np.ndarray, n: int, m: int, axis: int = -1) -> np.ndarray:
    """Zero out pruned elements (N:M magnitude pruning)."""
    return np.where(nm_sparsity_mask(x, n, m, axis=axis), x, 0.0)


def sparse_quantize(
    x: np.ndarray,
    config: BDRConfig,
    n: int,
    m: int,
    axis: int = -1,
    rounding: str = "nearest",
) -> np.ndarray:
    """Prune N:M then quantize to a BDR format (the deployment order).

    Pruning first means the block scale is derived from the *survivors*,
    which is where small ``k1`` pays off: a pruned-away outlier in a large
    block would otherwise have pinned the shared exponent for hundreds of
    small survivors.
    """
    pruned = apply_nm_sparsity(x, n, m, axis=axis)
    return bdr_quantize(pruned, config, axis=axis, rounding=rounding)


def density(x: np.ndarray) -> float:
    """Fraction of nonzero elements."""
    x = np.asarray(x)
    if x.size == 0:
        raise ValueError("empty array has no density")
    return float(np.count_nonzero(x)) / x.size
