"""Pareto-frontier extraction over (hardware cost, fidelity) design points."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

__all__ = ["pareto_frontier", "dominates"]

T = TypeVar("T")


def dominates(
    a_cost: float, a_value: float, b_cost: float, b_value: float
) -> bool:
    """True when point ``a`` is at least as good as ``b`` on both axes and
    strictly better on one (lower cost, higher value)."""
    no_worse = a_cost <= b_cost and a_value >= b_value
    strictly_better = a_cost < b_cost or a_value > b_value
    return no_worse and strictly_better


def pareto_frontier(
    points: Sequence[T],
    cost: Callable[[T], float],
    value: Callable[[T], float],
) -> list[T]:
    """Non-dominated subset, sorted by ascending cost.

    A point survives iff no other point has lower-or-equal cost with
    higher-or-equal value (and is strictly better somewhere).  Exact
    duplicates keep one representative.
    """
    ordered = sorted(points, key=lambda p: (cost(p), -value(p)))
    frontier: list[T] = []
    best_value = float("-inf")
    for p in ordered:
        if value(p) > best_value:
            frontier.append(p)
            best_value = value(p)
    return frontier
