"""Numerical fidelity: QSNR methodology, test distributions, the design-
space sweep and Pareto-frontier analysis of Section IV."""

from .distributions import DISTRIBUTIONS, list_distributions, sample
from .pareto import dominates, pareto_frontier
from .qsnr import measure_qsnr, qsnr, qsnr_per_vector
from .sweep import (
    SweepPoint,
    bdr_design_space,
    named_design_points,
    run_sweep,
    sweep_frontier,
)

__all__ = [
    "DISTRIBUTIONS",
    "list_distributions",
    "sample",
    "dominates",
    "pareto_frontier",
    "measure_qsnr",
    "qsnr",
    "qsnr_per_vector",
    "SweepPoint",
    "bdr_design_space",
    "named_design_points",
    "run_sweep",
    "sweep_frontier",
]
