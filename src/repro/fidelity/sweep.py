"""The Section IV design-space exploration: 800+ configurations swept over
numerical fidelity (QSNR) and hardware cost (area x memory), producing the
Figure 7 scatter and its Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bdr import BDRConfig
from ..core.theorem import qsnr_lower_bound
from ..formats.base import Format, IdentityFormat
from ..formats.bdr_format import BDRFormat
from ..formats.registry import FIGURE7_FORMATS, get_format
from ..hardware.cost import hardware_cost
from ..hardware.dot_product import DEFAULT_R
from .pareto import pareto_frontier
from .qsnr import measure_qsnr, qsnr

__all__ = [
    "SweepPoint",
    "bdr_design_space",
    "named_design_points",
    "run_sweep",
    "register_probe_model",
]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated design point."""

    label: str
    family: str
    bits_per_element: float
    qsnr_db: float
    normalized_area: float
    memory: float
    cost: float
    theorem_bound_db: float | None = None

    def dominates(self, other: "SweepPoint") -> bool:
        no_worse = self.cost <= other.cost and self.qsnr_db >= other.qsnr_db
        better = self.cost < other.cost or self.qsnr_db > other.qsnr_db
        return no_worse and better


def bdr_design_space(
    mantissa_bits: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
    k1_values: tuple[int, ...] = (8, 16, 32, 64),
    k2_values: tuple[int, ...] = (1, 2, 4, 8, 16),
    d2_values: tuple[int, ...] = (0, 1, 2),
    d1: int = 8,
) -> list[BDRConfig]:
    """Enumerate the hardware-scaled (pow2/pow2) corner of the BDR space.

    With the defaults this produces several hundred valid configurations;
    combined with the named families in :func:`named_design_points` the
    total sweep exceeds the paper's "800+ configurations".
    """
    configs = []
    for m in mantissa_bits:
        for k1 in k1_values:
            # single-level BFP point
            configs.append(BDRConfig.bfp(m=m, k1=k1, d1=d1))
            for d2 in d2_values:
                if d2 == 0:
                    continue
                for k2 in k2_values:
                    if k2 >= k1 or k1 % k2 != 0:
                        continue
                    configs.append(
                        BDRConfig(
                            m=m, k1=k1, d1=d1, s_type="pow2",
                            k2=k2, d2=d2, ss_type="pow2",
                        )
                    )
    return configs


def named_design_points() -> list[Format]:
    """The named formats highlighted in Figure 7, plus the VSQ d2 sweep."""
    formats: list[Format] = [get_format(name) for name in FIGURE7_FORMATS]
    # VSQ variants are "the best of d2 = {4, 6, 8, 10}" — include them all
    for bits in (4, 6, 8):
        for d2 in (4, 8, 10):
            formats.append(
                get_format(f"vsq{bits}", d2=d2)
            )
            formats[-1].name = f"VSQ{bits}(d2={d2})"
    return formats


def _evaluate_config(
    config: BDRConfig,
    distribution: str,
    n_vectors: int,
    length: int,
    seed: int,
    r: int,
) -> SweepPoint:
    """Evaluate one BDR grid point (top-level so it pickles for workers)."""
    fmt = BDRFormat(config)
    q = measure_qsnr(fmt, distribution, n_vectors, length, seed)
    hc = hardware_cost(fmt, r=r)
    return SweepPoint(
        label=config.label,
        family=config.family,
        bits_per_element=config.bits_per_element,
        qsnr_db=q,
        normalized_area=hc.normalized_area,
        memory=hc.memory,
        cost=hc.area_memory_product,
        theorem_bound_db=qsnr_lower_bound(config, n=length),
    )


def _evaluate_named(
    fmt: Format,
    distribution: str,
    n_vectors: int,
    length: int,
    seed: int,
    r: int,
) -> SweepPoint:
    """Evaluate one named Figure 7 format (top-level so it pickles)."""
    q = measure_qsnr(fmt, distribution, n_vectors, length, seed)
    hc = hardware_cost(fmt, r=r)
    bound = None
    # classification reads through delegating wrappers (PinnedRounding);
    # quantization above still goes through the wrapper itself
    bare = getattr(fmt, "inner", fmt)
    # Theorem 1 is proven for shared-exponent (power-of-two) shift
    # semantics with round-to-nearest; it covers neither integer
    # sub-scales (VSQ) nor pinned non-nearest rounding.
    if bare is fmt and isinstance(fmt, BDRFormat) and fmt.config.s_type == "pow2":
        bound = qsnr_lower_bound(fmt.config, n=length)
    return SweepPoint(
        label=fmt.name,
        family=getattr(getattr(bare, "config", None), "family", "scalar_float"),
        bits_per_element=fmt.bits_per_element,
        qsnr_db=q,
        normalized_area=hc.normalized_area,
        memory=hc.memory,
        cost=hc.area_memory_product,
        theorem_bound_db=bound,
    )


def _evaluate_spec(
    spec: str,
    distribution: str,
    n_vectors: int,
    length: int,
    seed: int,
    r: int,
) -> SweepPoint:
    """Evaluate one spec-language design point (plain-string payload, so
    the process-pool path ships no format objects at all)."""
    from ..spec.grammar import as_format

    return _evaluate_named(as_format(spec), distribution, n_vectors, length, seed, r)


# ----------------------------------------------------------------------
# Policy design points: whole-model fidelity under a per-layer policy
# ----------------------------------------------------------------------
#: Rows used to probe a model's output fidelity under a policy.
POLICY_PROBE_ROWS = 512


def _build_probe_mlp(seed: int):
    from ..nn.layers import Linear, ReLU, Sequential

    rng = np.random.default_rng(seed)
    model = Sequential(
        Linear(32, 64, rng=rng),
        ReLU(),
        Linear(64, 64, rng=rng),
        ReLU(),
        Linear(64, 16, rng=rng),
    )
    return model, 32


#: Deterministic probe models for policy sweeps: name -> seed -> (model, in_dim).
_PROBE_MODELS = {"mlp": _build_probe_mlp}


def register_probe_model(name: str, builder, overwrite: bool = False) -> None:
    """Register a probe-model builder ``seed -> (model, input_dim)`` for
    policy sweeps.  Builders must be deterministic in ``seed``.

    Registration is per-process: ``run_sweep(n_jobs > 1)`` workers see
    custom probe models (and custom :func:`register_format` names) only
    under the ``fork`` start method, where they inherit this module's
    state.  Under ``spawn``/``forkserver``, register at import time of a
    module the workers also import, or run serially."""
    if name in _PROBE_MODELS and not overwrite:
        raise ValueError(f"probe model {name!r} is already registered")
    _PROBE_MODELS[name] = builder


def _evaluate_policy(
    policy: dict,
    model_name: str,
    distribution: str,
    n_vectors: int,
    length: int,
    seed: int,
    r: int,
) -> SweepPoint:
    """Evaluate one policy design point (plain-dict payload, picklable).

    The policy is compiled onto a deterministic probe model; fidelity is
    the QSNR of the quantized model's outputs against its own FP32
    outputs over ``min(n_vectors, POLICY_PROBE_ROWS)`` sampled rows.
    Storage bits and memory cost are parameter-weighted averages over the
    per-layer weight formats; area is the worst (largest) per-layer
    pipeline — a mixed-precision engine must provision for its widest
    format.
    """
    del length  # the probe model's input width fixes the vector length
    from ..flow.policy import apply_quant_policy, quantizable_modules
    from ..nn.tensor import Tensor, no_grad
    from ..spec.policy import policy_from_dict
    from .distributions import sample

    try:
        builder = _PROBE_MODELS[model_name]
    except KeyError:
        known = ", ".join(sorted(_PROBE_MODELS))
        raise ValueError(f"unknown probe model {model_name!r}; known: {known}") from None
    model, in_dim = builder(seed)
    rng = np.random.default_rng(seed + 1)
    x = sample(distribution, rng, min(n_vectors, POLICY_PROBE_ROWS), in_dim)

    spec = policy_from_dict(policy)
    with no_grad():
        baseline = model(Tensor(x, requires_grad=False)).data
        apply_quant_policy(model, spec)
        quantized = model(Tensor(x, requires_grad=False)).data

    fp32_cost = hardware_cost(IdentityFormat(), r=r)
    total_params = 0.0
    bits_acc = 0.0
    memory_acc = 0.0
    area = 0.0
    for _, module in quantizable_modules(model):
        weight = getattr(module, "weight", None)
        if weight is None:
            continue
        fmt = module.quant.weight if module.quant is not None else None
        cost = hardware_cost(fmt, r=r) if fmt is not None else fp32_cost
        bits = fmt.bits_per_element if fmt is not None else 32.0
        n = float(weight.data.size)
        total_params += n
        bits_acc += n * bits
        memory_acc += n * cost.memory
        area = max(area, cost.normalized_area)
    if total_params == 0:
        raise ValueError(f"probe model {model_name!r} has no quantizable weights")
    memory = memory_acc / total_params
    return SweepPoint(
        label=spec.label,
        family="policy",
        bits_per_element=bits_acc / total_params,
        qsnr_db=qsnr(baseline, quantized),
        normalized_area=area,
        memory=memory,
        cost=area * memory,
        theorem_bound_db=None,
    )


def run_sweep(
    configs: list[BDRConfig] | None = None,
    include_named: bool = True,
    distribution: str = "variable_normal",
    n_vectors: int = 2000,
    length: int = 256,
    seed: int = 0,
    r: int = DEFAULT_R,
    n_jobs: int | None = None,
    formats: list | None = None,
    policies: list | None = None,
    model: str = "mlp",
) -> list[SweepPoint]:
    """Evaluate QSNR and normalized hardware cost for every design point.

    Args:
        configs: BDR configs to include; defaults to
            :func:`bdr_design_space`.  Pass ``[]`` to skip the grid.
        include_named: also evaluate the named Figure 7 formats.
        distribution / n_vectors / length / seed: QSNR methodology knobs
            (the paper uses 10K+ vectors; 2K keeps the default sweep fast
            while staying within ~0.1 dB of the asymptote).
        r: dot-product length for the area model.
        n_jobs: fan design points out over a
            :class:`~concurrent.futures.ProcessPoolExecutor` with this many
            workers.  ``None`` or 1 evaluates serially.  Every design point
            seeds its own RNG from ``seed``, so parallel results are
            bit-identical to the serial sweep, in the same order.
        formats: extra design points as spec-language spellings (strings,
            dicts, :class:`~repro.spec.grammar.FormatSpec`, or
            spec-representable :class:`Format` instances).  Workers receive
            the canonical *strings*, so any spec point parallelizes.
        policies: per-layer policy design points —
            :class:`~repro.spec.policy.PolicySpec` objects or their dict
            forms — each evaluated on the ``model`` probe (see
            :func:`_evaluate_policy`).  Workers receive plain dicts.
        model: probe-model name for policy points (see
            :func:`register_probe_model`).

    Point order is always: BDR grid, named formats, spec formats, policies.
    """
    from ..spec.grammar import parse_spec, render_spec
    from ..spec.policy import PolicySpec, policy_from_dict

    if configs is None:
        configs = bdr_design_space()
    named = named_design_points() if include_named else []
    specs = [render_spec(parse_spec(f)) for f in (formats or [])]
    policy_dicts = [
        p.to_dict() if isinstance(p, PolicySpec) else policy_from_dict(p).to_dict()
        for p in (policies or [])
    ]

    if n_jobs is not None and n_jobs > 1 and (configs or named or specs or policy_dicts):
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial

        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            common = dict(
                distribution=distribution, n_vectors=n_vectors,
                length=length, seed=seed, r=r,
            )
            eval_cfg = partial(_evaluate_config, **common)
            eval_named = partial(_evaluate_named, **common)
            eval_spec = partial(_evaluate_spec, **common)
            eval_policy = partial(_evaluate_policy, model_name=model, **common)
            futures = (
                [pool.submit(eval_cfg, c) for c in configs]
                + [pool.submit(eval_named, f) for f in named]
                + [pool.submit(eval_spec, s) for s in specs]
                + [pool.submit(eval_policy, p) for p in policy_dicts]
            )
            return [f.result() for f in futures]

    points = [
        _evaluate_config(c, distribution, n_vectors, length, seed, r)
        for c in configs
    ]
    points.extend(
        _evaluate_named(f, distribution, n_vectors, length, seed, r)
        for f in named
    )
    points.extend(
        _evaluate_spec(s, distribution, n_vectors, length, seed, r)
        for s in specs
    )
    points.extend(
        _evaluate_policy(p, model, distribution, n_vectors, length, seed, r)
        for p in policy_dicts
    )
    return points


def sweep_frontier(points: list[SweepPoint]) -> list[SweepPoint]:
    """Pareto frontier of a sweep (ascending cost, best QSNR)."""
    return pareto_frontier(points, cost=lambda p: p.cost, value=lambda p: p.qsnr_db)
