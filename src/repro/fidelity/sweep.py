"""The Section IV design-space exploration: 800+ configurations swept over
numerical fidelity (QSNR) and hardware cost (area x memory), producing the
Figure 7 scatter and its Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bdr import BDRConfig
from ..core.theorem import qsnr_lower_bound
from ..formats.base import Format
from ..formats.bdr_format import BDRFormat
from ..formats.registry import FIGURE7_FORMATS, get_format
from ..hardware.cost import hardware_cost
from ..hardware.dot_product import DEFAULT_R
from .pareto import pareto_frontier
from .qsnr import measure_qsnr

__all__ = ["SweepPoint", "bdr_design_space", "named_design_points", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated design point."""

    label: str
    family: str
    bits_per_element: float
    qsnr_db: float
    normalized_area: float
    memory: float
    cost: float
    theorem_bound_db: float | None = None

    def dominates(self, other: "SweepPoint") -> bool:
        no_worse = self.cost <= other.cost and self.qsnr_db >= other.qsnr_db
        better = self.cost < other.cost or self.qsnr_db > other.qsnr_db
        return no_worse and better


def bdr_design_space(
    mantissa_bits: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
    k1_values: tuple[int, ...] = (8, 16, 32, 64),
    k2_values: tuple[int, ...] = (1, 2, 4, 8, 16),
    d2_values: tuple[int, ...] = (0, 1, 2),
    d1: int = 8,
) -> list[BDRConfig]:
    """Enumerate the hardware-scaled (pow2/pow2) corner of the BDR space.

    With the defaults this produces several hundred valid configurations;
    combined with the named families in :func:`named_design_points` the
    total sweep exceeds the paper's "800+ configurations".
    """
    configs = []
    for m in mantissa_bits:
        for k1 in k1_values:
            # single-level BFP point
            configs.append(BDRConfig.bfp(m=m, k1=k1, d1=d1))
            for d2 in d2_values:
                if d2 == 0:
                    continue
                for k2 in k2_values:
                    if k2 >= k1 or k1 % k2 != 0:
                        continue
                    configs.append(
                        BDRConfig(
                            m=m, k1=k1, d1=d1, s_type="pow2",
                            k2=k2, d2=d2, ss_type="pow2",
                        )
                    )
    return configs


def named_design_points() -> list[Format]:
    """The named formats highlighted in Figure 7, plus the VSQ d2 sweep."""
    formats: list[Format] = [get_format(name) for name in FIGURE7_FORMATS]
    # VSQ variants are "the best of d2 = {4, 6, 8, 10}" — include them all
    for bits in (4, 6, 8):
        for d2 in (4, 8, 10):
            formats.append(
                get_format(f"vsq{bits}", d2=d2)
            )
            formats[-1].name = f"VSQ{bits}(d2={d2})"
    return formats


def _evaluate_config(
    config: BDRConfig,
    distribution: str,
    n_vectors: int,
    length: int,
    seed: int,
    r: int,
) -> SweepPoint:
    """Evaluate one BDR grid point (top-level so it pickles for workers)."""
    fmt = BDRFormat(config)
    q = measure_qsnr(fmt, distribution, n_vectors, length, seed)
    hc = hardware_cost(fmt, r=r)
    return SweepPoint(
        label=config.label,
        family=config.family,
        bits_per_element=config.bits_per_element,
        qsnr_db=q,
        normalized_area=hc.normalized_area,
        memory=hc.memory,
        cost=hc.area_memory_product,
        theorem_bound_db=qsnr_lower_bound(config, n=length),
    )


def _evaluate_named(
    fmt: Format,
    distribution: str,
    n_vectors: int,
    length: int,
    seed: int,
    r: int,
) -> SweepPoint:
    """Evaluate one named Figure 7 format (top-level so it pickles)."""
    q = measure_qsnr(fmt, distribution, n_vectors, length, seed)
    hc = hardware_cost(fmt, r=r)
    bound = None
    # Theorem 1 is proven for shared-exponent (power-of-two) shift
    # semantics; it does not cover integer sub-scales (VSQ).
    if isinstance(fmt, BDRFormat) and fmt.config.s_type == "pow2":
        bound = qsnr_lower_bound(fmt.config, n=length)
    return SweepPoint(
        label=fmt.name,
        family=getattr(getattr(fmt, "config", None), "family", "scalar_float"),
        bits_per_element=fmt.bits_per_element,
        qsnr_db=q,
        normalized_area=hc.normalized_area,
        memory=hc.memory,
        cost=hc.area_memory_product,
        theorem_bound_db=bound,
    )


def run_sweep(
    configs: list[BDRConfig] | None = None,
    include_named: bool = True,
    distribution: str = "variable_normal",
    n_vectors: int = 2000,
    length: int = 256,
    seed: int = 0,
    r: int = DEFAULT_R,
    n_jobs: int | None = None,
) -> list[SweepPoint]:
    """Evaluate QSNR and normalized hardware cost for every design point.

    Args:
        configs: BDR configs to include; defaults to
            :func:`bdr_design_space`.
        include_named: also evaluate the named Figure 7 formats.
        distribution / n_vectors / length / seed: QSNR methodology knobs
            (the paper uses 10K+ vectors; 2K keeps the default sweep fast
            while staying within ~0.1 dB of the asymptote).
        r: dot-product length for the area model.
        n_jobs: fan design points out over a
            :class:`~concurrent.futures.ProcessPoolExecutor` with this many
            workers.  ``None`` or 1 evaluates serially.  Every design point
            seeds its own RNG from ``seed``, so parallel results are
            bit-identical to the serial sweep, in the same order.
    """
    if configs is None:
        configs = bdr_design_space()
    named = named_design_points() if include_named else []

    if n_jobs is not None and n_jobs > 1 and (configs or named):
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial

        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            eval_cfg = partial(
                _evaluate_config, distribution=distribution,
                n_vectors=n_vectors, length=length, seed=seed, r=r,
            )
            eval_named = partial(
                _evaluate_named, distribution=distribution,
                n_vectors=n_vectors, length=length, seed=seed, r=r,
            )
            grid_futures = [pool.submit(eval_cfg, c) for c in configs]
            named_futures = [pool.submit(eval_named, f) for f in named]
            return [f.result() for f in grid_futures + named_futures]

    points = [
        _evaluate_config(c, distribution, n_vectors, length, seed, r)
        for c in configs
    ]
    points.extend(
        _evaluate_named(f, distribution, n_vectors, length, seed, r)
        for f in named
    )
    return points


def sweep_frontier(points: list[SweepPoint]) -> list[SweepPoint]:
    """Pareto frontier of a sweep (ascending cost, best QSNR)."""
    return pareto_frontier(points, cost=lambda p: p.cost, value=lambda p: p.qsnr_db)
