"""Quantization signal-to-noise ratio: the paper's fidelity metric (Eq. 3).

    QSNR := -10 log10( E[ ||Q(X) - X||^2 ] / E[ ||X||^2 ] )

measured over ensembles of independent vectors (the paper averages over
10K+ vectors).  A higher QSNR means the quantized vector better preserves
the direction and magnitude of the original.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import Format
from .distributions import sample

__all__ = ["qsnr", "qsnr_per_vector", "measure_qsnr", "QSNR_FLOOR"]

#: Returned when the quantization error is exactly zero (infinite fidelity).
QSNR_CEILING = 300.0
#: Returned when the signal power is zero.
QSNR_FLOOR = -300.0


def qsnr(original: np.ndarray, quantized: np.ndarray) -> float:
    """QSNR in decibels between an ensemble and its quantized version.

    Uses the ratio of total powers (the empirical counterpart of the ratio
    of expectations in Eq. 3).
    """
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    if original.shape != quantized.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {quantized.shape}"
        )
    noise = float(np.sum((quantized - original) ** 2))
    signal = float(np.sum(original**2))
    if signal <= 0.0:
        return QSNR_FLOOR
    if noise <= 0.0:
        return QSNR_CEILING
    return -10.0 * np.log10(noise / signal)


def qsnr_per_vector(original: np.ndarray, quantized: np.ndarray) -> np.ndarray:
    """Per-row QSNR for (n_vectors, length) ensembles."""
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    noise = np.sum((quantized - original) ** 2, axis=-1)
    signal = np.sum(original**2, axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = -10.0 * np.log10(noise / signal)
    out = np.where(signal <= 0, QSNR_FLOOR, out)
    return np.where(noise <= 0, QSNR_CEILING, out)


def measure_qsnr(
    fmt: Format,
    distribution: str = "variable_normal",
    n_vectors: int = 10_000,
    length: int = 256,
    seed: int = 0,
    chunk: int = 256,
) -> float:
    """Measure a format's QSNR over a sampled ensemble (the Figure 7 y-axis).

    Vectors are processed in chunks fed sequentially, so stateful formats
    (delayed scaling) accumulate their amax history across chunks exactly as
    they would across successive kernel invocations during training.

    Args:
        fmt: any :class:`~repro.formats.base.Format`.
        distribution: a named source from
            :mod:`repro.fidelity.distributions`.
        n_vectors: ensemble size (the paper uses 10K+).
        length: vector length (the 256-element hardware tile by default).
        seed: RNG seed for reproducibility.
        chunk: vectors per quantization call.
    """
    rng = np.random.default_rng(seed)
    fmt.reset_state()
    noise = 0.0
    signal = 0.0
    remaining = n_vectors
    while remaining > 0:
        n = min(chunk, remaining)
        x = sample(distribution, rng, n, length)
        q = fmt.quantize(x, axis=-1)
        noise += float(np.sum((q - x) ** 2))
        signal += float(np.sum(x**2))
        remaining -= n
    if signal <= 0.0:
        return QSNR_FLOOR
    if noise <= 0.0:
        return QSNR_CEILING
    return -10.0 * float(np.log10(noise / signal))
