"""Quantization signal-to-noise ratio: the paper's fidelity metric (Eq. 3).

    QSNR := -10 log10( E[ ||Q(X) - X||^2 ] / E[ ||X||^2 ] )

measured over ensembles of independent vectors (the paper averages over
10K+ vectors).  A higher QSNR means the quantized vector better preserves
the direction and magnitude of the original.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..formats.base import Format
from .distributions import sample

__all__ = [
    "qsnr",
    "qsnr_per_vector",
    "measure_qsnr",
    "clear_ensemble_cache",
    "QSNR_FLOOR",
]

#: Returned when the quantization error is exactly zero (infinite fidelity).
QSNR_CEILING = 300.0
#: Returned when the signal power is zero.
QSNR_FLOOR = -300.0


def qsnr(original: np.ndarray, quantized: np.ndarray) -> float:
    """QSNR in decibels between an ensemble and its quantized version.

    Uses the ratio of total powers (the empirical counterpart of the ratio
    of expectations in Eq. 3).
    """
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    if original.shape != quantized.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {quantized.shape}"
        )
    noise = float(np.sum((quantized - original) ** 2))
    signal = float(np.sum(original**2))
    if signal <= 0.0:
        return QSNR_FLOOR
    if noise <= 0.0:
        return QSNR_CEILING
    return -10.0 * np.log10(noise / signal)


def qsnr_per_vector(original: np.ndarray, quantized: np.ndarray) -> np.ndarray:
    """Per-row QSNR for (n_vectors, length) ensembles."""
    original = np.asarray(original, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    noise = np.sum((quantized - original) ** 2, axis=-1)
    signal = np.sum(original**2, axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = -10.0 * np.log10(noise / signal)
    out = np.where(signal <= 0, QSNR_FLOOR, out)
    return np.where(noise <= 0, QSNR_CEILING, out)


def measure_qsnr(
    fmt: "Format | str | dict",
    distribution: str = "variable_normal",
    n_vectors: int = 10_000,
    length: int = 256,
    seed: int = 0,
    chunk: int = 256,
) -> float:
    """Measure a format's QSNR over a sampled ensemble (the Figure 7 y-axis).

    Vectors are processed in chunks fed sequentially, so stateful formats
    (delayed scaling) accumulate their amax history across chunks exactly as
    they would across successive kernel invocations during training.

    Stateless formats (block scaling derived purely from the current block
    contents — see :meth:`~repro.formats.base.Format.is_stateless`) are
    row-independent, so the chunks collapse into a *single* batched
    quantize call.  Sampling still happens chunk-by-chunk from the same
    RNG, and the error/signal powers accumulate over the same chunk
    boundaries, so the result is bit-identical to the sequential path —
    just an order of magnitude fewer kernel invocations.

    Args:
        fmt: any :class:`~repro.formats.base.Format`, or any spec spelling
            accepted by :func:`repro.spec.as_format` (``"mx6"``,
            ``"bdr(m=4,k1=16,d1=8)"``, a spec dict).
        distribution: a named source from
            :mod:`repro.fidelity.distributions`.
        n_vectors: ensemble size (the paper uses 10K+).
        length: vector length (the 256-element hardware tile by default).
        seed: RNG seed for reproducibility.
        chunk: vectors per quantization call (sampling granularity for the
            batched stateless path).
    """
    from ..spec.grammar import FormatSpec, as_format

    if isinstance(fmt, (str, dict, FormatSpec)):
        # duck-typed format objects (test doubles) pass through untouched
        fmt = as_format(fmt)
    fmt.reset_state()
    noise = 0.0
    signal = 0.0
    if n_vectors * length * 8 > MAX_CACHED_ENSEMBLE_BYTES:
        # oversized request: stream chunk-by-chunk (peak memory = one
        # chunk, as before this subsystem existed) instead of
        # materializing the whole ensemble
        rng = np.random.default_rng(seed)
        remaining = n_vectors
        while remaining > 0:
            n = min(chunk, remaining)
            x = sample(distribution, rng, n, length)
            q = fmt.quantize(x, axis=-1)
            noise += float(np.sum((q - x) ** 2))
            signal += float(np.sum(x**2))
            remaining -= n
    else:
        x, sizes = _sample_ensemble(distribution, n_vectors, length, seed, chunk)
        if fmt.is_stateless and len(sizes) > 1:
            q = fmt.quantize(x, axis=-1)
            offset = 0
            for n in sizes:
                xc = x[offset : offset + n]
                qc = q[offset : offset + n]
                noise += float(np.sum((qc - xc) ** 2))
                signal += float(np.sum(xc**2))
                offset += n
        else:
            offset = 0
            for n in sizes:
                xc = x[offset : offset + n]
                q = fmt.quantize(xc, axis=-1)
                noise += float(np.sum((q - xc) ** 2))
                signal += float(np.sum(xc**2))
                offset += n

    if signal <= 0.0:
        return QSNR_FLOOR
    if noise <= 0.0:
        return QSNR_CEILING
    return -10.0 * float(np.log10(noise / signal))


#: Ensembles larger than this are sampled fresh per call instead of being
#: pinned in the memo cache (4 entries x this bound caps cache memory).
MAX_CACHED_ENSEMBLE_BYTES = 64 * 1024 * 1024


def _sample_ensemble(
    distribution: str, n_vectors: int, length: int, seed: int, chunk: int
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Sample (and usually memoize) one measurement ensemble.

    Chunks are drawn sequentially from one seeded generator — exactly the
    stream the historical chunked loop consumed — then concatenated, so
    both the batched and the sequential paths read identical values.  The
    cache amortizes sampling across the hundreds of design points of a
    sweep (and across formats in the table experiments), which all share
    one ``(distribution, n_vectors, length, seed, chunk)`` signature.
    Oversized requests (> :data:`MAX_CACHED_ENSEMBLE_BYTES`) bypass the
    cache so it never pins more than a few hundred MB; call
    :func:`clear_ensemble_cache` to release the rest eagerly.
    """
    if n_vectors * length * 8 > MAX_CACHED_ENSEMBLE_BYTES:
        return _build_ensemble(distribution, n_vectors, length, seed, chunk)
    return _cached_ensemble(distribution, n_vectors, length, seed, chunk)


@lru_cache(maxsize=4)
def _cached_ensemble(distribution, n_vectors, length, seed, chunk):
    return _build_ensemble(distribution, n_vectors, length, seed, chunk)


def _build_ensemble(
    distribution: str, n_vectors: int, length: int, seed: int, chunk: int
) -> tuple[np.ndarray, tuple[int, ...]]:
    rng = np.random.default_rng(seed)
    sizes = []
    remaining = n_vectors
    while remaining > 0:
        sizes.append(min(chunk, remaining))
        remaining -= sizes[-1]
    if not sizes:
        return np.empty((0, length)), ()
    chunks = [sample(distribution, rng, n, length) for n in sizes]
    x = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    # shared between callers via the cache, so freeze it
    x.setflags(write=False)
    return x, tuple(sizes)


def clear_ensemble_cache() -> None:
    """Drop memoized measurement ensembles (frees their memory)."""
    _cached_ensemble.cache_clear()
