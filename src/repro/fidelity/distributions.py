"""Synthetic tensor distributions for the statistical fidelity analysis.

Figure 7 uses vectors drawn from a Gaussian with *variable variance*,
``X ~ N(0, |N(0, 1)|)``: each vector gets its own standard deviation drawn
from a half-normal, covering "a range of variances observed in gradient,
error, weight, and activation tensors in a typical training cycle".

Additional distributions exercise the robustness claims (Theorem 1 holds
for arbitrary distributions, including skewed ones with correlated noise).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["DISTRIBUTIONS", "sample", "list_distributions"]

Sampler = Callable[[np.random.Generator, int, int], np.ndarray]


def _variable_normal(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    """The Figure 7 distribution: per-vector sigma ~ |N(0, 1)|."""
    sigma = np.abs(rng.normal(size=(n, 1)))
    return rng.normal(size=(n, k)) * sigma


def _standard_normal(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    return rng.normal(size=(n, k))


def _uniform(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    return rng.uniform(-1.0, 1.0, size=(n, k))


def _laplace_variable(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    """Heavier tails than Gaussian, with per-vector scale variation."""
    scale = np.abs(rng.normal(size=(n, 1))) + 1e-3
    return rng.laplace(scale=1.0, size=(n, k)) * scale


def _outlier_normal(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    """Gaussian with sparse 32x outliers — the "numerical blast radius" case."""
    x = rng.normal(size=(n, k))
    mask = rng.random(size=(n, k)) < 0.005
    return np.where(mask, x * 32.0, x)


def _lognormal(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    """Skewed positive-heavy distribution with random signs."""
    mag = rng.lognormal(mean=0.0, sigma=1.0, size=(n, k))
    signs = rng.choice([-1.0, 1.0], size=(n, k))
    return mag * signs


def _correlated_normal(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    """Gaussian with strong intra-vector correlation (correlated noise)."""
    shared = rng.normal(size=(n, 1))
    return 0.7 * shared + 0.3 * rng.normal(size=(n, k))


#: Name -> sampler(rng, n_vectors, length) -> (n_vectors, length) array.
DISTRIBUTIONS: dict[str, Sampler] = {
    "variable_normal": _variable_normal,
    "standard_normal": _standard_normal,
    "uniform": _uniform,
    "laplace_variable": _laplace_variable,
    "outlier_normal": _outlier_normal,
    "lognormal": _lognormal,
    "correlated_normal": _correlated_normal,
}


def list_distributions() -> list[str]:
    return sorted(DISTRIBUTIONS)


def sample(
    name: str, rng: np.random.Generator, n_vectors: int, length: int
) -> np.ndarray:
    """Draw ``n_vectors`` vectors of ``length`` elements from a named source."""
    try:
        sampler = DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; known: {list_distributions()}"
        ) from None
    return sampler(rng, n_vectors, length)
