"""The fused fast-path backend: allocation-lean NumPy kernels.

Bit-exact with the reference backend (enforced by the equivalence suite
across the whole design space) while doing strictly less work per call:

* shared exponents come straight from the IEEE-754 bit pattern of the
  sub-block maxima (``bits >> 52``) instead of a ``log2 -> clip -> exp2``
  chain, and the block exponent is the max of the sub-block exponents, so
  the second full-size ``abs``/``max`` pass disappears;
* power-of-two grid steps (and their exact reciprocals) are assembled by
  packing the exponent field directly, so the per-element division becomes
  an exact multiply;
* steps broadcast as ``(..., blocks, subblocks, 1)`` views — never
  ``np.repeat``-materialized to element shape;
* round-to-nearest-even uses the in-place two-op magic-number shift
  (``+= 1.5 * 2**52; -= 1.5 * 2**52``) instead of ``np.rint``, with the
  code clamp folded into the shifted window as one ``np.clip``;
* pow2 kernels are single-buffer: the output array itself carries the
  absolute values, the rounding quotient, and the clipped codes through
  ``out=`` stages (software-scaled families keep a plan-cached scratch);
* blocking is a pure reshape view when the axis length divides ``k1``
  (every nn layer and the whole Figure 7 sweep), via the
  :class:`~repro.kernels.plan.QuantPlan` cache.

Exactness notes.  The bit tricks change *intermediate* encodings, never
post-clip results: (1) subnormal block maxima read as exponent ``-1023``
rather than the reference's zero sentinel, but both land on the clamp
bottom whenever the ``d1`` exponent range sits inside the normal float64
range; (2) the magic-number shift equals ``np.rint`` exactly for
``|q| <= 2**51`` and may differ by one ulp-of-one beyond that — where both
results saturate to ``qmax`` after clipping anyway.  Configs whose
exponent ranges violate these preconditions (``d1`` wider than ~11 bits on
a pow2 scale, ``m > 50``) delegate to the reference backend, as do
``detailed`` requests — inspection calls off the hot path, delegated so
the decomposition fields stay trivially identical — and pow2 inputs whose
blocks contain inf/NaN (their exponent field reads 0x7ff, where the bit
trick and the frexp path part ways; detected on the per-block maxima for
free and handed back to the reference engine).
"""

from __future__ import annotations

import numpy as np

from ..core.rounding import apply_rounding
from ..core.runtime_env import fusion_env_enabled
from ..core.scaling import amax_scale, exponent_range
from .base import KernelBackend, _SQRT_2_OVER_PI, check_epilogue
from .plan import checkout_scratch, get_plan, release_scratch
from .reference import ReferenceBackend, _as_fp32, _broadcast_override

__all__ = ["NumpyBackend"]

_REFERENCE = ReferenceBackend()

#: Below this element count the plan/scratch machinery (LRU lock traffic,
#: checkout bookkeeping) costs more than it saves; such calls run through
#: the plan-free kernel instead.  Single-token decode steps live here.
_SMALL_SIZE = 8192

#: Target tile size (elements) for chunking large pow2 quantizations.
#: Quantization is fiber-local along the block axis, so slicing any other
#: axis cannot change a single output bit — but it keeps the kernel's
#: working set (input, scratch/output, padding) inside the L2 cache,
#: which measures 25-40% faster than one full-array pass once the
#: buffers spill.  Calls near the target run whole.
_TILE_ELEMS = 24576

#: When True, pow2 kernels run the *pre-residency* execution strategy
#: (separate scratch and output buffers, maximum/minimum clamp pair, no
#: tiling) — bit-identical values, historical schedule.  Controlled by
#: the fusion switchboard (:func:`repro.nn.residency.configure_fusion`)
#: so that ``REPRO_FUSION=0`` benchmarks compare the fused schedule
#: against exactly what the pre-residency code executed, kernels
#: included; the process-start default shares the switchboard's parser.
_LEGACY_SCHEDULE = not fusion_env_enabled()


def set_legacy_schedule(enabled: bool) -> bool:
    """Select the pre-residency kernel schedule; returns the previous flag."""
    global _LEGACY_SCHEDULE
    previous = _LEGACY_SCHEDULE
    _LEGACY_SCHEDULE = bool(enabled)
    return previous


def legacy_schedule() -> bool:
    return _LEGACY_SCHEDULE

#: Adding then subtracting 1.5 * 2^52 rounds float64 to the nearest integer
#: (ties to even) using two adds instead of a libm rint pass.
_MAGIC = 1.5 * 2.0**52
#: Exponent payloads this far inside the normal range keep every derived
#: step and reciprocal a normal float64 (no subnormal corner cases).
_EXP_LIMIT = 1021


class _NonFiniteInput(Exception):
    """Raised by the fused pow2 kernel when a block holds inf/NaN."""


class NumpyBackend(KernelBackend):
    """Fused, plan-cached engine; the default backend."""

    name = "numpy"

    def quantize(self, x, config, axis, rounding, rng, scale_override, detailed):
        if detailed or config.m > 50:
            return _REFERENCE.quantize(
                x, config, axis, rounding, rng, scale_override, detailed
            )
        if config.s_type == "pow2":
            if not _pow2_exponents_safe(config):
                return _REFERENCE.quantize(
                    x, config, axis, rounding, rng, scale_override, detailed
                )
            if x.size <= _SMALL_SIZE:
                try:
                    return _pow2_noplan(x, config, axis, rounding, rng)
                except _NonFiniteInput:
                    return _REFERENCE.quantize(
                        x, config, axis, rounding, rng, scale_override, detailed
                    )
            if (
                not _LEGACY_SCHEDULE
                and scale_override is None
                and x.size > 2 * _TILE_ELEMS
                and x.ndim > 1
            ):
                tiled = self._pow2_tiled(x, config, axis, rounding, rng)
                if tiled is not None:
                    return tiled

        plan = get_plan(x.shape, axis, config.k1, config.k2, x.dtype)
        blocked = plan.block(x)
        if config.s_type == "pow2" and not _LEGACY_SCHEDULE:
            # single-buffer: the freshly allocated output array doubles as
            # the working scratch (|x|, quotients, codes, values in turn),
            # shrinking the kernel's cache footprint to input + output
            try:
                values = _pow2_fused(blocked, np.empty(plan.blocked_shape),
                                     plan.sub_shape, config, rounding, rng)
            except _NonFiniteInput:
                values = None
        elif config.s_type == "pow2":
            work = plan.checkout()
            try:
                values = _pow2_fused_legacy(blocked, work, plan.sub_shape,
                                            config, rounding, rng)
            except _NonFiniteInput:
                values = None
            finally:
                plan.release(work)
        else:
            work = plan.checkout()
            try:
                if config.ss_type == "int":
                    values = _vsq_fused(blocked, work, plan, config, rounding,
                                        rng, scale_override)
                else:
                    values = _int_fused(blocked, work, config, rounding, rng,
                                        scale_override)
            except _NonFiniteInput:
                values = None
            finally:
                plan.release(work)
        if values is None:
            return _REFERENCE.quantize(
                x, config, axis, rounding, rng, scale_override, detailed
            )
        return plan.restore(values)

    def _pow2_tiled(self, x, config, axis, rounding, rng):
        """Chunk a large pow2 quantization along a non-block axis.

        Returns ``None`` when no useful split exists (the block axis is
        the only non-trivial one, or one row already exceeds the tile
        target).  Each chunk re-enters :meth:`quantize` — so per-chunk
        non-finite fallbacks and rounding semantics are exactly those of
        the whole-array call — and lands in a preallocated output.
        """
        axis = axis % x.ndim
        split = 0 if axis != 0 else 1
        rows = x.shape[split]
        per_row = x.size // rows
        chunk = max(1, _TILE_ELEMS // per_row)
        if rows <= chunk or per_row > _TILE_ELEMS:
            return None
        out = np.empty(x.shape, dtype=np.float64)
        index = [slice(None)] * x.ndim
        for start in range(0, rows, chunk):
            index[split] = slice(start, start + chunk)
            sl = tuple(index)
            out[sl] = self.quantize(x[sl], config, axis, rounding, rng, None, False)
        return out

    def quantize_partial(self, x, config, axis, rounding, rng):
        """Partial-block entry point (see :meth:`KernelBackend.quantize_partial`).

        Routes pow2 configs through the plan-free fused kernel regardless of
        size: KV-cache tail shapes change every decode step, and feeding
        them to the plan LRU would evict the steady-state training/serving
        plans.  Software-scaled and wide-exponent configs fall back to the
        generic path (bit-identical by the backend contract).
        """
        if config.m > 50 or config.s_type != "pow2":
            return self.quantize(x, config, axis, rounding, rng, None, False)
        if not _pow2_exponents_safe(config):
            return _REFERENCE.quantize(x, config, axis, rounding, rng, None, False)
        try:
            return _pow2_noplan(x, config, axis, rounding, rng)
        except _NonFiniteInput:
            return _REFERENCE.quantize(x, config, axis, rounding, rng, None, False)

    def matmul_epilogue(self, a, w, epilogue=None, bias=None):
        """Fused ``a @ w`` + epilogue: one ``out=`` product, in-place tail.

        The product lands directly in the output buffer (no intermediate
        handoff), the bias add and GELU run as in-place ufuncs on it, and
        the single GELU temporary (the tanh argument) comes from the
        shared scratch pool.  Every elementwise op matches the unfused
        reference sequence in operation and association order, so results
        are bit-identical to :meth:`KernelBackend.matmul_epilogue` (the
        equivalence suite asserts this across formats and shapes).
        """
        check_epilogue(epilogue, bias)
        out = np.empty(a.shape[:-1] + (w.shape[-1],), dtype=np.float64)
        np.matmul(a, w, out=out)
        if epilogue in ("bias", "bias_gelu"):
            out += bias
        if epilogue in ("gelu", "bias_gelu"):
            _gelu_inplace(out)
        return out


def _gelu_inplace(out: np.ndarray) -> None:
    """Tanh-GELU on ``out`` in place, scratch-pooled single temporary.

    Mirrors ``x * (tanh((x + (x*x)*x * 0.044715) * sqrt(2/pi)) + 1) * 0.5``
    with the reference association order, so each element sees the exact
    same float64 operation sequence as the unfused path.
    """
    scratch = checkout_scratch(out.shape)
    try:
        np.multiply(out, out, out=scratch)      # x * x
        scratch *= out                          # (x * x) * x
        scratch *= 0.044715
        scratch += out                          # x + x^3 * 0.044715 (add commutes)
        scratch *= _SQRT_2_OVER_PI
        np.tanh(scratch, out=scratch)
        scratch += 1.0
        out *= scratch                          # x * (tanh(inner) + 1)
        out *= 0.5
    finally:
        release_scratch(scratch)


def _pow2_exponents_safe(config) -> bool:
    """True when every derived step/reciprocal stays a normal float64."""
    lo, hi = exponent_range(config.d1)
    return lo - (config.m - 1) >= -_EXP_LIMIT and hi - (config.m - 1) + 1 <= _EXP_LIMIT


def _pow2_noplan(x, config, axis, rounding, rng):
    """Plan-free pow2 kernel: same fused math, no LRU/scratch traffic.

    Used for small arrays and the partial-block entry point; blocking is a
    local moveaxis + zero-pad + reshape, so nothing is cached and nothing
    contends on the plan lock.  Bit-identical to the planful path (it runs
    the same :func:`_pow2_fused` body on identically padded blocks).
    """
    ndim = x.ndim
    needs_move = axis % ndim != ndim - 1
    moved = np.moveaxis(x, axis, -1) if needs_move else x
    n = moved.shape[-1]
    pad = (-n) % config.k1
    lead = moved.shape[:-1]
    blocks = (n + pad) // config.k1
    if pad:
        padded = np.zeros(lead + (n + pad,), dtype=np.float64)
        padded[..., :n] = moved
    else:
        padded = moved
    blocked = padded.reshape(lead + (blocks, config.k1))
    work = np.empty(blocked.shape, dtype=np.float64)
    sub_shape = lead + (blocks, config.k1 // config.k2, config.k2)
    body = _pow2_fused_legacy if _LEGACY_SCHEDULE else _pow2_fused
    values = body(blocked, work, sub_shape, config, rounding, rng)
    flat = values.reshape(lead + (n + pad,))
    if pad:
        flat = flat[..., :n]
    return np.moveaxis(flat, -1, axis) if needs_move else flat


def _last_axis_max(a: np.ndarray) -> np.ndarray:
    """``a.max(axis=-1)`` tuned for short trailing axes.

    NumPy's reduction machinery pays ~50ns per *output* element, which is
    ruinous when the reduced axis is tiny (k2 = 2 for every MX format: the
    reduction is 30x slower than the equivalent strided ``np.maximum``
    chain).  Longer axes amortize that overhead, so they keep the built-in
    reduction.  Identical results: ``np.max`` is ``maximum.reduce``.
    """
    k = a.shape[-1]
    if k > 64:
        return a.max(axis=-1)
    # pairwise folding: log2(k) wide stride-2 passes instead of a k-element
    # inner loop per output element (max is associative, so the fold order
    # cannot change the result)
    while k > 1 and k % 2 == 0:
        pairs = a.reshape(a.shape[:-1] + (k // 2, 2))
        a = np.maximum(pairs[..., 0], pairs[..., 1])
        k //= 2
    if k == 1:
        return a[..., 0]
    out = np.maximum(a[..., 0], a[..., 1])
    for i in range(2, k):
        np.maximum(out, a[..., i], out=out)
    return out


def _mul_subscale(a: np.ndarray, small: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out = a * small[..., None]`` tuned for short trailing axes.

    Broadcasting against a trailing length-1 axis makes the ufunc inner
    loop k2 elements long; for k2 <= 4 a handful of wide strided passes is
    substantially faster.  Elementwise products are identical either way.
    """
    k = a.shape[-1]
    if k <= 4:
        for i in range(k):
            np.multiply(a[..., i], small, out=out[..., i])
    else:
        np.multiply(a, small[..., None], out=out)
    return out


def _floor_exponents(amax: np.ndarray) -> np.ndarray:
    """``floor(log2(amax))`` for non-negative float64 via the exponent field.

    Subnormals and zeros read as ``-1023`` — below any representable ``d1``
    clamp handled by this backend, hence interchangeable with the reference
    path's zero sentinel after clipping.
    """
    return (amax.view(np.int64) >> 52) - 1023


def _pow2_and_reciprocal(e: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(2.0**e, 2.0**-e)`` for int64 ``e`` in the normal range.

    Both are assembled by packing the biased exponent field directly;
    ``(2046 << 52) - bits`` mirrors it, so the reciprocal costs one integer
    subtraction instead of a second pack.
    """
    bits = (e + 1023) << 52
    return bits.view(np.float64), ((2046 << 52) - bits).view(np.float64)


def _pow2_fused(blocked, work, sub_shape, config, rounding, rng):
    """BFP and MX: hardware power-of-two scaling, fused, single-buffer.

    ``blocked``/``work`` have the blocked shape ``(..., blocks, k1)``;
    ``sub_shape`` is the matching ``(..., blocks, k1/k2, k2)``.  Shared by
    the plan-cached path and the plan-free small/partial-block path.
    ``work`` is both scratch and result: it holds ``|x|`` for the maxima,
    then the scaled quotients, then the clipped codes, and finally the
    dequantized values, which are returned in it — one buffer of traffic
    instead of separate scratch and output arrays.

    Nearest rounding folds the clamp into the magic-number window: after
    ``+= 1.5 * 2**52`` every element is exactly ``MAGIC + rint(q)``, so a
    single ``np.clip`` against ``MAGIC ± qmax`` (both exactly
    representable — integer offsets at a scale whose ulp is 1) clamps the
    codes in one pass, bit-identical to rounding first and clamping after.
    Other modes round via :func:`~repro.core.rounding.apply_rounding` and
    clamp with one ``np.clip`` — identical to a ``maximum``/``minimum``
    pair for finite ordered bounds.
    """
    lo, hi = exponent_range(config.d1)
    np.abs(blocked, out=work)

    if config.ss_type == "pow2":
        sub_exp = _floor_exponents(_last_axis_max(work.reshape(sub_shape)))
        raw_block = _last_axis_max(sub_exp)
        # inf and NaN carry exponent field 0x7ff (raw 1024): the bit trick
        # would clamp their blocks to the top exponent where the reference
        # frexp path behaves differently, so hand those inputs back.  The
        # check rides on the already-reduced per-block maxima — no extra
        # full-size pass.
        if raw_block.size and int(raw_block.max()) >= 1024:
            raise _NonFiniteInput
        exp = np.minimum(np.maximum(raw_block, lo), hi)
        np.maximum(sub_exp, lo, out=sub_exp)
        np.minimum(sub_exp, hi, out=sub_exp)
        # step exponent: E - tau - (m-1) with tau = min(E - sub_exp, beta)
        e = np.maximum(sub_exp, exp[..., None] - config.beta)
        e -= config.m - 1
        step, inv_step = _pow2_and_reciprocal(e)
        work_sub = work.reshape(sub_shape)
        _mul_subscale(blocked.reshape(sub_shape), inv_step, work_sub)
        _round_clip_inplace(work, config.qmax, rounding, rng)
        _mul_subscale(work_sub, step, work_sub)
        return work

    raw = _floor_exponents(_last_axis_max(work))
    if raw.size and int(raw.max()) >= 1024:
        raise _NonFiniteInput
    exp = np.minimum(np.maximum(raw, lo), hi)
    step, inv_step = _pow2_and_reciprocal(exp - (config.m - 1))
    _mul_subscale(blocked, inv_step, work)
    _round_clip_inplace(work, config.qmax, rounding, rng)
    _mul_subscale(work, step, work)
    return work


def _round_clip_inplace(buf, qmax, rounding, rng):
    """Round to codes and clamp to ``[-qmax, qmax]``, in place."""
    if rounding == "nearest":
        buf += _MAGIC
        np.clip(buf, _MAGIC - qmax, _MAGIC + qmax, out=buf)
        buf -= _MAGIC
    else:
        _round_inplace(buf, rounding, rng)
        np.clip(buf, -qmax, qmax, out=buf)


def _pow2_fused_legacy(blocked, work, sub_shape, config, rounding, rng):
    """The pre-residency pow2 body: plan scratch + separate output buffer.

    Bit-identical to :func:`_pow2_fused` (same math on the same blocks);
    kept verbatim so the ``REPRO_FUSION=0`` baseline reproduces the
    historical execution strategy the fused schedule is benchmarked
    against.
    """
    lo, hi = exponent_range(config.d1)
    blocked_shape = blocked.shape
    np.abs(blocked, out=work)

    if config.ss_type == "pow2":
        sub_exp = _floor_exponents(_last_axis_max(work.reshape(sub_shape)))
        raw_block = _last_axis_max(sub_exp)
        if raw_block.size and int(raw_block.max()) >= 1024:
            raise _NonFiniteInput
        exp = np.minimum(np.maximum(raw_block, lo), hi)
        np.maximum(sub_exp, lo, out=sub_exp)
        np.minimum(sub_exp, hi, out=sub_exp)
        e = np.maximum(sub_exp, exp[..., None] - config.beta)
        e -= config.m - 1
        step, inv_step = _pow2_and_reciprocal(e)
        _mul_subscale(blocked.reshape(sub_shape), inv_step,
                      work.reshape(sub_shape))
    else:
        raw = _floor_exponents(_last_axis_max(work))
        if raw.size and int(raw.max()) >= 1024:
            raise _NonFiniteInput
        exp = np.minimum(np.maximum(raw, lo), hi)
        step, inv_step = _pow2_and_reciprocal(exp - (config.m - 1))
        _mul_subscale(blocked, inv_step, work)

    _round_inplace(work, rounding, rng)
    np.maximum(work, -config.qmax, out=work)
    np.minimum(work, config.qmax, out=work)
    if config.ss_type == "pow2":
        values = np.empty(sub_shape)
        _mul_subscale(work.reshape(sub_shape), step, values)
        return values.reshape(blocked_shape)
    values = np.empty(blocked_shape)
    return _mul_subscale(work, step, values)


def _int_fused(blocked, work, config, rounding, rng, scale_override):
    """Software-scaled symmetric integers, fused."""
    if scale_override is None:
        np.abs(blocked, out=work)
        amax = _last_axis_max(work)
        scale = _as_fp32(amax_scale(amax, config.qmax))
    else:
        scale = _broadcast_override(scale_override, blocked.shape[:-1])

    step = scale[..., None]
    np.divide(blocked, step, out=work)
    _round_inplace(work, rounding, rng)
    np.clip(work, -config.qmax, config.qmax, out=work)
    return work * step


def _vsq_fused(blocked, work, plan, config, rounding, rng, scale_override):
    """VSQ: FP32 scale + integer sub-scales, fused."""
    ss_qmax = (1 << config.d2) - 1
    sub = blocked.reshape(plan.sub_shape)
    work_sub = work.reshape(plan.sub_shape)

    np.abs(blocked, out=work)
    sub_amax = _last_axis_max(work_sub)
    sigma = amax_scale(sub_amax, config.qmax)
    sigma = np.where(sub_amax <= 0, 0.0, sigma)

    if scale_override is None:
        scale = _last_axis_max(sigma) / ss_qmax
        scale = np.where(scale <= 0, 1.0, scale)
        scale = _as_fp32(scale)
    else:
        scale = _broadcast_override(scale_override, blocked.shape[:-1])

    sub_codes = np.clip(np.ceil(sigma / scale[..., None]), 0, ss_qmax)

    step_sub = scale[..., None] * sub_codes
    safe_step = np.where(step_sub <= 0, 1.0, step_sub)
    np.divide(sub, safe_step[..., None], out=work_sub)
    _round_inplace(work_sub, rounding, rng)
    np.clip(work, -config.qmax, config.qmax, out=work)
    np.copyto(work_sub, 0.0, where=step_sub[..., None] <= 0)
    return np.multiply(work_sub, step_sub[..., None]).reshape(plan.blocked_shape)


def _round_inplace(buf, mode, rng):
    """Round ``buf`` to integer codes in place.

    ``nearest`` uses the magic-number shift (identical to ``np.rint`` up to
    clip saturation — see the module docstring); ``truncate`` is a single
    ``np.trunc`` pass; stochastic and unknown modes go through
    :func:`~repro.core.rounding.apply_rounding` for identical semantics.
    """
    if mode == "nearest":
        buf += _MAGIC
        buf -= _MAGIC
    elif mode == "truncate":
        np.trunc(buf, out=buf)
    else:
        buf[...] = apply_rounding(buf, mode, rng)
