"""Shared types for the quantization kernel subsystem.

A *kernel backend* owns the full quantization pipeline for one execution
strategy: blocking, scale selection, rounding, and restoration to the input
shape.  Backends are interchangeable by contract — every backend must be
bit-exact against the ``"reference"`` backend for every
:class:`~repro.core.bdr.BDRConfig`, rounding mode, and input shape (the
equivalence suite in ``tests/kernels`` enforces this across the whole
design space).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.bdr import BDRConfig

__all__ = ["QuantizeResult", "KernelBackend"]


@dataclass
class QuantizeResult:
    """Full decomposition of a quantization pass, for inspection and tests.

    Attributes:
        values: dequantized values, same shape as the input.
        codes: per-element integer codes in ``[-(2^m - 1), 2^m - 1]``,
            blocked shape ``(..., blocks, k1)``.
        scale: effective per-block level-1 scale (already a real number,
            ``2^E`` for power-of-two scaling), shape ``(..., blocks)``.
            May be a read-only broadcast view for overridden scales.
        sub_scale: effective per-sub-block multiplier relative to ``scale``
            (``2^-tau`` for MX, the integer sub-scale for VSQ), shape
            ``(..., blocks, k1/k2)``; ``None`` for single-level formats.
        step: per-element grid step used for rounding, blocked shape.
    """

    values: np.ndarray
    codes: np.ndarray
    scale: np.ndarray
    sub_scale: np.ndarray | None
    step: np.ndarray


class KernelBackend(abc.ABC):
    """One execution strategy for the BDR quantization engine."""

    #: registry name
    name: str = "backend"

    @abc.abstractmethod
    def quantize(
        self,
        x: np.ndarray,
        config: BDRConfig,
        axis: int,
        rounding: str,
        rng: np.random.Generator | None,
        scale_override: float | np.ndarray | None,
        detailed: bool,
    ) -> np.ndarray | QuantizeResult:
        """Quantize ``x`` (already float64, non-empty) along ``axis``.

        Returns the dequantized array, or the full :class:`QuantizeResult`
        when ``detailed`` is set.
        """

    def quantize_partial(
        self,
        x: np.ndarray,
        config: BDRConfig,
        axis: int,
        rounding: str,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """Quantize a single (possibly partial) block per row along ``axis``.

        The partial-block entry point of the KV-cache decode path: callers
        guarantee ``x.shape[axis] <= config.k1``.  The contract is strict
        bit-identity with :meth:`quantize` (zero padding to ``k1`` is
        numerically inert, so a partial block quantized alone equals the
        same block inside a longer tensor); backends may override with a
        leaner execution strategy.  This default simply delegates, which
        keeps the reference backend's oracle status trivially intact.
        """
        return self.quantize(x, config, axis, rounding, rng, None, False)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
