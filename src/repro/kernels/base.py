"""Shared types for the quantization kernel subsystem.

A *kernel backend* owns the full quantization pipeline for one execution
strategy: blocking, scale selection, rounding, and restoration to the input
shape.  Backends are interchangeable by contract — every backend must be
bit-exact against the ``"reference"`` backend for every
:class:`~repro.core.bdr.BDRConfig`, rounding mode, and input shape (the
equivalence suite in ``tests/kernels`` enforces this across the whole
design space).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.bdr import BDRConfig

__all__ = ["QuantizeResult", "KernelBackend", "EPILOGUES"]

#: Epilogue names understood by :meth:`KernelBackend.matmul_epilogue`.
#: ``"bias"`` adds a broadcast bias row; ``"gelu"`` applies the
#: tanh-approximated GELU; ``"bias_gelu"`` chains both.
EPILOGUES = ("bias", "gelu", "bias_gelu")

#: tanh-GELU constant, identical to :data:`repro.nn.functional._SQRT_2_OVER_PI`
_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def gelu_reference(x: np.ndarray) -> np.ndarray:
    """Unfused tanh-GELU on a raw array.

    The exact ufunc sequence of :func:`repro.nn.functional.gelu` — same
    operations, same association order — so a fused in-place epilogue can
    be validated bit-for-bit against it.
    """
    inner = (x + x * x * x * 0.044715) * _SQRT_2_OVER_PI
    return x * (np.tanh(inner) + 1.0) * 0.5


def check_epilogue(epilogue: str | None, bias: np.ndarray | None) -> None:
    """Validate an epilogue request (shared by every backend)."""
    if epilogue is not None and epilogue not in EPILOGUES:
        raise ValueError(
            f"unknown epilogue {epilogue!r}; known epilogues: {EPILOGUES}"
        )
    if epilogue in ("bias", "bias_gelu") and bias is None:
        raise ValueError(f"epilogue {epilogue!r} requires a bias array")


@dataclass
class QuantizeResult:
    """Full decomposition of a quantization pass, for inspection and tests.

    Attributes:
        values: dequantized values, same shape as the input.
        codes: per-element integer codes in ``[-(2^m - 1), 2^m - 1]``,
            blocked shape ``(..., blocks, k1)``.
        scale: effective per-block level-1 scale (already a real number,
            ``2^E`` for power-of-two scaling), shape ``(..., blocks)``.
            May be a read-only broadcast view for overridden scales.
        sub_scale: effective per-sub-block multiplier relative to ``scale``
            (``2^-tau`` for MX, the integer sub-scale for VSQ), shape
            ``(..., blocks, k1/k2)``; ``None`` for single-level formats.
        step: per-element grid step used for rounding, blocked shape.
    """

    values: np.ndarray
    codes: np.ndarray
    scale: np.ndarray
    sub_scale: np.ndarray | None
    step: np.ndarray


class KernelBackend(abc.ABC):
    """One execution strategy for the BDR quantization engine."""

    #: registry name
    name: str = "backend"

    @abc.abstractmethod
    def quantize(
        self,
        x: np.ndarray,
        config: BDRConfig,
        axis: int,
        rounding: str,
        rng: np.random.Generator | None,
        scale_override: float | np.ndarray | None,
        detailed: bool,
    ) -> np.ndarray | QuantizeResult:
        """Quantize ``x`` (already float64, non-empty) along ``axis``.

        Returns the dequantized array, or the full :class:`QuantizeResult`
        when ``detailed`` is set.
        """

    def quantize_partial(
        self,
        x: np.ndarray,
        config: BDRConfig,
        axis: int,
        rounding: str,
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """Quantize a single (possibly partial) block per row along ``axis``.

        The partial-block entry point of the KV-cache decode path: callers
        guarantee ``x.shape[axis] <= config.k1``.  The contract is strict
        bit-identity with :meth:`quantize` (zero padding to ``k1`` is
        numerically inert, so a partial block quantized alone equals the
        same block inside a longer tensor); backends may override with a
        leaner execution strategy.  This default simply delegates, which
        keeps the reference backend's oracle status trivially intact.
        """
        return self.quantize(x, config, axis, rounding, rng, None, False)

    def matmul_epilogue(
        self,
        a: np.ndarray,
        w: np.ndarray,
        epilogue: str | None = None,
        bias: np.ndarray | None = None,
    ) -> np.ndarray:
        """``a @ w`` followed by an optional fused epilogue (inference only).

        ``a`` is ``(..., K)`` (typically an already-quantized activation
        payload), ``w`` is ``(K, N)``, ``bias`` broadcasts over the trailing
        output axis.  Epilogue names are listed in :data:`EPILOGUES`.

        The contract is strict bit-identity with the unfused op sequence
        (``out = a @ w``; ``out = out + bias``; ``out = gelu(out)`` as
        separate full-array passes): epilogues are pure elementwise
        chains, so a backend fusing them into its output loop via ``out=``
        / in-place ufuncs produces the same bits.  This default *is* the
        unfused sequence, which keeps the reference backend an oracle for
        the fused paths.
        """
        check_epilogue(epilogue, bias)
        out = a @ w
        if epilogue in ("bias", "bias_gelu"):
            out = out + bias
        if epilogue in ("gelu", "bias_gelu"):
            out = gelu_reference(out)
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
