"""Backend registry and selection for the quantization kernel subsystem.

Selection precedence, highest first:

1. an active :func:`use_backend` context / :func:`set_backend` call,
2. the ``REPRO_KERNEL_BACKEND`` environment variable,
3. the default ``"numpy"`` fast path.

The ``"reference"`` backend is the legacy straight-line engine kept as the
correctness oracle; switch to it to rule the fast path out of any numerical
question (``REPRO_KERNEL_BACKEND=reference python -m pytest ...``).
"""

from __future__ import annotations

import contextlib
import os

from .base import KernelBackend
from .numpy_backend import NumpyBackend
from .reference import ReferenceBackend

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "get_backend",
    "set_backend",
    "use_backend",
    "register_backend",
    "list_backends",
]

#: Environment variable consulted when no backend was set programmatically.
ENV_VAR = "REPRO_KERNEL_BACKEND"
#: Backend used when neither an override nor the env var is present.
DEFAULT_BACKEND = "numpy"

_BACKENDS: dict[str, KernelBackend] = {}
#: Programmatic override; ``None`` defers to the environment/default.
_ACTIVE: str | None = None


def register_backend(backend: KernelBackend) -> None:
    """Add a backend instance under its ``name`` (case-insensitive)."""
    key = backend.name.lower()
    if key in _BACKENDS:
        raise ValueError(f"kernel backend {backend.name!r} is already registered")
    _BACKENDS[key] = backend


def list_backends() -> list[str]:
    """All registered backend names, sorted."""
    return sorted(_BACKENDS)


def _resolve(name: str) -> KernelBackend:
    try:
        return _BACKENDS[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ValueError(
            f"unknown kernel backend {name!r}; known backends: {known}"
        ) from None


def get_backend(name: str | None = None) -> KernelBackend:
    """The backend to dispatch to (or a specific one when ``name`` given)."""
    if name is not None:
        return _resolve(name)
    if _ACTIVE is not None:
        return _resolve(_ACTIVE)
    return _resolve(os.environ.get(ENV_VAR, DEFAULT_BACKEND))


def set_backend(name: str | None) -> str | None:
    """Set the process-wide backend override; returns the previous override.

    Pass ``None`` to fall back to ``REPRO_KERNEL_BACKEND`` / the default.
    """
    global _ACTIVE
    if name is not None:
        _resolve(name)  # validate eagerly
    previous = _ACTIVE
    _ACTIVE = name
    return previous


@contextlib.contextmanager
def use_backend(name: str):
    """Temporarily dispatch through the named backend."""
    previous = set_backend(name)
    try:
        yield get_backend()
    finally:
        set_backend(previous)


register_backend(NumpyBackend())
register_backend(ReferenceBackend())
