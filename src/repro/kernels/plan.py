"""Quantization plans: precomputed blocking geometry plus reusable scratch.

Every call into the fast backend re-derives the same facts from its
arguments: where the block axis lands after ``moveaxis``, whether the axis
length divides ``k1`` (no padding -> pure-view blocking), the blocked and
sub-blocked shapes, and how to restore the output.  A :class:`QuantPlan`
computes all of that once per ``(shape, axis, k1, k2, dtype)`` and keeps a
checkout-based scratch buffer so repeated same-shape calls — every training
step, every sweep chunk — reuse one allocation instead of half a dozen
full-size temporaries.

Plans are cached in a bounded LRU keyed on the tuple above.  The scratch
buffer uses checkout semantics: :meth:`QuantPlan.checkout` hands out the
cached buffer (or a fresh one if it is already in use), and
:meth:`QuantPlan.release` returns it — so reentrant or concurrent use
degrades to allocation instead of corrupting in-flight data.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

__all__ = [
    "QuantPlan",
    "get_plan",
    "clear_plan_cache",
    "plan_cache_info",
    "checkout_scratch",
    "release_scratch",
]

#: Maximum number of cached plans; old entries are evicted LRU-first.
MAX_PLANS = 128
#: Aggregate cap on scratch bytes retained across all cached plans; a
#: release that would exceed it simply drops the buffer (allocation per
#: call, exactly the pre-cache behaviour).
MAX_SCRATCH_BYTES = 256 * 1024 * 1024

_CACHE: OrderedDict[tuple, "QuantPlan"] = OrderedDict()
_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0
_SCRATCH_BYTES = 0


class QuantPlan:
    """Blocking geometry and scratch for one ``(shape, axis, k1, k2)``.

    Attributes:
        blocked_shape: shape after blocking, ``(..., blocks, k1)``.
        sub_shape: shape after sub-blocking, ``(..., blocks, k1/k2, k2)``.
        pad: zero elements appended to reach a multiple of ``k1``.
        needs_move: whether the block axis is not already trailing.
    """

    __slots__ = (
        "shape", "axis", "k1", "k2", "n", "pad", "needs_move",
        "moved_shape", "padded_shape", "blocked_shape", "sub_shape",
        "_scratch", "_tracked",
    )

    def __init__(self, shape: tuple[int, ...], axis: int, k1: int, k2: int):
        ndim = len(shape)
        axis = axis % ndim
        self.shape = shape
        self.axis = axis
        self.k1 = k1
        self.k2 = k2
        self.n = shape[axis]
        self.pad = (-self.n) % k1
        self.needs_move = axis != ndim - 1

        lead = tuple(s for i, s in enumerate(shape) if i != axis)
        self.moved_shape = lead + (self.n,)
        self.padded_shape = lead + (self.n + self.pad,)
        blocks = (self.n + self.pad) // k1
        self.blocked_shape = lead + (blocks, k1)
        self.sub_shape = lead + (blocks, k1 // k2, k2)
        self._scratch: np.ndarray | None = None
        #: True while the plan lives in the LRU; retained scratch of
        #: tracked plans counts toward the global budget.  Plans built
        #: directly (tests, ad-hoc use) stay untracked and unaccounted.
        self._tracked = False

    # ------------------------------------------------------------------
    # Blocking / restoring
    # ------------------------------------------------------------------
    def block(self, x: np.ndarray) -> np.ndarray:
        """Return ``x`` reshaped to :attr:`blocked_shape`.

        A pure view when the axis is trailing and divides ``k1`` (the
        common case — every nn layer and the whole sweep); otherwise the
        same moveaxis/pad/reshape sequence as the reference backend.
        """
        if self.needs_move:
            x = np.moveaxis(x, self.axis, -1)
        if self.pad:
            # manual zero-pad: np.pad's generic machinery costs ~30x the
            # single allocate-and-copy this actually is (values identical)
            padded = np.zeros(self.padded_shape, dtype=x.dtype)
            padded[..., : self.n] = x
            x = padded
        return x.reshape(self.blocked_shape)

    def restore(self, blocked_values: np.ndarray) -> np.ndarray:
        """Undo :meth:`block` on a freshly computed output array."""
        flat = blocked_values.reshape(self.padded_shape)
        if self.pad:
            flat = flat[..., : self.n]
        if self.needs_move:
            flat = np.moveaxis(flat, -1, self.axis)
        return flat

    # ------------------------------------------------------------------
    # Scratch checkout
    # ------------------------------------------------------------------
    def checkout(self) -> np.ndarray:
        """Borrow the blocked-shape float64 scratch buffer.

        The handoff happens under the cache lock, so two concurrent
        callers can never receive the same buffer — the second one gets a
        fresh allocation instead.
        """
        global _SCRATCH_BYTES
        with _LOCK:
            buf = self._scratch
            if buf is not None:
                self._scratch = None
                if self._tracked:
                    _SCRATCH_BYTES -= buf.nbytes
                return buf
        return np.empty(self.blocked_shape, dtype=np.float64)

    def release(self, buf: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`checkout`.

        Retained only while the plan holds no buffer and — for
        cache-tracked plans — the aggregate scratch budget
        (:data:`MAX_SCRATCH_BYTES`) has room.  A plan that was LRU-evicted
        while its buffer was checked out is untracked by then, so the
        buffer is retained without touching the global accounting and
        simply dies with the unreachable plan.
        """
        global _SCRATCH_BYTES
        with _LOCK:
            if self._scratch is not None:
                return
            if not self._tracked:
                self._scratch = buf
                return
            if _SCRATCH_BYTES + buf.nbytes <= MAX_SCRATCH_BYTES:
                self._scratch = buf
                _SCRATCH_BYTES += buf.nbytes

    def _untrack_locked(self) -> None:
        """Leave the accounted pool on eviction (caller holds the lock)."""
        global _SCRATCH_BYTES
        if self._tracked and self._scratch is not None:
            _SCRATCH_BYTES -= self._scratch.nbytes
            self._scratch = None
        self._tracked = False


def get_plan(shape: tuple[int, ...], axis: int, k1: int, k2: int,
             dtype: np.dtype) -> QuantPlan:
    """Fetch (or build and cache) the plan for one call signature.

    ``dtype`` is part of the key for forward compatibility with non-float64
    engines; the blocking geometry itself is dtype-independent.
    """
    global _HITS, _MISSES
    key = (shape, axis % max(len(shape), 1), k1, k2, np.dtype(dtype).str)
    with _LOCK:
        plan = _CACHE.get(key)
        if plan is not None:
            _HITS += 1
            _CACHE.move_to_end(key)
            return plan
        _MISSES += 1
        plan = QuantPlan(shape, axis, k1, k2)
        plan._tracked = True
        _CACHE[key] = plan
        while len(_CACHE) > MAX_PLANS:
            _, evicted = _CACHE.popitem(last=False)
            evicted._untrack_locked()
        return plan


# ----------------------------------------------------------------------
# Free-form scratch pool (epilogue temporaries)
# ----------------------------------------------------------------------
# The fused matmul epilogues need one full-size temporary per call (the
# GELU inner term).  Epilogue output shapes are not quantization-plan
# shapes, so they get their own shape-keyed pool with the same checkout
# semantics as the plan scratch: take-or-allocate under the lock, retain
# on release only while the shared MAX_SCRATCH_BYTES budget has room.
# Concurrent callers of the same shape simply allocate — never share.
_POOL: dict[tuple, list[np.ndarray]] = {}
#: retained buffers per (shape, dtype) key; more concurrency than this
#: degrades to plain allocation, exactly the pre-pool behaviour
_POOL_DEPTH = 4


def checkout_scratch(shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
    """Borrow a scratch array of the given shape (contents undefined)."""
    global _SCRATCH_BYTES
    key = (tuple(shape), np.dtype(dtype).str)
    with _LOCK:
        stack = _POOL.get(key)
        if stack:
            buf = stack.pop()
            _SCRATCH_BYTES -= buf.nbytes
            return buf
    return np.empty(shape, dtype=dtype)


def release_scratch(buf: np.ndarray) -> None:
    """Return a buffer obtained from :func:`checkout_scratch`.

    Retained only while the aggregate scratch budget
    (:data:`MAX_SCRATCH_BYTES`, shared with the plan scratch) has room and
    the per-shape stack is not already :data:`_POOL_DEPTH` deep; dropped
    (garbage-collected) otherwise.
    """
    global _SCRATCH_BYTES
    key = (buf.shape, buf.dtype.str)
    with _LOCK:
        stack = _POOL.get(key)
        depth = 0 if stack is None else len(stack)
        if depth < _POOL_DEPTH and _SCRATCH_BYTES + buf.nbytes <= MAX_SCRATCH_BYTES:
            if stack is None:
                # only materialize the key when something is actually
                # retained, so dropped releases cannot grow the dict
                stack = _POOL[key] = []
            stack.append(buf)
            _SCRATCH_BYTES += buf.nbytes


def clear_plan_cache() -> None:
    """Drop every cached plan (and its scratch buffers)."""
    global _HITS, _MISSES, _SCRATCH_BYTES
    with _LOCK:
        for plan in _CACHE.values():
            plan._untrack_locked()
        _CACHE.clear()
        for stack in _POOL.values():
            for buf in stack:
                _SCRATCH_BYTES -= buf.nbytes
        _POOL.clear()
        _HITS = 0
        _MISSES = 0


def plan_cache_info() -> dict:
    """Cache statistics for tests and diagnostics."""
    with _LOCK:
        return {"size": len(_CACHE), "hits": _HITS, "misses": _MISSES,
                "max_size": MAX_PLANS, "scratch_bytes": _SCRATCH_BYTES,
                "max_scratch_bytes": MAX_SCRATCH_BYTES,
                "pool_shapes": len(_POOL),
                "pool_buffers": sum(len(s) for s in _POOL.values())}
