"""The reference quantization backend: the original straight-line NumPy path.

This is the correctness oracle for the subsystem.  It favours clarity over
speed — every intermediate (block maxima, grid steps, codes) is computed
with plain NumPy expressions in the order the paper presents them (Figure
5), so the implementation can be audited line-by-line against the text.
The ``"numpy"`` fast backend must reproduce its outputs bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..core.rounding import apply_rounding
from ..core.scaling import amax_scale, exponent_range, floor_log2
from .base import KernelBackend, QuantizeResult

__all__ = ["ReferenceBackend"]


class ReferenceBackend(KernelBackend):
    """Legacy unfused engine, kept as the bit-exactness oracle."""

    name = "reference"

    def quantize(self, x, config, axis, rounding, rng, scale_override, detailed):
        blocked, restore = _to_blocks(x, config.k1, axis)

        if config.s_type == "pow2":
            result = _quantize_pow2(blocked, config, rounding, rng)
        elif config.ss_type == "int":
            result = _quantize_vsq(blocked, config, rounding, rng, scale_override)
        else:
            result = _quantize_int(blocked, config, rounding, rng, scale_override)

        values = restore(result.values)
        if not detailed:
            return values
        result.values = values
        return result


def _to_blocks(x, k, axis):
    """Reshape so the chosen axis becomes trailing ``(blocks, k)`` pairs.

    Pads with zeros to a multiple of ``k``; zero padding never influences a
    block maximum, so it is numerically inert.  Returns the blocked view and
    a closure undoing the transformation.
    """
    moved = np.moveaxis(x, axis, -1)
    n = moved.shape[-1]
    pad = (-n) % k
    if pad:
        width = [(0, 0)] * (moved.ndim - 1) + [(0, pad)]
        moved = np.pad(moved, width)
    blocked = moved.reshape(moved.shape[:-1] + ((n + pad) // k, k))

    def restore(values):
        flat = values.reshape(values.shape[:-2] + (n + pad,))
        if pad:
            flat = flat[..., :n]
        return np.moveaxis(flat, -1, axis)

    return blocked, restore


def _quantize_pow2(blocked, config, rounding, rng):
    """BFP (d2 = 0) and MX (pow2 sub-scales): hardware-managed scaling."""
    lo, hi = exponent_range(config.d1)
    amax = np.max(np.abs(blocked), axis=-1)
    exp = np.clip(floor_log2(amax), lo, hi)  # shared block exponent E

    if config.ss_type == "pow2":
        shape = blocked.shape[:-1] + (config.num_subblocks, config.k2)
        sub = blocked.reshape(shape)
        sub_amax = np.max(np.abs(sub), axis=-1)
        sub_exp = np.clip(floor_log2(sub_amax), lo, hi)
        tau = np.clip(exp[..., None] - sub_exp, 0, config.beta)
        # grid step per element: 2^(E - tau - (m - 1))
        step_sub = np.exp2((exp[..., None] - tau - (config.m - 1)).astype(np.float64))
        step = np.repeat(step_sub, config.k2, axis=-1).reshape(blocked.shape)
        sub_scale = np.exp2(-tau.astype(np.float64))
    else:
        step = np.exp2((exp - (config.m - 1)).astype(np.float64))[..., None]
        step = np.broadcast_to(step, blocked.shape)
        sub_scale = None

    codes = apply_rounding(blocked / step, rounding, rng)
    codes = np.clip(codes, -config.qmax, config.qmax)
    values = codes * step
    scale = np.exp2(exp.astype(np.float64))
    return QuantizeResult(values, codes, scale, sub_scale, step)


def _quantize_int(blocked, config, rounding, rng, scale_override):
    """Software-scaled symmetric integer quantization (FP32 scale)."""
    if scale_override is None:
        amax = np.max(np.abs(blocked), axis=-1)
        scale = _as_fp32(amax_scale(amax, config.qmax))
    else:
        scale = _broadcast_override(scale_override, blocked.shape[:-1])

    step = scale[..., None]
    codes = apply_rounding(blocked / step, rounding, rng)
    codes = np.clip(codes, -config.qmax, config.qmax)
    values = codes * step
    return QuantizeResult(values, codes, scale, None, np.broadcast_to(step, blocked.shape))


def _quantize_vsq(blocked, config, rounding, rng, scale_override):
    """VSQ: FP32 level-1 scale plus d2-bit unsigned integer sub-scales.

    Per-sub-block ideal scales are themselves quantized against the level-1
    scale; rounding the sub-scale *up* (ceil) guarantees elements never clip,
    the standard VS-Quant recipe.
    """
    ss_qmax = (1 << config.d2) - 1
    shape = blocked.shape[:-1] + (config.num_subblocks, config.k2)
    sub = blocked.reshape(shape)
    sigma = amax_scale(np.max(np.abs(sub), axis=-1), config.qmax)
    sigma = np.where(np.max(np.abs(sub), axis=-1) <= 0, 0.0, sigma)

    if scale_override is None:
        scale = np.max(sigma, axis=-1) / ss_qmax
        scale = np.where(scale <= 0, 1.0, scale)
        scale = _as_fp32(scale)
    else:
        scale = _broadcast_override(scale_override, blocked.shape[:-1])

    sub_codes = np.ceil(sigma / scale[..., None])
    sub_codes = np.clip(sub_codes, 0, ss_qmax)

    step_sub = scale[..., None] * sub_codes
    safe_step = np.where(step_sub <= 0, 1.0, step_sub)
    codes_sub = apply_rounding(sub / safe_step[..., None], rounding, rng)
    codes_sub = np.clip(codes_sub, -config.qmax, config.qmax)
    codes_sub = np.where(step_sub[..., None] <= 0, 0.0, codes_sub)
    values = (codes_sub * step_sub[..., None]).reshape(blocked.shape)
    codes = codes_sub.reshape(blocked.shape)
    step = np.repeat(step_sub, config.k2, axis=-1).reshape(blocked.shape)
    return QuantizeResult(values, codes, scale, sub_codes, step)


def _broadcast_override(scale_override, block_shape):
    """FP32-round a scale override, then broadcast it as a *view*.

    The fp32 round-trip happens on the (typically scalar) override before
    broadcasting, so a scalar override never materializes a full per-block
    array — it stays a zero-stride view through the whole kernel.  The
    round-trip is idempotent, so the values are identical to rounding after
    materialization.
    """
    override = _as_fp32(np.asarray(scale_override, dtype=np.float64))
    return np.broadcast_to(override, block_shape)


def _as_fp32(scale):
    """Scales are stored in FP32 by the software formats; round-trip them."""
    return scale.astype(np.float32).astype(np.float64)
