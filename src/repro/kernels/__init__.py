"""The fast-path quantization kernel subsystem.

Every quantization in the library — :func:`repro.core.quantize.bdr_quantize`,
the format adapters, the nn compute flow, and the Figure 7 sweep — dispatches
through a registered :class:`~repro.kernels.base.KernelBackend`:

* ``"numpy"`` (default): fused, allocation-lean kernels with plan-cached
  blocking and scratch reuse (:mod:`repro.kernels.numpy_backend`);
* ``"reference"``: the original straight-line engine, kept as the
  bit-exactness oracle (:mod:`repro.kernels.reference`).

Select with ``REPRO_KERNEL_BACKEND``, :func:`set_backend`, or the
:func:`use_backend` context manager.  See ``docs/PERFORMANCE.md``.
"""

from .base import EPILOGUES, KernelBackend, QuantizeResult, gelu_reference
from .plan import (
    QuantPlan,
    checkout_scratch,
    clear_plan_cache,
    get_plan,
    plan_cache_info,
    release_scratch,
)
from .registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    get_backend,
    list_backends,
    register_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "KernelBackend",
    "QuantizeResult",
    "EPILOGUES",
    "gelu_reference",
    "QuantPlan",
    "get_plan",
    "clear_plan_cache",
    "plan_cache_info",
    "checkout_scratch",
    "release_scratch",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "get_backend",
    "set_backend",
    "use_backend",
    "register_backend",
    "list_backends",
]
