"""The uniform interface every quantization format implements.

A :class:`Format` is a *fake quantizer*: it maps FP32 arrays to arrays whose
values are exactly representable in the target encoding, which is how the
paper's CUDA emulation library behaves ("reproduces numerical results
identical to what a native-MX silicon would produce", Section VI).
"""

from __future__ import annotations

import abc

import numpy as np


class Format(abc.ABC):
    """A named, stateless-or-stateful quantization format."""

    #: display name used in tables, figures and the registry
    name: str = "format"

    @abc.abstractmethod
    def quantize(
        self,
        x: np.ndarray,
        axis: int = -1,
        rounding: str = "nearest",
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Return the dequantized (fake-quantized) version of ``x``.

        ``axis`` is the reduction dimension of the consuming dot product;
        block formats quantize along it.
        """

    @property
    @abc.abstractmethod
    def bits_per_element(self) -> float:
        """Average storage bits per element, including amortized scales."""

    def reset_state(self) -> None:
        """Clear any adaptive state (e.g. delayed-scaling history)."""

    def __call__(self, x: np.ndarray, axis: int = -1, **kwargs) -> np.ndarray:
        return self.quantize(x, axis=axis, **kwargs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class IdentityFormat(Format):
    """FP32 pass-through; the baseline 'format' in every experiment."""

    def __init__(self, name: str = "FP32"):
        self.name = name

    def quantize(self, x, axis=-1, rounding="nearest", rng=None):
        return np.asarray(x, dtype=np.float64).copy()

    @property
    def bits_per_element(self) -> float:
        return 32.0
