"""The uniform interface every quantization format implements.

A :class:`Format` is a *fake quantizer*: it maps FP32 arrays to arrays whose
values are exactly representable in the target encoding, which is how the
paper's CUDA emulation library behaves ("reproduces numerical results
identical to what a native-MX silicon would produce", Section VI).
"""

from __future__ import annotations

import abc

import numpy as np


class Format(abc.ABC):
    """A named, stateless-or-stateful quantization format."""

    #: display name used in tables, figures and the registry
    name: str = "format"

    @abc.abstractmethod
    def quantize(
        self,
        x: np.ndarray,
        axis: int = -1,
        rounding: str = "nearest",
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Return the dequantized (fake-quantized) version of ``x``.

        ``axis`` is the reduction dimension of the consuming dot product;
        block formats quantize along it.
        """

    @property
    @abc.abstractmethod
    def bits_per_element(self) -> float:
        """Average storage bits per element, including amortized scales."""

    def reset_state(self) -> None:
        """Clear any adaptive state (e.g. delayed-scaling history)."""

    @property
    def is_stateless(self) -> bool:
        """True when quantization is row-independent and history-free.

        A stateless format satisfies ``Q(concat(a, b)) == concat(Q(a),
        Q(b))`` along any non-block axis and gives identical results on
        repeated calls — which lets callers batch many vectors into one
        call (:func:`repro.fidelity.qsnr.measure_qsnr`) or memoize outputs
        (:mod:`repro.nn.quantized`).  Defaults to False; subclasses opt in.
        """
        return False

    def cache_key(self):
        """Hashable identity for memoizing quantized outputs.

        Two format instances with equal keys must produce bit-identical
        ``quantize`` results for the same input and arguments.  ``None``
        (the default) marks the format as non-memoizable (stateful, or not
        opted in).
        """
        return None

    def quantize_partial(
        self,
        x: np.ndarray,
        axis: int = -1,
        rounding: str = "nearest",
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Quantize a single (possibly partial) block along ``axis``.

        Callers guarantee the length along ``axis`` does not exceed one
        block of this format; the result must be bit-identical to
        :meth:`quantize` on the same input.  Block formats override this
        with a kernel path that skips full-tensor blocking machinery (the
        KV-cache tail requantization hot path); the default just delegates.
        """
        return self.quantize(x, axis=axis, rounding=rounding, rng=rng)

    def block_size(self) -> int | None:
        """Elements per level-1 block along the quantization axis.

        ``1`` means element-wise (scalar formats), ``None`` means unknown —
        consumers that need block alignment (the quantized KV cache) must
        then treat the whole axis as one unsealed block.
        """
        return None

    def __call__(self, x: np.ndarray, axis: int = -1, **kwargs) -> np.ndarray:
        return self.quantize(x, axis=axis, **kwargs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class IdentityFormat(Format):
    """FP32 pass-through; the baseline 'format' in every experiment."""

    def __init__(self, name: str = "FP32"):
        self.name = name

    def quantize(self, x, axis=-1, rounding="nearest", rng=None):
        return np.asarray(x, dtype=np.float64).copy()

    @property
    def is_stateless(self) -> bool:
        return True

    def cache_key(self):
        return ("identity",)

    def block_size(self) -> int | None:
        return 1

    @property
    def bits_per_element(self) -> float:
        return 32.0
