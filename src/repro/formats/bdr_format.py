"""Format adapter for any :class:`~repro.core.bdr.BDRConfig` design point.

One class serves the four BDR-native families:

* MX (``pow2``/``pow2``) and MSFP/BFP (``pow2`` only) — scaling is purely
  hardware-managed from the current block contents, so no software state.
* INT (``fp32`` scale) and VSQ (``fp32`` + integer sub-scale) — the FP32
  level-1 scale is software-managed; either just-in-time from the current
  tensor or *delayed* from a window of past tensors, matching the Figure 7
  caption.
"""

from __future__ import annotations

import numpy as np

from ..core.bdr import BDRConfig
from ..core.quantize import bdr_quantize, bdr_quantize_partial
from ..core.scaling import DelayedScaler
from .base import Format

__all__ = ["BDRFormat", "MXFormat", "BFPFormat", "IntFormat", "VSQFormat"]


class BDRFormat(Format):
    """Quantize with a BDR config, handling software scaling when needed.

    Args:
        config: the design point.
        scaling: for ``fp32``-scaled families only: ``"jit"`` derives the
            level-1 scale from the current tensor, ``"delayed"`` from a
            windowed amax history.  Hardware (``pow2``) families ignore it.
        window: delayed-scaling history length.
    """

    def __init__(self, config: BDRConfig, scaling: str = "jit", window: int = 16):
        if scaling not in ("jit", "delayed"):
            raise ValueError(f"unknown scaling mode {scaling!r}")
        self.config = config
        self.scaling = scaling
        self.window = window
        self.name = config.label
        self._scaler: DelayedScaler | None = None
        if self._software_scaled and scaling == "delayed":
            self._scaler = DelayedScaler(qmax=self._global_qmax, window=window)

    @property
    def _software_scaled(self) -> bool:
        return self.config.s_type == "fp32"

    @property
    def _global_qmax(self) -> float:
        """Largest representable magnitude relative to the level-1 scale."""
        qmax = float(self.config.qmax)
        if self.config.ss_type == "int":
            qmax *= (1 << self.config.d2) - 1
        return qmax

    def quantize(self, x, axis=-1, rounding="nearest", rng=None):
        x = np.asarray(x, dtype=np.float64)
        override = None
        if self._scaler is not None:
            override = self._scaler.scale_and_observe(x)
        return bdr_quantize(
            x, self.config, axis=axis, rounding=rounding, rng=rng, scale_override=override
        )

    def quantize_partial(self, x, axis=-1, rounding="nearest", rng=None):
        """Single-block quantize for the KV-cache tail (bit-identical).

        Delayed scaling derives the level-1 scale from a cross-call amax
        history, so it must keep the exact observation semantics of
        :meth:`quantize`; everything else goes through the lean
        partial-block kernel entry.
        """
        if self._scaler is not None:
            return self.quantize(x, axis=axis, rounding=rounding, rng=rng)
        x = np.asarray(x, dtype=np.float64)
        return bdr_quantize_partial(
            x, self.config, axis=axis, rounding=rounding, rng=rng
        )

    def block_size(self) -> int | None:
        return self.config.k1

    @property
    def bits_per_element(self) -> float:
        return self.config.bits_per_element

    @property
    def is_stateless(self) -> bool:
        """Hardware-scaled and JIT fp32-scaled BDR formats derive every
        scale from the current block contents alone, so they are
        row-independent; only delayed scaling carries history."""
        return self._scaler is None

    def cache_key(self):
        if self._scaler is not None:
            return None
        return ("bdr", self.config)

    def reset_state(self):
        if self._scaler is not None:
            self._scaler = DelayedScaler(qmax=self._global_qmax, window=self.window)


class MXFormat(BDRFormat):
    """Shared-microexponent format (hardware-managed scaling).

    ``scaling``/``window`` are accepted for option-vocabulary uniformity
    with the software-scaled families; BDR ``pow2`` scaling ignores them.
    """

    def __init__(self, m: int, k1: int = 16, k2: int = 2, d1: int = 8, d2: int = 1,
                 name: str | None = None, scaling: str = "jit", window: int = 16):
        config = BDRConfig.mx(m=m, k1=k1, k2=k2, d1=d1, d2=d2)
        if name:
            config = config.with_name(name)
        super().__init__(config, scaling=scaling, window=window)


class BFPFormat(BDRFormat):
    """Conventional block floating-point (MSFP-style)."""

    def __init__(self, m: int, k1: int = 16, d1: int = 8, name: str | None = None,
                 scaling: str = "jit", window: int = 16):
        config = BDRConfig.bfp(m=m, k1=k1, d1=d1)
        if name:
            config = config.with_name(name)
        super().__init__(config, scaling=scaling, window=window)


class IntFormat(BDRFormat):
    """Software-scaled symmetric integers (``scaled INT4`` / ``INT8``)."""

    def __init__(self, bits: int, k1: int = 1024, scaling: str = "delayed",
                 window: int = 16, name: str | None = None):
        if bits < 2:
            raise ValueError("integer formats need at least 2 bits (sign + magnitude)")
        config = BDRConfig.int_sw(m=bits - 1, k1=k1)
        config = config.with_name(name or f"scaled INT{bits}")
        super().__init__(config, scaling=scaling, window=window)


class VSQFormat(BDRFormat):
    """Per-vector scaled quantization [23]: INT elements + INT sub-scales."""

    def __init__(self, bits: int, d2: int = 6, k1: int = 1024, k2: int = 16,
                 scaling: str = "delayed", window: int = 16, name: str | None = None):
        if bits < 2:
            raise ValueError("VSQ element formats need at least 2 bits")
        config = BDRConfig.vsq(m=bits - 1, d2=d2, k1=k1, k2=k2)
        config = config.with_name(name or f"VSQ{bits}")
        super().__init__(config, scaling=scaling, window=window)
