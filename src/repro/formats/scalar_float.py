"""Parametric scalar (per-element) floating-point formats.

Covers BF16, FP16 and the narrow-precision formats of Figure 7: FP8
(E4M3 / E5M2 / E3M4), FP6 (E3M2 / E2M3) and FP4 (E2M1 / E1M2 / E3M0).

Encoding conventions follow industry practice:

* ``"ieee"`` — the top exponent field is reserved for inf/NaN (FP16, BF16,
  FP8-E5M2).  Max normal is ``2^bias * (2 - 2^-m)``.
* ``"fn"`` — finite with NaN only at the all-ones code (FP8-E4M3 per [37]):
  the extra exponent value is usable, but the top mantissa pattern is NaN,
  so max normal is ``2^(bias+1) * (2 - 2^(1-m))`` (448 for E4M3).
* ``"fnuz_all"`` — fully finite (OCP-style FP6/FP4): every code is a value,
  max normal ``2^(bias+1) * (2 - 2^-m)`` (6 for E2M1, 28 for E3M2).

Subnormals are always supported; quantization saturates at the max normal
(the standard behaviour of narrow-float conversion hardware).

In BDR terms (Table I), a scalar float deployed for training is a two-level
format: a coarse software FP32 scale (Transformer-Engine-style delayed
scaling over ``k1 ~ 10K``) composed with the per-element power-of-two
exponent (``k2 = 1``, ``d2 = e``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rounding import apply_rounding
from ..core.scaling import DelayedScaler, floor_log2
from .base import Format

__all__ = [
    "FloatSpec",
    "ScalarFloatFormat",
    "FP8_E4M3",
    "FP8_E5M2",
    "FP8_E3M4",
    "FP6_E3M2",
    "FP6_E2M3",
    "FP4_E2M1",
    "FP4_E1M2",
    "FP4_E3M0",
    "BF16",
    "FP16",
]

#: Encoding conventions for the top of the exponent range.
ENCODINGS = ("ieee", "fn", "fnuz_all")


@dataclass(frozen=True)
class FloatSpec:
    """Static description of a scalar floating-point format."""

    exponent_bits: int
    mantissa_bits: int
    encoding: str = "fnuz_all"
    name: str = ""

    def __post_init__(self):
        if self.exponent_bits < 1:
            raise ValueError("need at least one exponent bit")
        if self.mantissa_bits < 0:
            raise ValueError("mantissa bits must be >= 0")
        if self.encoding not in ENCODINGS:
            raise ValueError(f"encoding must be one of {ENCODINGS}")
        if not self.name:
            object.__setattr__(
                self, "name", f"FP{self.total_bits} - E{self.exponent_bits}M{self.mantissa_bits}"
            )

    @property
    def total_bits(self) -> int:
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def emax(self) -> int:
        """Largest usable unbiased exponent."""
        if self.encoding == "ieee":
            return self.bias
        return self.bias + 1

    @property
    def emin(self) -> int:
        """Smallest normal unbiased exponent (``1 - bias``)."""
        return 1 - self.bias

    @property
    def max_value(self) -> float:
        """Largest finite magnitude."""
        m = self.mantissa_bits
        if self.encoding == "fn":
            # all-ones is NaN, so the top mantissa pattern is unusable
            frac = 2.0 - 2.0 ** (1 - m) if m > 0 else 0.0
            if m == 0:
                raise ValueError("'fn' encoding needs mantissa bits")
        else:
            frac = 2.0 - 2.0 ** (-m)
        return float(2.0**self.emax * frac)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive magnitude (the subnormal grid step)."""
        return float(2.0 ** (self.emin - self.mantissa_bits))

    def decode_all_values(self) -> np.ndarray:
        """Enumerate every non-negative finite value (for tests/plots)."""
        values = {0.0}
        step = self.min_subnormal
        # subnormals
        for code in range(1, 1 << self.mantissa_bits):
            values.add(code * step)
        # normals
        for e in range(self.emin, self.emax + 1):
            for code in range(1 << self.mantissa_bits):
                v = (1.0 + code * 2.0**-self.mantissa_bits) * 2.0**e
                if v <= self.max_value:
                    values.add(v)
        return np.array(sorted(values))


def quantize_to_spec(
    x: np.ndarray,
    spec: FloatSpec,
    rounding: str = "nearest",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Round ``x`` elementwise to the nearest value of ``spec``, saturating."""
    x = np.asarray(x, dtype=np.float64)
    exp = np.clip(floor_log2(x), spec.emin, spec.emax)
    step = np.exp2((exp - spec.mantissa_bits).astype(np.float64))
    q = apply_rounding(x / step, rounding, rng) * step
    return np.clip(q, -spec.max_value, spec.max_value)


class ScalarFloatFormat(Format):
    """A scalar float with an optional software level-1 scale.

    Args:
        spec: the element encoding.
        scaling: ``"none"`` (raw cast — the inference direct-cast path),
            ``"jit"`` (scale from the current tensor's amax) or
            ``"delayed"`` (windowed-amax history per [40], the training
            configuration used for Figure 7).
        window: history length for delayed scaling.
        k1: nominal software block granularity, for bit accounting only.
    """

    def __init__(
        self,
        spec: FloatSpec,
        scaling: str = "none",
        window: int = 16,
        k1: int = 10240,
    ):
        if scaling not in ("none", "jit", "delayed"):
            raise ValueError(f"unknown scaling mode {scaling!r}")
        self.spec = spec
        self.scaling = scaling
        self.k1 = k1
        self.name = spec.name
        self._scaler = DelayedScaler(qmax=spec.max_value, window=window)

    def quantize(self, x, axis=-1, rounding="nearest", rng=None):
        x = np.asarray(x, dtype=np.float64)
        if self.scaling == "none":
            return quantize_to_spec(x, self.spec, rounding, rng)
        if self.scaling == "jit":
            amax = float(np.max(np.abs(x), initial=0.0))
            s = amax / self.spec.max_value if amax > 0 else 1.0
        else:
            s = self._scaler.scale_and_observe(x)
        s = float(np.float32(s)) if s > 0 else 1.0
        return quantize_to_spec(x / s, self.spec, rounding, rng) * s

    @property
    def bits_per_element(self) -> float:
        bits = float(self.spec.total_bits)
        if self.scaling != "none":
            bits += 32.0 / self.k1
        return bits

    @property
    def is_stateless(self) -> bool:
        """Only the raw direct cast is row-independent: JIT scaling reads
        the amax of the *whole* tensor, so batching would change it."""
        return self.scaling == "none"

    def cache_key(self):
        if self.scaling != "none":
            return None
        return ("scalar_float", self.spec)

    def block_size(self) -> int | None:
        """Element-wise when unscaled; scaled modes normalize over the
        whole tensor, so there is no block alignment to exploit."""
        return 1 if self.scaling == "none" else None

    def reset_state(self):
        self._scaler = DelayedScaler(qmax=self.spec.max_value, window=self._scaler.window)


# ----------------------------------------------------------------------
# Named specs used throughout the paper
# ----------------------------------------------------------------------
FP8_E4M3 = FloatSpec(4, 3, "fn", "FP8 - E4M3")
FP8_E5M2 = FloatSpec(5, 2, "ieee", "FP8 - E5M2")
FP8_E3M4 = FloatSpec(3, 4, "fnuz_all", "FP8 - E3M4")
FP6_E3M2 = FloatSpec(3, 2, "fnuz_all", "FP6 - E3M2")
FP6_E2M3 = FloatSpec(2, 3, "fnuz_all", "FP6 - E2M3")
FP4_E2M1 = FloatSpec(2, 1, "fnuz_all", "FP4 - E2M1")
FP4_E1M2 = FloatSpec(1, 2, "fnuz_all", "FP4 - E1M2")
FP4_E3M0 = FloatSpec(3, 0, "fnuz_all", "FP4 - E3M0")
BF16 = FloatSpec(8, 7, "ieee", "BF16")
FP16 = FloatSpec(5, 10, "ieee", "FP16")
