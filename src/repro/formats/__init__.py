"""Every quantization format family evaluated by the paper, behind one
uniform :class:`~repro.formats.base.Format` interface."""

from .base import Format, IdentityFormat
from .bdr_format import BDRFormat, BFPFormat, IntFormat, MXFormat, VSQFormat
from .registry import (
    FIGURE7_FORMATS,
    get_format,
    is_registered,
    list_formats,
    register_format,
)
from .scalar_float import FloatSpec, ScalarFloatFormat
from .three_level import ThreeLevelFormat

__all__ = [
    "Format",
    "IdentityFormat",
    "BDRFormat",
    "BFPFormat",
    "IntFormat",
    "MXFormat",
    "VSQFormat",
    "FIGURE7_FORMATS",
    "get_format",
    "is_registered",
    "list_formats",
    "register_format",
    "FloatSpec",
    "ScalarFloatFormat",
    "ThreeLevelFormat",
]
