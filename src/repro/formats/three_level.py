"""Three-level scaling: the paper's stated extension beyond two levels.

Section III: "BDR can naturally extend beyond two levels, with the MX
variants as prime candidates ... introducing an even higher-level parent
global scaling factor in software using high-precision FP32 scaling factors
over an even coarser granularity at up to ~1K."

:class:`ThreeLevelFormat` composes exactly that: a software FP32 parent
scale over ``k0`` elements (just-in-time or delayed) wrapped around any
hardware-scaled BDR format.  Because the inner MX scale is a power of two
derived from the block max, the parent scale only helps when the data's
dynamic range pushes the 8-bit shared exponent toward its clamp — it is a
range-extension mechanism, matching the paper's framing.
"""

from __future__ import annotations

import numpy as np

from ..core.bdr import BDRConfig
from ..core.quantize import bdr_quantize
from ..core.scaling import DelayedScaler
from .base import Format

__all__ = ["ThreeLevelFormat"]


class ThreeLevelFormat(Format):
    """FP32 parent scale (software, per ``k0``) over a BDR inner format.

    Args:
        inner: the hardware-scaled config (typically an MX variant).
        k0: parent block granularity (paper: "up to ~1K").
        scaling: ``"jit"`` derives the parent scale from the current
            tensor's amax; ``"delayed"`` from a windowed history.
        window: delayed-scaling history length.
    """

    def __init__(
        self,
        inner: BDRConfig,
        k0: int = 1024,
        scaling: str = "jit",
        window: int = 16,
    ):
        if inner.s_type != "pow2":
            raise ValueError("the parent scale wraps hardware-scaled formats only")
        if k0 <= inner.k1:
            raise ValueError(f"parent granularity k0 ({k0}) must exceed k1 ({inner.k1})")
        if scaling not in ("jit", "delayed"):
            raise ValueError(f"unknown scaling mode {scaling!r}")
        self.inner = inner
        self.k0 = k0
        self.scaling = scaling
        self.name = f"{inner.label}+fp32/{k0}"
        # normalize the parent target to ~1.0: the inner format handles the
        # per-block magnitude, the parent only recenters the global range
        self._scaler = DelayedScaler(qmax=1.0, window=window) if scaling == "delayed" else None

    @property
    def bits_per_element(self) -> float:
        return self.inner.bits_per_element + 32.0 / self.k0

    def quantize(self, x, axis=-1, rounding="nearest", rng=None):
        x = np.asarray(x, dtype=np.float64)
        if self._scaler is not None:
            scale = self._scaler.scale_and_observe(x)
        else:
            amax = float(np.max(np.abs(x), initial=0.0))
            scale = amax if amax > 0 else 1.0
        # the parent scale is stored in FP32; saturate instead of overflowing
        fp32_max = float(np.finfo(np.float32).max)
        scale = float(np.float32(min(scale, fp32_max)))
        inner_q = bdr_quantize(x / scale, self.inner, axis=axis, rounding=rounding, rng=rng)
        return inner_q * scale

    def reset_state(self):
        if self._scaler is not None:
            self._scaler = DelayedScaler(qmax=1.0, window=self._scaler.window)
