"""Registry of every named format appearing in the paper's evaluation.

Names are case-insensitive.  Each lookup constructs a *fresh* format object
so that stateful formats (delayed scaling) never share history between
callers.
"""

from __future__ import annotations

import difflib
import re
from collections.abc import Callable

from . import scalar_float as sf
from .base import Format, IdentityFormat
from .bdr_format import BFPFormat, IntFormat, MXFormat, VSQFormat
from .scalar_float import ScalarFloatFormat

__all__ = [
    "get_format",
    "is_registered",
    "list_formats",
    "normalize_format_name",
    "register_format",
    "FIGURE7_FORMATS",
]

_FACTORIES: dict[str, Callable[[], Format]] = {}


def normalize_format_name(name: str) -> str:
    """The registry's key normalization: lowercase, spaces/dashes -> '_'."""
    return re.sub(r"[\s\-]+", "_", name.strip().lower())


def register_format(
    name: str, factory: Callable[[], Format], overwrite: bool = False
) -> None:
    """Register a format factory under a (case-insensitive) name.

    Names are stored under the same normalization lookups use, so any
    spelling that registers also resolves.  ``overwrite=True`` replaces an
    existing registration — the escape hatch for experiments that
    re-register tweaked factories in one process.  The default stays
    strict so accidental collisions fail loudly.
    """
    key = normalize_format_name(name)
    if key in _FACTORIES and not overwrite:
        raise ValueError(
            f"format {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _FACTORIES[key] = factory


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered factory."""
    return normalize_format_name(name) in _FACTORIES


def get_format(name: str, **overrides) -> Format:
    """Construct a registered format by name.

    Keyword overrides are forwarded for formats whose factory accepts them
    (e.g. ``get_format("fp8_e4m3", scaling="delayed")``).
    """
    key = normalize_format_name(name)
    try:
        factory = _FACTORIES[key]
    except KeyError:
        close = difflib.get_close_matches(key, _FACTORIES, n=3, cutoff=0.6)
        if close:
            hint = f"did you mean {', '.join(repr(c) for c in close)}?"
        else:
            hint = f"known formats: {', '.join(sorted(_FACTORIES))}"
        raise ValueError(f"unknown format {name!r}; {hint}") from None
    return factory(**overrides) if overrides else factory()


def list_formats() -> list[str]:
    """All registered names, sorted."""
    return sorted(_FACTORIES)


def _register_defaults() -> None:
    register_format("fp32", lambda: IdentityFormat("FP32"))
    # MX family (Table II).  The factories accept (and ignore) software
    # scaling options so hardware- and software-scaled formats share one
    # spec-option vocabulary.
    register_format("mx9", lambda **kw: MXFormat(m=7, name="MX9", **kw))
    register_format("mx6", lambda **kw: MXFormat(m=4, name="MX6", **kw))
    register_format("mx4", lambda **kw: MXFormat(m=2, name="MX4", **kw))
    # MSFP / conventional BFP [24]; MSFP-N packs 1 sign + (N-9) mantissa
    # bits + an 8-bit shared exponent over a 16-element bounding box.
    register_format("msfp16", lambda **kw: BFPFormat(m=7, k1=16, name="MSFP16", **kw))
    register_format("msfp12", lambda **kw: BFPFormat(m=3, k1=16, name="MSFP12", **kw))
    # Software-scaled integers
    register_format(
        "int8", lambda scaling="delayed": IntFormat(8, scaling=scaling, name="scaled INT8")
    )
    register_format(
        "int4", lambda scaling="delayed": IntFormat(4, scaling=scaling, name="scaled INT4")
    )
    # VSQ [23]; d2 chosen per-figure as best-of {4, 6, 8, 10}
    for bits in (4, 6, 8):
        register_format(
            f"vsq{bits}",
            lambda bits=bits, d2=6, scaling="delayed": VSQFormat(
                bits, d2=d2, scaling=scaling
            ),
        )
    # Scalar floats
    for spec in (
        sf.FP8_E4M3,
        sf.FP8_E5M2,
        sf.FP8_E3M4,
        sf.FP6_E3M2,
        sf.FP6_E2M3,
        sf.FP4_E2M1,
        sf.FP4_E1M2,
        sf.FP4_E3M0,
        sf.BF16,
        sf.FP16,
    ):
        key = spec.name.lower().replace(" - ", "_").replace("-", "_").replace(" ", "")
        register_format(
            key,
            lambda spec=spec, scaling="delayed": ScalarFloatFormat(spec, scaling=scaling),
        )


_register_defaults()

#: The named design points plotted in Figure 7.
FIGURE7_FORMATS = (
    "mx4",
    "mx6",
    "mx9",
    "fp8_e5m2",
    "fp8_e4m3",
    "fp8_e3m4",
    "fp6_e3m2",
    "fp6_e2m3",
    "fp4_e2m1",
    "fp4_e1m2",
    "fp4_e3m0",
    "msfp16",
    "msfp12",
    "int4",
    "int8",
    "vsq4",
    "vsq6",
    "vsq8",
)
