"""Direct cast: the drop-in replacement deployment path (Section V).

"We take a pre-trained model in higher precision (e.g., FP32), perform a
straight cast into MX data format, and evaluate the model quality."

Two direct-cast styles are provided:

* :func:`direct_cast` — install inference QuantSpecs so weights *and*
  activations are quantized on the fly inside every tensor op (what MX
  silicon does); the (w, a) tuples of Table IV map directly onto this.
* :func:`cast_weights` — additionally bake the weight quantization into the
  stored arrays (the storage-quantized deployment used for DLRM embedding
  tables).
"""

from __future__ import annotations

from ..formats.base import Format
from ..nn.layers import Embedding, Module
from ..nn.quantized import QuantSpec
from ..spec.grammar import as_format
from ..spec.policy import PolicySpec, compile_policy, policy_from_dict
from .policy import apply_quant_policy, quantizable_modules, uniform_policy

__all__ = ["direct_cast", "cast_weights", "clear_quantization"]


def _as_policy(obj) -> "PolicySpec | None":
    """Coerce a PolicySpec or its ``to_dict`` payload; None otherwise."""
    if isinstance(obj, PolicySpec):
        return obj
    if isinstance(obj, dict) and "kind" in obj:
        return policy_from_dict(obj)
    return None


def direct_cast(
    model: Module,
    weight_format: "str | dict | Format | PolicySpec | None",
    activation_format: "str | dict | Format | None" = None,
    quantize_embeddings: bool = False,
) -> Module:
    """Configure a trained model for quantized inference, in place.

    Args:
        model: a trained model (its FP32 parameters are left untouched).
        weight_format: weight format — any spec spelling the
            :mod:`repro.spec` layer accepts — or a declarative
            :class:`~repro.spec.policy.PolicySpec` (or its ``to_dict``
            payload) for per-layer deployments, or ``None`` for FP32.
        activation_format: activation format; defaults to the weight
            format when omitted (the paper's symmetric direct cast).
            Not accepted together with a policy (the policy's payloads
            already carry per-role formats).
        quantize_embeddings: also storage-quantize embedding tables
            (the memory-intensive recommendation-model optimization).
    """
    policy = _as_policy(weight_format)
    if policy is not None:
        if activation_format is not None:
            raise ValueError("activation_format is not valid with a policy")
        if quantize_embeddings:
            raise ValueError("quantize_embeddings is not valid with a policy")
        apply_quant_policy(model, policy)
        return model
    if weight_format is None and activation_format is None:
        return clear_quantization(model)
    act = activation_format if activation_format is not None else weight_format
    w_fmt = as_format(weight_format) if weight_format is not None else None
    act_fmt = as_format(act) if act is not None else None
    if act_fmt is not None and act_fmt is w_fmt:
        # one Format instance was passed for both roles: re-derive a fresh
        # activation copy so stateful scaling histories stay per-role
        act_fmt = _fresh_copy(act_fmt)
    spec = QuantSpec(weight=w_fmt, activation=act_fmt)
    apply_quant_policy(model, uniform_policy(spec))
    if quantize_embeddings and weight_format is not None:
        for _, module in model.named_modules():
            if isinstance(module, Embedding):
                module.storage_quant = _fresh_copy(as_format(weight_format))
    return model


def _fresh_copy(fmt: Format) -> Format:
    """A fresh instance of ``fmt`` when its spec spelling allows one;
    formats outside the spec language are shared as passed (the caller
    owns any statefulness)."""
    from ..spec.grammar import SpecError, format_to_spec

    try:
        return as_format(format_to_spec(fmt))
    except SpecError:
        return fmt


def cast_weights(model: Module, fmt: "str | dict | Format | PolicySpec") -> Module:
    """Quantize every parameter array in place (storage quantization).

    Weight matrices quantize along their reduction dimension (axis 0 for
    ``(K, N)`` Linear weights); embedding tables along the feature axis.

    ``fmt`` may also be a declarative
    :class:`~repro.spec.policy.PolicySpec` (or its ``to_dict`` payload):
    each quantizable module's parameters are then cast with that module's
    weight-role format, so mixed-precision recipes
    (:class:`~repro.spec.policy.FirstLastHighPolicy` et al.) drive
    compile-time casting too.  Modules the policy leaves at FP32 (and
    parameters outside quantizable modules, e.g. embeddings) are left
    untouched.
    """
    policy = _as_policy(fmt)
    if policy is not None:
        compiled = compile_policy(policy, model)
        # Attention modules contain their projection Linears, which are
        # quantizable themselves; apply_quant_policy visits children after
        # parents, so the child's own spec wins at forward time.  Resolve
        # each parameter to the spec of the *last* quantizable module that
        # owns it, then cast every array exactly once with that spec —
        # matching what the runtime quantization would apply.
        resolved: dict[int, tuple] = {}
        for name, module in quantizable_modules(model):
            spec = compiled(name, module)
            for _, param in module.named_parameters():
                resolved[id(param)] = (param, spec)
        for param, spec in resolved.values():
            if spec is None or spec.weight is None:
                continue
            if param.data.ndim >= 2:
                param.data = spec.weight.quantize(
                    param.data, axis=0, rounding=spec.rounding, rng=spec.rng
                )
        return model
    fmt = as_format(fmt)
    for name, param in model.named_parameters():
        if param.data.ndim >= 2:
            axis = 0 if not name.endswith("embedding.weight") else -1
            param.data = fmt.quantize(param.data, axis=axis)
    return model


def clear_quantization(model: Module) -> Module:
    """Remove every QuantSpec (back to the FP32 baseline)."""
    apply_quant_policy(model, uniform_policy(None))
    for _, module in model.named_modules():
        if isinstance(module, Embedding):
            module.storage_quant = None
    return model
