"""Direct cast: the drop-in replacement deployment path (Section V).

"We take a pre-trained model in higher precision (e.g., FP32), perform a
straight cast into MX data format, and evaluate the model quality."

Two direct-cast styles are provided:

* :func:`direct_cast` — install inference QuantSpecs so weights *and*
  activations are quantized on the fly inside every tensor op (what MX
  silicon does); the (w, a) tuples of Table IV map directly onto this.
* :func:`cast_weights` — additionally bake the weight quantization into the
  stored arrays (the storage-quantized deployment used for DLRM embedding
  tables).
"""

from __future__ import annotations

from ..formats.base import Format
from ..formats.registry import get_format
from ..nn.layers import Embedding, Module
from ..nn.quantized import QuantSpec
from .policy import apply_quant_policy, uniform_policy

__all__ = ["direct_cast", "cast_weights", "clear_quantization"]


def direct_cast(
    model: Module,
    weight_format: str | None,
    activation_format: str | None = None,
    quantize_embeddings: bool = False,
) -> Module:
    """Configure a trained model for quantized inference, in place.

    Args:
        model: a trained model (its FP32 parameters are left untouched).
        weight_format: format name for weights, or ``None`` for FP32.
        activation_format: format name for activations; defaults to the
            weight format when omitted (the paper's symmetric direct cast).
        quantize_embeddings: also storage-quantize embedding tables
            (the memory-intensive recommendation-model optimization).
    """
    if weight_format is None and activation_format is None:
        return clear_quantization(model)
    act = activation_format if activation_format is not None else weight_format
    spec = QuantSpec(
        weight=get_format(weight_format) if weight_format else None,
        activation=get_format(act) if act else None,
    )
    apply_quant_policy(model, uniform_policy(spec))
    if quantize_embeddings and weight_format:
        for _, module in model.named_modules():
            if isinstance(module, Embedding):
                module.storage_quant = get_format(weight_format)
    return model


def cast_weights(model: Module, fmt: str | Format) -> Module:
    """Quantize every parameter array in place (storage quantization).

    Weight matrices quantize along their reduction dimension (axis 0 for
    ``(K, N)`` Linear weights); embedding tables along the feature axis.
    """
    fmt = get_format(fmt) if isinstance(fmt, str) else fmt
    for name, param in model.named_parameters():
        if param.data.ndim >= 2:
            axis = 0 if not name.endswith("embedding.weight") else -1
            param.data = fmt.quantize(param.data, axis=axis)
    return model


def clear_quantization(model: Module) -> Module:
    """Remove every QuantSpec (back to the FP32 baseline)."""
    apply_quant_policy(model, uniform_policy(None))
    for _, module in model.named_modules():
        if isinstance(module, Embedding):
            module.storage_quant = None
    return model
