"""The training loop implementing Figure 8.

Every model in :mod:`repro.models` exposes ``loss(batch) -> Tensor``; the
generic :func:`fit` loop drives it with an FP32 optimizer over master
weights while the installed QuantSpecs quantize each tensor op's operands.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import numpy as np

from ..nn.layers import Module
from ..nn.optim import Adam, Optimizer, SGD
from ..nn.quantized import QuantSpec
from .policy import apply_quant_policy, uniform_policy

__all__ = ["TrainConfig", "TrainResult", "fit", "train_with_format", "make_optimizer"]


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run.

    The paper's headline claim is that MX9 needs *no* changes here relative
    to FP32 — experiments reuse one TrainConfig across formats.
    """

    steps: int = 200
    lr: float = 1e-3
    optimizer: str = "adam"
    momentum: float = 0.0
    weight_decay: float = 0.0
    clip_norm: float | None = 1.0
    log_every: int = 50


@dataclass
class TrainResult:
    """Loss trajectory and summary of a run."""

    losses: list[float] = field(default_factory=list)
    steps: int = 0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no training steps recorded")
        tail = self.losses[-max(1, len(self.losses) // 10) :]
        return float(np.mean(tail))


def make_optimizer(model: Module, config: TrainConfig) -> Optimizer:
    if config.optimizer == "adam":
        return Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    if config.optimizer == "sgd":
        return SGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
    raise ValueError(f"unknown optimizer {config.optimizer!r}")


def fit(
    model: Module,
    batches: Iterable,
    config: TrainConfig | None = None,
    optimizer: Optimizer | None = None,
    on_step: Callable[[int, float], None] | None = None,
) -> TrainResult:
    """Run the Figure 8 loop: forward, backward, FP32 weight update.

    Args:
        model: any module exposing ``loss(batch) -> Tensor``.
        batches: an iterable of batches; iteration length bounds the run
            together with ``config.steps``.
        config: hyper-parameters; defaults used when omitted.
        optimizer: reuse an existing optimizer (otherwise built fresh).
        on_step: optional callback ``(step, loss)``.
    """
    config = config or TrainConfig()
    optimizer = optimizer or make_optimizer(model, config)
    result = TrainResult()
    model.train()
    for step, batch in enumerate(batches):
        if step >= config.steps:
            break
        optimizer.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        if config.clip_norm is not None:
            optimizer.clip_grad_norm(config.clip_norm)
        optimizer.step()
        value = float(loss.data)
        result.losses.append(value)
        result.steps = step + 1
        if on_step is not None:
            on_step(step, value)
    model.eval()
    return result


def train_with_format(
    model: Module,
    batches: Iterable,
    format_name: str | None,
    config: TrainConfig | None = None,
) -> TrainResult:
    """Install a uniform training spec (or FP32) and run :func:`fit`.

    ``format_name=None`` is the FP32 baseline; ``"mx9"`` reproduces the
    paper's drop-in MX9 training with identical hyper-parameters.
    """
    spec = QuantSpec.uniform(format_name) if format_name else None
    apply_quant_policy(model, uniform_policy(spec))
    return fit(model, batches, config)
