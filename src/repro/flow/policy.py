"""Per-layer precision policies.

Table VI's mixed-precision recommendation-model runs keep "certain layers
(e.g., first and last layer) ... in high bit-width"; a policy maps a module
name to the :class:`~repro.nn.quantized.QuantSpec` that layer should use
(``None`` keeps the layer full precision).

Policies come in two spellings: the classic callables built here, and the
serializable data objects of :mod:`repro.spec.policy`
(:class:`~repro.spec.policy.UniformPolicy` etc.), which
:func:`apply_quant_policy` compiles on the fly.  New code should prefer
the data objects — they pickle across process pools and serialize to JSON.
"""

from __future__ import annotations

from collections.abc import Callable

from ..nn.attention import MultiHeadAttention
from ..nn.layers import Module
from ..nn.quantized import QuantSpec
from ..spec.policy import PolicySpec, compile_policy

__all__ = [
    "Policy",
    "uniform_policy",
    "first_last_high_precision",
    "apply_quant_policy",
    "quantizable_modules",
]

#: A policy maps (module name, module) to the spec to install.
Policy = Callable[[str, Module], QuantSpec | None]


def quantizable_modules(model: Module) -> list[tuple[str, Module]]:
    """Leaf modules that consume a QuantSpec (Linear / Conv2d / attention).

    Attention modules are handled through their projection Linears plus the
    score/context products, so only modules *owning* a ``quant`` attribute
    qualify.
    """
    return [
        (name, module)
        for name, module in model.named_modules()
        if hasattr(module, "quant")
    ]


def uniform_policy(spec: QuantSpec | None) -> Policy:
    """Every quantizable layer gets the same spec (the MX9 training mode)."""

    def policy(name: str, module: Module) -> QuantSpec | None:
        del name, module
        return spec

    return policy


def first_last_high_precision(
    spec: QuantSpec | None, model: Module, high: QuantSpec | None = None
) -> Policy:
    """Quantize everything except the first and last quantizable layers.

    ``high`` (default: full precision) is installed on the boundary layers —
    the mixed-precision recipe that closes the PR-rec2/PR-rec3 NE gap in
    Table VI.
    """
    names = [name for name, _ in quantizable_modules(model)]
    if not names:
        return uniform_policy(spec)
    boundary = {names[0], names[-1]}

    def policy(name: str, module: Module) -> QuantSpec | None:
        del module
        return high if name in boundary else spec

    return policy


def apply_quant_policy(model: Module, policy: "Policy | PolicySpec | dict") -> int:
    """Install specs across a model; returns the number of layers touched.

    ``policy`` may be a classic callable, a declarative
    :class:`~repro.spec.policy.PolicySpec`, or its ``to_dict`` form.
    """
    policy = compile_policy(policy, model)
    touched = 0
    for name, module in quantizable_modules(model):
        spec = policy(name, module)
        if isinstance(module, MultiHeadAttention):
            module.set_quant(spec)
        else:
            module.quant = spec
        touched += 1
    return touched
