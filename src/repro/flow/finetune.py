"""Quantization-aware fine-tuning (Section V / VI-B).

The paper's recipe for recovering MX6/MX4 direct-cast accuracy loss:

* cast the pre-trained model to the narrow format for the *forward* pass;
* keep the backward pass in a high-precision format (FP32 in all their
  fine-tuning experiments);
* reset the optimizer, drop momentum / learning-rate decay / dropout;
* fine-tune for much less than the original training duration.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..nn.layers import Dropout, Module
from ..nn.quantized import QuantSpec
from ..spec.policy import PolicySpec, UniformPolicy
from .compute_flow import TrainConfig, TrainResult, fit
from .policy import apply_quant_policy

__all__ = ["finetune"]


def finetune(
    model: Module,
    batches: Iterable,
    forward_format: str | None = None,
    backward_format: str | None = None,
    steps: int = 50,
    lr: float = 1e-4,
    policy: PolicySpec | dict | None = None,
) -> TrainResult:
    """Quantization-aware fine-tuning of a pre-trained model, in place.

    Args:
        model: trained model (parameters are updated).
        batches: fine-tuning batches.
        forward_format: narrow format (any spec spelling) for forward
            tensor ops (e.g. "mx6").  Ignored when ``policy`` is given.
        backward_format: backward format; ``None`` keeps FP32 backward
            (the paper's setting).
        steps: fine-tuning steps — "always much shorter than the original
            training duration".
        lr: adjusted (reduced) initial learning rate, no decay.
        policy: a declarative :class:`~repro.spec.policy.PolicySpec` (or
            its dict form) for mixed-precision fine-tuning; overrides the
            uniform ``forward_format``/``backward_format`` recipe.
    """
    if policy is None:
        if forward_format is None:
            raise ValueError("finetune needs forward_format or policy")
        spec = QuantSpec.finetune(forward_format, backward_format)
        policy = UniformPolicy(quant=spec)
    apply_quant_policy(model, policy)
    # the paper eliminates dropout during QAT fine-tuning
    for _, module in model.named_modules():
        if isinstance(module, Dropout):
            module.p = 0.0
    config = TrainConfig(steps=steps, lr=lr, optimizer="sgd", momentum=0.0, clip_norm=1.0)
    return fit(model, batches, config)
