"""Training / inference compute flows: Figure 8 training, direct cast,
quantization-aware fine-tuning, and per-layer precision policies."""

from .cast import cast_weights, clear_quantization, direct_cast
from .compute_flow import TrainConfig, TrainResult, fit, make_optimizer, train_with_format
from .finetune import finetune
from .policy import (
    apply_quant_policy,
    first_last_high_precision,
    quantizable_modules,
    uniform_policy,
)

__all__ = [
    "cast_weights",
    "clear_quantization",
    "direct_cast",
    "TrainConfig",
    "TrainResult",
    "fit",
    "make_optimizer",
    "train_with_format",
    "finetune",
    "apply_quant_policy",
    "first_last_high_precision",
    "quantizable_modules",
    "uniform_policy",
]
