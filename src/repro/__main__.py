"""Command-line entry point: paper experiments plus the spec layer.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro figure7              # regenerate a table/figure
    python -m repro table3 --full --seed 1

    python -m repro list-formats         # every registered format name
    python -m repro describe "bdr(m=4,k1=16,d1=8,k2=2,d2=1,ss=pow2)"
    python -m repro qsnr mx6 --distribution normal --n-vectors 2000

    python -m repro serve --format mx6 --max-batch 16   # serving demo
    python -m repro bench-serve                         # naive vs batched
    python -m repro bench-decode                        # full recompute vs KV cache

Everything below ``list`` is driven entirely by the declarative spec
layer (:mod:`repro.spec`): any spelling accepted by ``repro.quantize``
works with ``describe`` and ``qsnr``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _cmd_list_formats(argv: list[str]) -> int:
    from .formats import get_format, list_formats

    parser = argparse.ArgumentParser(
        prog="repro list-formats", description="Enumerate registered formats."
    )
    parser.parse_args(argv)
    width = max(len(name) for name in list_formats())
    for name in list_formats():
        fmt = get_format(name)
        print(f"{name:<{width}}  {fmt.bits_per_element:6.3f} bits/elem  {fmt.name}")
    return 0


def _cmd_describe(argv: list[str]) -> int:
    from .hardware.cost import hardware_cost
    from .hardware.power import power_cost
    from .spec import as_format, parse_spec, render_spec

    parser = argparse.ArgumentParser(
        prog="repro describe", description="Describe one format spec."
    )
    parser.add_argument("spec", help="any spec spelling, e.g. mx6 or bdr(m=4,k1=16,d1=8)")
    args = parser.parse_args(argv)

    spec = parse_spec(args.spec)
    fmt = as_format(spec)
    print(f"spec:      {render_spec(spec)}")
    print(f"name:      {fmt.name}")
    print(f"bits/elem: {fmt.bits_per_element:.4f}")
    fmt = getattr(fmt, "inner", fmt)  # cost/config of the pinned format
    config = getattr(fmt, "config", None)
    if config is not None:
        print(
            f"bdr:       m={config.m} k1={config.k1} d1={config.d1} "
            f"s={config.s_type} k2={config.k2} d2={config.d2} ss={config.ss_type} "
            f"(family {config.family})"
        )
    try:
        cost = hardware_cost(fmt)
        print(
            f"hardware:  area={cost.normalized_area:.3f} memory={cost.memory:.3f} "
            f"cost={cost.area_memory_product:.3f} (normalized to FP8)"
        )
        print(
            f"           dot-product area={cost.area_ge:.1f} GE  "
            f"packing-efficiency={cost.packing_efficiency:.4f}  "
            f"power={power_cost(fmt):.3f}"
        )
    except TypeError:
        print("hardware:  (no cost model for this format)")
    print(f"json:      {json.dumps(spec.to_dict(), sort_keys=True)}")
    return 0


def _cmd_qsnr(argv: list[str]) -> int:
    from .fidelity.qsnr import measure_qsnr
    from .spec import parse_spec, render_spec

    parser = argparse.ArgumentParser(
        prog="repro qsnr", description="Measure a format's QSNR (Figure 7 y-axis)."
    )
    parser.add_argument("spec", help="any spec spelling")
    parser.add_argument("--distribution", default="variable_normal")
    parser.add_argument("--n-vectors", type=int, default=2000)
    parser.add_argument("--length", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    spec = parse_spec(args.spec)
    q = measure_qsnr(
        spec.canonical(),
        distribution=args.distribution,
        n_vectors=args.n_vectors,
        length=args.length,
        seed=args.seed,
    )
    print(f"{render_spec(spec)}: {q:.2f} dB ({args.distribution}, n={args.n_vectors})")
    return 0


def _build_serving_demo(model_name: str, seed: int):
    """(model, examples factory) for the serving CLI: a GPT ladder member
    over the synthetic language with likelihood-ranked choice requests."""
    import numpy as np

    from .data.synthetic import SyntheticLanguage
    from .data.tasks import make_task
    from .models.gpt import GPT, GPT_SIZES

    key = model_name.upper().replace("GPT", "GPT-") if "-" not in model_name.upper() else model_name.upper()
    if key not in GPT_SIZES:
        raise ValueError(f"unknown GPT ladder member {model_name!r}; choose from {sorted(GPT_SIZES)}")
    lang = SyntheticLanguage(seed=seed)
    model = GPT(lang.vocab_size, GPT_SIZES[key], rng=np.random.default_rng(seed))

    def requests(n: int):
        examples = make_task("recall", lang, n_examples=n, seed=seed + 1)
        return [
            {"task": "score", "context": ex.context, "candidates": ex.candidates}
            for ex in examples
        ], [ex.answer for ex in examples]

    return model, requests


def _cmd_serve(argv: list[str]) -> int:
    """Demo server: compile a GPT ladder member, serve scored requests."""
    from .serve import SessionConfig, compile_model, configure_faults

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Compile a model and serve micro-batched requests "
        "(demonstration harness over the synthetic choice tasks).",
    )
    parser.add_argument("--model", default="GPT-S", help="GPT ladder member (default GPT-S)")
    parser.add_argument("--format", default="mx6", dest="fmt",
                        help="format spec, e.g. mx6 (default); 'fp32' serves unquantized")
    parser.add_argument("--requests", type=int, default=32)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait", type=float, default=0.002)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--stream", action="store_true",
                        help="also demo token-by-token streaming generation")
    parser.add_argument("--seed", type=int, default=0)
    # reliability surface
    parser.add_argument("--max-queue", type=int, default=0,
                        help="bound on queued requests (0 = unbounded)")
    parser.add_argument("--shed-policy", default="reject", choices=("reject", "oldest"))
    parser.add_argument("--timeout", type=float, default=None,
                        help="default per-request deadline in seconds")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-executions of transiently-failing batches")
    parser.add_argument("--retry-backoff", type=float, default=0.05)
    parser.add_argument("--watchdog", type=float, default=0.0,
                        help="hung-worker watchdog interval in seconds (0 = off)")
    parser.add_argument("--hang-timeout", type=float, default=5.0)
    parser.add_argument("--degrade", default=None,
                        help="comma-separated degradation ladder, e.g. mx6,mx4")
    parser.add_argument("--degrade-queue-depth", type=int, default=0,
                        help="queue depth that triggers degraded serving")
    parser.add_argument("--breaker-threshold", type=int, default=0,
                        help="consecutive failures that trip the circuit breaker")
    parser.add_argument("--breaker-cooldown", type=float, default=1.0)
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault-injection plan (REPRO_FAULTS grammar), "
                        'e.g. "seed=7 adapter.run_batch:kind=transient,rate=0.3"')
    args = parser.parse_args(argv)

    if args.faults:
        configure_faults(args.faults)
    model, make_requests = _build_serving_demo(args.model, args.seed)
    fmt = None if args.fmt.strip().lower() == "fp32" else args.fmt
    ladder = tuple(s for s in (args.degrade or "").split(",") if s.strip())
    config = SessionConfig(
        format=fmt, max_batch=args.max_batch, max_wait=args.max_wait,
        workers=args.workers, max_queue=args.max_queue,
        shed_policy=args.shed_policy, default_timeout=args.timeout,
        max_retries=args.retries, retry_backoff=args.retry_backoff,
        watchdog_interval=args.watchdog, hang_timeout=args.hang_timeout,
        degrade_ladder=ladder, degrade_queue_depth=args.degrade_queue_depth,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    compiled = compile_model(model, config=config)
    info = compiled.describe()
    print(f"compiled {info['family']} ({info['parameters']} params) "
          f"for {args.fmt}: tasks={','.join(info['tasks'])}")

    requests, answers = make_requests(args.requests)
    # fault-tolerant drain: submit everything, harvest each future
    # individually so one failed request never loses the rest
    served, failed, degraded = [], 0, 0
    with compiled.session(config) as session:
        futures = []
        for request in requests:
            try:
                futures.append(session.submit(request))
            except Exception as error:
                failed += 1
                print(f"  rejected at admission: {type(error).__name__}: {error}")
                futures.append(None)
        for future, answer in zip(futures, answers):
            if future is None:
                continue
            try:
                result = future.result()
            except Exception as error:
                failed += 1
                print(f"  request failed: {type(error).__name__}: {error}")
                continue
            if result.get("served_format"):
                degraded += 1
            served.append((result, answer))
        health = session.health()
        summary = session.summary()
    if not served:
        print("no requests served")
        return 1
    correct = sum(int(r["choice"] == a) for r, a in served)
    line = f"served {len(served)}/{len(requests)} requests  " \
           f"accuracy={100.0 * correct / len(served):.1f}%"
    if failed:
        line += f"  failed={failed}"
    if degraded:
        line += f"  degraded={degraded}"
    print(line)
    latency = summary.get("latency_ms", {})
    batch = summary.get("batch", {})
    print(
        f"throughput={summary['throughput_rps']:.1f} req/s  "
        f"p50={latency.get('p50', 0.0):.2f}ms p99={latency.get('p99', 0.0):.2f}ms  "
        f"mean-batch={batch.get('mean_size', 0.0):.2f} "
        f"occupancy={batch.get('occupancy', 0.0):.2f}"
    )
    taxonomy = summary.get("reliability", {})
    nonzero = {k: v for k, v in taxonomy.items() if v}
    if nonzero:
        print("reliability: " + "  ".join(f"{k}={v}" for k, v in sorted(nonzero.items())))
    workers = health.get("workers", {})
    print(
        f"health: state={health['state']}  fidelity={health['fidelity']}  "
        f"workers={workers.get('alive', '?')}/{workers.get('configured', '?')} "
        f"(replaced={workers.get('replaced', 0)})"
    )
    if args.stream:
        import numpy as np

        prompt = np.array([1, 2, 3])
        with compiled.session(config) as session:
            tokens = list(
                session.stream({"task": "generate", "prompt": prompt, "max_new_tokens": 8})
            )
            decode = session.summary().get("decode", {})
        latency = decode.get("token_latency_ms", {})
        print(f"stream demo: prompt={prompt.tolist()} -> {tokens}")
        print(
            f"decode: {decode.get('tokens_per_sec', 0.0):.1f} tok/s  "
            f"token-latency p50={latency.get('p50', 0.0):.2f}ms "
            f"p99={latency.get('p99', 0.0):.2f}ms"
        )
    return 0


def _cmd_bench_serve(argv: list[str]) -> int:
    """Throughput: naive per-request inference vs batched quantize-once."""
    from .serve.bench import measure_serving_speedup

    parser = argparse.ArgumentParser(
        prog="repro bench-serve",
        description="Benchmark the serving tier: naive per-request direct-cast "
        "inference vs the micro-batched quantize-once session.",
    )
    parser.add_argument("--model", default="GPT-S", help="GPT ladder member (default GPT-S)")
    parser.add_argument("--format", default="mx6", dest="fmt")
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; the best (max rps) is reported")
    parser.add_argument("--continuous", action="store_true",
                        help="benchmark continuous batching instead: lockstep "
                        "generate vs the paged-KV scheduler on ragged prompts")
    parser.add_argument("--streams", type=int, default=64,
                        help="concurrent decode streams for --continuous")
    parser.add_argument("--max-new", type=int, default=8,
                        help="tokens generated per stream for --continuous")
    parser.add_argument("--quick", action="store_true",
                        help="tiny CI smoke: GPT-XS, few requests (~2s budget)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the result payload to this JSON file")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.quick:
        args.model, args.requests, args.repeats = "GPT-XS", 16, 1
        args.streams = 16

    if args.continuous:
        return _bench_serve_continuous(args)

    model, make_requests = _build_serving_demo(args.model, args.seed)
    requests, _ = make_requests(args.requests)
    payload = measure_serving_speedup(
        model, requests,
        fmt=args.fmt, max_batch=args.max_batch, repeats=args.repeats,
    )
    payload["model"] = args.model
    print(f"naive per-request : {payload['naive_rps']:10.1f} req/s  "
          f"({payload['naive_quant_calls_per_request']:.1f} quantize calls/req)")
    print(f"batched session   : {payload['batched_rps']:10.1f} req/s  "
          f"({payload['batched_quant_calls_per_request']:.1f} quantize calls/req)")
    print(f"speedup           : {payload['speedup']:10.2f}x")
    decode = payload.get("decode", {})
    if decode:
        latency = decode.get("token_latency_ms", {})
        print(
            f"stream decode     : {decode.get('tokens_per_sec', 0.0):10.1f} tok/s  "
            f"(token p50={latency.get('p50', 0.0):.2f}ms "
            f"p99={latency.get('p99', 0.0):.2f}ms)"
        )
    taxonomy = {k: v for k, v in payload.get("reliability", {}).items() if v}
    if taxonomy:
        print("reliability       : "
              + "  ".join(f"{k}={v}" for k, v in sorted(taxonomy.items())))
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    return 0


def _bench_serve_continuous(args) -> int:
    """The ``bench-serve --continuous`` headline: lockstep vs scheduler."""
    from .serve.bench import measure_continuous_speedup

    model, _ = _build_serving_demo(args.model, args.seed)
    payload = measure_continuous_speedup(
        model, fmt=args.fmt, streams=args.streams,
        max_new_tokens=args.max_new, repeats=args.repeats, seed=args.seed,
    )
    payload["model"] = args.model
    fallbacks = payload["lockstep_serial_fallbacks"]
    print(f"lockstep generate : {payload['lockstep_tokens_per_sec']:10.1f} tok/s  "
          f"({fallbacks} serial fallbacks)")
    print(f"continuous batch  : {payload['continuous_tokens_per_sec']:10.1f} tok/s  "
          f"({payload['streams']} streams, {payload['preempted']} preemptions)")
    print(f"speedup           : {payload['speedup']:10.2f}x")
    pool = payload["pool"]
    print(f"page pool         : {pool['pages_total']} pages x {pool['page_size']} "
          f"positions, high water {pool['high_water']}, "
          f"churn {pool['checkouts']} checkouts / {pool['releases']} releases")
    slo = payload["slo"]
    if slo.get("ttft_ms"):
        print(f"slo               : ttft p50={slo['ttft_ms']['p50']:.2f}ms "
              f"p99={slo['ttft_ms']['p99']:.2f}ms  "
              f"e2e p50={slo['e2e_ms']['p50']:.2f}ms "
              f"p99={slo['e2e_ms']['p99']:.2f}ms")
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    return 0


def _cmd_bench_decode(argv: list[str]) -> int:
    """Tokens/sec: full-prefix recompute vs KV-cached incremental decoding."""
    import numpy as np

    from .serve.bench import measure_decode_speedup

    parser = argparse.ArgumentParser(
        prog="repro bench-decode",
        description="Benchmark autoregressive decoding: the historical "
        "full-prefix recompute loop vs block-aligned quantized KV caches "
        "(GPT ladder greedy generation and seq2seq greedy decode).",
    )
    parser.add_argument("--model", default="GPT-S", help="GPT ladder member (default GPT-S)")
    parser.add_argument("--format", default="mx6", dest="fmt",
                        help="format spec (default mx6); 'fp32' decodes unquantized")
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--prompt-len", type=int, default=64)
    parser.add_argument("--max-new", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; the best (max tok/s) is reported")
    parser.add_argument("--no-seq2seq", action="store_true",
                        help="skip the Seq2SeqTransformer measurement")
    parser.add_argument("--quick", action="store_true",
                        help="tiny CI smoke: GPT-XS, short prompts (~2s budget)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the result payloads to this JSON file")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.quick:
        args.model, args.batch, args.prompt_len = "GPT-XS", 2, 16
        args.max_new, args.repeats = 8, 1

    fmt = None if args.fmt.strip().lower() == "fp32" else args.fmt
    model, _ = _build_serving_demo(args.model, args.seed)
    payloads = {}

    gpt = measure_decode_speedup(
        model, fmt=fmt, batch=args.batch, prompt_len=args.prompt_len,
        max_new_tokens=args.max_new, repeats=args.repeats, seed=args.seed,
    )
    payloads["gpt"] = gpt
    print(f"[{gpt['family']}] full recompute : {gpt['full_tokens_per_sec']:10.1f} tok/s  "
          f"({gpt['full_quant_calls_per_token']:.1f} quantize calls/tok)")
    print(f"[{gpt['family']}] KV-cached      : {gpt['cached_tokens_per_sec']:10.1f} tok/s  "
          f"({gpt['cached_quant_calls_per_token']:.1f} quantize calls/tok)")
    print(f"[{gpt['family']}] speedup        : {gpt['speedup']:10.2f}x")

    # the ragged-prompt observable: mixed-shape generate traffic degrades
    # the classic micro-batcher to serial singleton decodes; surface the
    # session counter that tracks it (decode.serial_fallbacks)
    from .serve import SessionConfig, compile_model

    rng = np.random.default_rng(args.seed)
    ragged = [
        {"task": "generate",
         "prompt": rng.integers(1, model.vocab_size, size=4 + 3 * i).tolist(),
         "max_new_tokens": 4}
        for i in range(4)
    ]
    cfg = SessionConfig(format=fmt, max_batch=len(ragged), max_wait=0.05)
    with compile_model(model, config=cfg).session(cfg) as session:
        session.map(ragged)
        fallbacks = session.summary().get("decode", {}).get("serial_fallbacks", 0)
    payloads["ragged"] = {"requests": len(ragged), "serial_fallbacks": fallbacks}
    print(f"[{gpt['family']}] ragged batch   : {fallbacks} serial fallbacks "
          f"over {len(ragged)} mixed-shape generate requests")

    if not args.no_seq2seq:
        from .models.translation import Seq2SeqTransformer

        seq2seq = Seq2SeqTransformer(vocab_size=24, rng=np.random.default_rng(args.seed))
        s2s = measure_decode_speedup(
            seq2seq, fmt=fmt, batch=args.batch,
            prompt_len=min(args.prompt_len, 16),
            max_new_tokens=min(args.max_new, 24),
            repeats=args.repeats, seed=args.seed,
        )
        payloads["seq2seq"] = s2s
        print(f"[{s2s['family']}] full recompute : {s2s['full_tokens_per_sec']:10.1f} tok/s")
        print(f"[{s2s['family']}] KV-cached      : {s2s['cached_tokens_per_sec']:10.1f} tok/s")
        print(f"[{s2s['family']}] speedup        : {s2s['speedup']:10.2f}x")

    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(payloads, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    return 0


def _cmd_bench_forward(argv: list[str]) -> int:
    """Batched forward throughput: pre-residency vs fused schedule."""
    import numpy as np

    from .serve.bench import measure_forward_speedup

    parser = argparse.ArgumentParser(
        prog="repro bench-forward",
        description="Benchmark the batched scored-forward path: the "
        "pre-residency schedule (REPRO_FUSION=0 semantics) vs quantized "
        "activation residency + the fused projection/epilogue pipeline.",
    )
    parser.add_argument("--model", default="GPT-S", help="GPT ladder member (default GPT-S)")
    parser.add_argument("--format", default="mx6", dest="fmt")
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--repeats", type=int, default=8,
                        help="interleaved baseline/fused repeats; the "
                             "median per-repeat ratio is the speedup")
    parser.add_argument("--no-moe", action="store_true",
                        help="skip the MoE measurement")
    parser.add_argument("--quick", action="store_true",
                        help="tiny CI smoke: GPT-XS, few requests (~2s budget)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the result payloads to this JSON file")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.quick:
        args.model, args.requests, args.repeats = "GPT-XS", 8, 2

    model, _ = _build_serving_demo(args.model, args.seed)
    payloads = {}

    def report(result):
        fam = result["family"]
        print(f"[{fam}] pre-residency  : {result['baseline_rps']:10.1f} req/s  "
              f"({result['baseline_quant_calls_per_request']:.1f} quantize calls/req)")
        print(f"[{fam}] fused/resident : {result['fused_rps']:10.1f} req/s  "
              f"({result['fused_quant_calls_per_request']:.1f} quantize calls/req)")
        print(f"[{fam}] speedup        : {result['speedup']:10.2f}x "
              f"(best-of {result['speedup_best']:.2f}x)")

    gpt = measure_forward_speedup(
        model, fmt=args.fmt, requests=args.requests,
        repeats=args.repeats, seed=args.seed,
    )
    payloads["gpt"] = gpt
    report(gpt)

    if not args.no_moe:
        from .data.synthetic import SyntheticLanguage
        from .models.gpt import GPT_SIZES
        from .models.moe import MoEGPT

        lang = SyntheticLanguage(seed=args.seed)
        key = args.model.upper() if "-" in args.model.upper() else args.model.upper().replace("GPT", "GPT-")
        moe = MoEGPT(lang.vocab_size, GPT_SIZES[key], rng=np.random.default_rng(args.seed))
        result = measure_forward_speedup(
            moe, fmt=args.fmt, requests=args.requests,
            repeats=args.repeats, seed=args.seed,
        )
        payloads["moe"] = result
        report(result)

    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(payloads, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_path}")
    return 0


def _cmd_experiment(argv: list[str]) -> int:
    from .experiments import list_experiments, run_experiment

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from the MX shared-microexponents paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. figure7, table3) or 'list' to enumerate",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-scale run (default is the faster quick mode)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0

    start = time.time()
    result = run_experiment(args.experiment, quick=not args.full, seed=args.seed)
    print(result)
    print(f"\n[{args.experiment} completed in {time.time() - start:.1f}s]")
    return 0


def _cmd_analyze(argv: list[str]) -> int:
    from pathlib import Path

    from .analysis import analyze_paths, create_rules, resolve_rules, rule_catalog
    from .analysis.baseline import load_baseline, write_baseline
    from .analysis.config import load_config
    from .analysis.reporting import render_json, render_text

    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Run the invariant static analyzer (see docs/ANALYSIS.md).",
    )
    parser.add_argument("paths", nargs="*", help="files/dirs to analyze "
                        "(default: the [tool.repro.analysis] paths)")
    parser.add_argument("--rule", action="append", default=None, metavar="ID",
                        help="run only this rule id or family (repeatable)")
    parser.add_argument("--baseline", action="store_true",
                        help="subtract the committed baseline before judging")
    parser.add_argument("--write-baseline", metavar="WHY", default=None,
                        help="accept all current findings into the baseline "
                        "file with WHY as the shared justification")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable report")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in rule_catalog().items():
            print(f"{rule_id:24s} [{cls.family}] {cls.description}")
        return 0

    config = load_config()
    rules = (
        resolve_rules(args.rule)
        if args.rule
        else create_rules(disable=config.disable)
    )
    paths = [Path(p) for p in args.paths] if args.paths else config.resolved_paths()
    result = analyze_paths(paths, rules=rules, root=config.root)

    baselined, stale = 0, []
    if args.baseline or args.write_baseline is not None:
        if args.write_baseline is not None:
            write_baseline(config.baseline_path, result.findings, args.write_baseline)
            print(f"wrote {len(result.findings)} entries to {config.baseline_path}")
            return 0
        if config.baseline_path.is_file():
            baseline = load_baseline(config.baseline_path)
            fresh, matched = baseline.apply(result.findings)
            baselined = len(result.findings) - len(fresh)
            stale = baseline.stale(matched)
            result.findings = fresh

    print(render_json(result, baselined, stale) if args.as_json
          else render_text(result, baselined, stale))
    return 0 if result.clean and not result.errors and not stale else 1


_COMMANDS = {
    "list-formats": _cmd_list_formats,
    "describe": _cmd_describe,
    "qsnr": _cmd_qsnr,
    "serve": _cmd_serve,
    "bench-serve": _cmd_bench_serve,
    "bench-decode": _cmd_bench_decode,
    "bench-forward": _cmd_bench_forward,
    "analyze": _cmd_analyze,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    command = _COMMANDS.get(argv[0]) if argv else None
    try:
        if command is not None:
            return command(argv[1:])
        return _cmd_experiment(argv)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
