"""Command-line entry point: paper experiments plus the spec layer.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro figure7              # regenerate a table/figure
    python -m repro table3 --full --seed 1

    python -m repro list-formats         # every registered format name
    python -m repro describe "bdr(m=4,k1=16,d1=8,k2=2,d2=1,ss=pow2)"
    python -m repro qsnr mx6 --distribution normal --n-vectors 2000

Everything below ``list`` is driven entirely by the declarative spec
layer (:mod:`repro.spec`): any spelling accepted by ``repro.quantize``
works with ``describe`` and ``qsnr``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _cmd_list_formats(argv: list[str]) -> int:
    from .formats import get_format, list_formats

    parser = argparse.ArgumentParser(
        prog="repro list-formats", description="Enumerate registered formats."
    )
    parser.parse_args(argv)
    width = max(len(name) for name in list_formats())
    for name in list_formats():
        fmt = get_format(name)
        print(f"{name:<{width}}  {fmt.bits_per_element:6.3f} bits/elem  {fmt.name}")
    return 0


def _cmd_describe(argv: list[str]) -> int:
    from .hardware.cost import hardware_cost
    from .spec import as_format, parse_spec, render_spec

    parser = argparse.ArgumentParser(
        prog="repro describe", description="Describe one format spec."
    )
    parser.add_argument("spec", help="any spec spelling, e.g. mx6 or bdr(m=4,k1=16,d1=8)")
    args = parser.parse_args(argv)

    spec = parse_spec(args.spec)
    fmt = as_format(spec)
    print(f"spec:      {render_spec(spec)}")
    print(f"name:      {fmt.name}")
    print(f"bits/elem: {fmt.bits_per_element:.4f}")
    fmt = getattr(fmt, "inner", fmt)  # cost/config of the pinned format
    config = getattr(fmt, "config", None)
    if config is not None:
        print(
            f"bdr:       m={config.m} k1={config.k1} d1={config.d1} "
            f"s={config.s_type} k2={config.k2} d2={config.d2} ss={config.ss_type} "
            f"(family {config.family})"
        )
    try:
        cost = hardware_cost(fmt)
        print(
            f"hardware:  area={cost.normalized_area:.3f} memory={cost.memory:.3f} "
            f"cost={cost.area_memory_product:.3f} (normalized to FP8)"
        )
    except TypeError:
        print("hardware:  (no cost model for this format)")
    print(f"json:      {json.dumps(spec.to_dict(), sort_keys=True)}")
    return 0


def _cmd_qsnr(argv: list[str]) -> int:
    from .fidelity.qsnr import measure_qsnr
    from .spec import parse_spec, render_spec

    parser = argparse.ArgumentParser(
        prog="repro qsnr", description="Measure a format's QSNR (Figure 7 y-axis)."
    )
    parser.add_argument("spec", help="any spec spelling")
    parser.add_argument("--distribution", default="variable_normal")
    parser.add_argument("--n-vectors", type=int, default=2000)
    parser.add_argument("--length", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    spec = parse_spec(args.spec)
    q = measure_qsnr(
        spec.canonical(),
        distribution=args.distribution,
        n_vectors=args.n_vectors,
        length=args.length,
        seed=args.seed,
    )
    print(f"{render_spec(spec)}: {q:.2f} dB ({args.distribution}, n={args.n_vectors})")
    return 0


def _cmd_experiment(argv: list[str]) -> int:
    from .experiments import list_experiments, run_experiment

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from the MX shared-microexponents paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. figure7, table3) or 'list' to enumerate",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-scale run (default is the faster quick mode)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0

    start = time.time()
    result = run_experiment(args.experiment, quick=not args.full, seed=args.seed)
    print(result)
    print(f"\n[{args.experiment} completed in {time.time() - start:.1f}s]")
    return 0


_COMMANDS = {
    "list-formats": _cmd_list_formats,
    "describe": _cmd_describe,
    "qsnr": _cmd_qsnr,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    command = _COMMANDS.get(argv[0]) if argv else None
    try:
        if command is not None:
            return command(argv[1:])
        return _cmd_experiment(argv)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
