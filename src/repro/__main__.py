"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro figure7
    python -m repro table3 --full --seed 1
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv: list[str] | None = None) -> int:
    from .experiments import list_experiments, run_experiment

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from the MX shared-microexponents paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. figure7, table3) or 'list' to enumerate",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-scale run (default is the faster quick mode)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for exp_id in list_experiments():
            print(exp_id)
        return 0

    start = time.time()
    try:
        result = run_experiment(args.experiment, quick=not args.full, seed=args.seed)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result)
    print(f"\n[{args.experiment} completed in {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
