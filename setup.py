"""Legacy setup shim: the offline environment lacks the `wheel` package, so
`pip install -e .` must go through setuptools' classic develop path."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'With Shared Microexponents, A Little Shifting "
        "Goes a Long Way' (ISCA 2023): the BDR framework and MX formats"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
