"""Unit tests for the combined cost model and format dispatch."""

import pytest

from repro.core.bdr import BDRConfig
from repro.formats.base import IdentityFormat
from repro.formats.registry import get_format
from repro.formats.scalar_float import FP8_E4M3
from repro.hardware.cost import HardwareCost, hardware_cost, pipeline_area, storage_spec


class TestDispatch:
    @pytest.mark.parametrize(
        "name", ["mx9", "mx6", "mx4", "msfp16", "int8", "vsq6", "fp8_e4m3", "bf16", "fp32"]
    )
    def test_every_registry_family(self, name):
        hc = hardware_cost(get_format(name))
        assert hc.area_ge > 0
        assert hc.normalized_area > 0
        assert 0 < hc.packing_efficiency <= 1.0

    def test_raw_config_accepted(self):
        hc = hardware_cost(BDRConfig.mx(m=7))
        assert hc.normalized_area > 0

    def test_raw_spec_accepted(self):
        hc = hardware_cost(FP8_E4M3)
        assert hc.normalized_area > 0

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            hardware_cost("mx9")
        with pytest.raises(TypeError):
            storage_spec(42)


class TestHeadlineNumbers:
    def test_area_memory_product(self):
        hc = HardwareCost("x", 100.0, 0.5, 0.8, 1.0)
        assert hc.area_memory_product == pytest.approx(0.4)

    def test_fp8_near_unity(self):
        e4m3 = hardware_cost(get_format("fp8_e4m3"))
        e5m2 = hardware_cost(get_format("fp8_e5m2"))
        # individual variants sit just below the dual-format baseline
        assert 0.7 < e4m3.normalized_area < 1.0
        assert 0.7 < e5m2.normalized_area < 1.0

    def test_paper_cost_ordering(self):
        """MX4 < MX6 < FP8 ~ MX9 on the area-memory product axis."""
        costs = {
            name: hardware_cost(get_format(name)).area_memory_product
            for name in ("mx4", "mx6", "mx9", "fp8_e4m3")
        }
        assert costs["mx4"] < costs["mx6"] < costs["fp8_e4m3"]
        assert costs["mx9"] == pytest.approx(costs["fp8_e4m3"], rel=0.35)

    def test_mx6_about_half_fp8(self):
        mx6 = hardware_cost(get_format("mx6")).area_memory_product
        fp8 = hardware_cost(get_format("fp8_e4m3")).area_memory_product
        assert 1.8 < fp8 / mx6 < 3.5

    def test_fp32_most_expensive(self):
        fp32 = hardware_cost(IdentityFormat())
        mx9 = hardware_cost(get_format("mx9"))
        assert fp32.area_memory_product > 3 * mx9.area_memory_product


class TestStorageSpecs:
    def test_mx9_spec(self):
        spec = storage_spec(get_format("mx9"))
        assert spec.element_bits == 8
        assert spec.scale_bits == 8 and spec.scale_block == 16
        assert spec.subscale_bits == 1 and spec.subscale_block == 2

    def test_int8_scale_out_of_band(self):
        spec = storage_spec(get_format("int8"))
        assert spec.scale_block == 1024  # >= tile, excluded from packing

    def test_fp32(self):
        assert storage_spec(IdentityFormat()).element_bits == 32
