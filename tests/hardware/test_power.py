"""Unit tests for the power model."""

import pytest

from repro.formats.registry import get_format
from repro.hardware.cost import pipeline_area
from repro.hardware.power import PowerEstimate, pipeline_power, power_cost


class TestPipelinePower:
    def test_components(self):
        bd = pipeline_area(get_format("mx9"))
        estimate = pipeline_power(bd)
        assert estimate.dynamic > 0
        assert estimate.leakage > 0
        assert estimate.total == estimate.dynamic + estimate.leakage

    def test_dynamic_below_area_scale(self):
        """Activity factors are < 1, so dynamic power < area in these units."""
        bd = pipeline_area(get_format("mx6"))
        assert pipeline_power(bd).dynamic < bd.total

    def test_monotone_in_mantissa(self):
        powers = [
            pipeline_power(pipeline_area(get_format(name))).total
            for name in ("mx4", "mx6", "mx9")
        ]
        assert powers == sorted(powers)


class TestPowerCost:
    def test_fp8_variants_near_unity(self):
        for name in ("fp8_e4m3", "fp8_e5m2"):
            assert 0.6 < power_cost(get_format(name)) < 1.05

    def test_mx_family_ordering(self):
        mx4 = power_cost(get_format("mx4"))
        mx6 = power_cost(get_format("mx6"))
        mx9 = power_cost(get_format("mx9"))
        assert mx4 < mx6 < mx9

    def test_mx6_cheaper_than_fp8(self):
        """The area advantage carries over to power."""
        assert power_cost(get_format("fp8_e4m3")) / power_cost(get_format("mx6")) > 1.5

    def test_estimate_dataclass(self):
        e = PowerEstimate("x", dynamic=10.0, leakage=2.0)
        assert e.total == 12.0
