"""Unit tests for the area primitives."""

import pytest

from repro.hardware import components as c


class TestPrimitives:
    def test_adder_linear_in_bits(self):
        assert c.adder(16) == 2 * c.adder(8)
        assert c.adder(0) == 0.0

    def test_multiplier_grows_with_operands(self):
        assert c.multiplier(8, 8) > c.multiplier(4, 4) > c.multiplier(2, 2)

    def test_multiplier_degenerate(self):
        assert c.multiplier(0, 8) == 0.0
        assert c.multiplier(1, 1) == c.GE.AND2

    def test_multiplier_roughly_quadratic(self):
        ratio = c.multiplier(16, 16) / c.multiplier(8, 8)
        assert 3.0 < ratio < 5.0

    def test_barrel_shifter_stages(self):
        # shifting by up to 3 needs 2 stages; by up to 1 needs 1
        assert c.barrel_shifter(8, 3) == 8 * 2 * c.GE.MUX2
        assert c.barrel_shifter(8, 1) == 8 * 1 * c.GE.MUX2
        assert c.barrel_shifter(8, 0) == 0.0

    def test_adder_tree_count(self):
        # 4 inputs: 2 adders at width+1, 1 at width+2
        expected = 2 * c.adder(9) + 1 * c.adder(10)
        assert c.adder_tree(4, 8) == expected
        assert c.adder_tree(1, 8) == 0.0

    def test_adder_tree_odd_count(self):
        assert c.adder_tree(3, 8) > 0
        # 3 inputs need exactly 2 adders
        assert c.adder_tree(3, 8) == c.adder(9) + c.adder(10)

    def test_max_tree(self):
        assert c.max_tree(4, 8) == 3 * c.max_unit(8)
        assert c.max_tree(1, 8) == 0.0

    def test_fp32_accumulator_constant(self):
        assert c.fp32_accumulator() == c.fp32_accumulator()
        assert c.fp32_accumulator() > 1000

    def test_misc_nonnegative(self):
        for fn in (c.subtractor, c.incrementer, c.comparator, c.leading_zero_counter,
                   c.twos_complement, c.xor_gates, c.registers):
            assert fn(8) > 0
            assert fn(0) == 0.0
