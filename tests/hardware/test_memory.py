"""Unit tests for the memory packing model."""

import pytest

from repro.hardware.memory import (
    INTERFACE_BITS,
    TILE_ELEMENTS,
    StorageSpec,
    lines_needed,
    memory_cost,
    packing_efficiency,
    tile_bits,
)


class TestTileBits:
    def test_fp8_exactly_8_bits(self):
        spec = StorageSpec(element_bits=8)
        assert tile_bits(spec) == 256 * 8

    def test_mx9_includes_fine_scales(self):
        # 256 * 8 payload + 16 block exponents + 128 microexponents
        spec = StorageSpec(
            element_bits=8, scale_bits=8, scale_block=16, subscale_bits=1, subscale_block=2
        )
        assert tile_bits(spec) == 256 * 8 + 16 * 8 + 128 * 1

    def test_coarse_scales_out_of_band(self):
        """Per-tensor software scales (k1 >= tile) do not occupy tile lines."""
        spec = StorageSpec(element_bits=8, scale_bits=32, scale_block=1024)
        assert tile_bits(spec) == 256 * 8

    def test_partial_block_rounds_up(self):
        spec = StorageSpec(element_bits=4, scale_bits=8, scale_block=100)
        assert tile_bits(spec) == 256 * 4 + 3 * 8  # ceil(256/100) = 3


class TestLinesAndEfficiency:
    def test_fp8_four_lines(self):
        assert lines_needed(StorageSpec(element_bits=8)) == 4

    def test_mx9_five_lines(self):
        spec = StorageSpec(8, 8, 16, 1, 2)
        assert lines_needed(spec) == 5

    def test_mx6_three_lines(self):
        spec = StorageSpec(5, 8, 16, 1, 2)
        assert lines_needed(spec) == 3

    def test_packing_efficiency_range(self):
        for bits in (3, 4, 5, 8, 9, 16):
            eff = packing_efficiency(StorageSpec(element_bits=bits))
            assert 0.0 < eff <= 1.0

    def test_perfect_packing(self):
        assert packing_efficiency(StorageSpec(element_bits=8)) == 1.0


class TestMemoryCost:
    def test_normalized_to_fp8(self):
        assert memory_cost(StorageSpec(element_bits=8)) == 1.0

    def test_mx_family(self):
        mx9 = StorageSpec(8, 8, 16, 1, 2)
        mx6 = StorageSpec(5, 8, 16, 1, 2)
        mx4 = StorageSpec(3, 8, 16, 1, 2)
        assert memory_cost(mx9) == 1.25
        assert memory_cost(mx6) == 0.75
        assert memory_cost(mx4) == 0.50

    def test_custom_baseline(self):
        spec = StorageSpec(element_bits=16)
        assert memory_cost(spec, baseline=spec) == 1.0

    def test_constants(self):
        assert TILE_ELEMENTS == 256
        assert INTERFACE_BITS == 512
