"""Unit tests for the Figure 6 pipeline area model."""

import pytest

from repro.hardware.dot_product import (
    AreaBreakdown,
    fixed_point_bits,
    fp8_baseline_area,
    int_pipeline_area,
    mx_pipeline_area,
    scalar_float_pipeline_area,
)
from repro.hardware.vsq_pipeline import vsq_pipeline_area


class TestFixedPointBits:
    def test_capped_at_25(self):
        assert fixed_point_bits(m=23, d2=0, k1=1) == 25

    def test_narrow_formats_below_cap(self):
        # MX4: 2*2 + 2*1 + 4 + 3 = 13
        assert fixed_point_bits(m=2, d2=1, k1=16) == 13

    def test_monotone_in_m(self):
        values = [fixed_point_bits(m, 1, 16) for m in range(1, 8)]
        assert values == sorted(values)


class TestMXPipeline:
    def test_r_multiple_of_k1(self):
        with pytest.raises(ValueError, match="multiple"):
            mx_pipeline_area(m=7, k1=16, r=60)

    def test_total_positive_and_summed(self):
        bd = mx_pipeline_area(m=7)
        assert bd.total == pytest.approx(sum(bd.stages.values()))
        assert bd.total > 0

    def test_monotone_in_mantissa(self):
        areas = [mx_pipeline_area(m=m).total for m in (2, 4, 7)]
        assert areas == sorted(areas)

    def test_monotone_in_r(self):
        assert mx_pipeline_area(m=4, r=128).total > mx_pipeline_area(m=4, r=64).total

    def test_bfp_has_no_microexponent_logic(self):
        bd = mx_pipeline_area(m=7, d2=0, k2=1)
        assert "microexponent shift" not in bd.stages
        assert "sub-scale add" not in bd.stages

    def test_mx_cheaper_than_scalar_float_at_matched_mantissa(self):
        """The headline: block alignment amortizes the shifter cost."""
        mx = mx_pipeline_area(m=7).total  # 8-bit element
        fp = scalar_float_pipeline_area(e=4, m=3).total  # FP8 E4M3
        assert mx < fp


class TestScalarPipeline:
    def test_normalize_shift_dominates_narrow_floats(self):
        bd = scalar_float_pipeline_area(e=2, m=1)  # FP4 E2M1
        assert bd.stages["normalize shift"] > bd.stages["mantissa multipliers"]

    def test_e5m2_vs_e4m3(self):
        # wider exponent, narrower mantissa: cheaper multipliers
        e5m2 = scalar_float_pipeline_area(e=5, m=2)
        e4m3 = scalar_float_pipeline_area(e=4, m=3)
        assert e5m2.stages["mantissa multipliers"] < e4m3.stages["mantissa multipliers"]


class TestBaselines:
    def test_fp8_baseline_above_single_formats(self):
        base = fp8_baseline_area()
        assert base > scalar_float_pipeline_area(e=4, m=3).total

    def test_paper_headline_ratios(self):
        base = fp8_baseline_area()
        mx9 = mx_pipeline_area(m=7).total / base
        mx6 = mx_pipeline_area(m=4).total / base
        mx4 = mx_pipeline_area(m=2).total / base
        assert 0.6 < mx9 < 1.2  # "hardware efficiency close to FP8"
        assert mx6 < 0.65  # ~2x lower circuitry
        assert mx4 < 0.4  # ~4x lower circuitry

    def test_int_pipeline_cheapest(self):
        assert int_pipeline_area(m=7).total < fp8_baseline_area()


class TestVSQPipeline:
    def test_rescale_logic_costs_area(self):
        """VSQ pays for fine-grained integer rescaling vs plain INT."""
        vsq = vsq_pipeline_area(m=3, d2=6, k2=16)
        assert "partial-sum rescale" in vsq.stages
        int4 = int_pipeline_area(m=3)
        assert vsq.total > int4.total

    def test_r_multiple_of_k2(self):
        with pytest.raises(ValueError, match="multiple"):
            vsq_pipeline_area(m=3, d2=6, k2=16, r=40)


class TestBreakdown:
    def test_summary_string(self):
        bd = AreaBreakdown("demo")
        bd.add("a", 10.0)
        bd.add("b", 30.0)
        text = bd.summary()
        assert "demo" in text and "75.0%" in text

    def test_accumulating_add(self):
        bd = AreaBreakdown("demo")
        bd.add("a", 1.0)
        bd.add("a", 2.0)
        assert bd.stages["a"] == 3.0
