"""Framework-level tests: suppression, baseline, registry, config, CLI."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis import (
    UNJUSTIFIED_SUPPRESSION,
    analyze_paths,
    create_rules,
    resolve_rules,
    rule_catalog,
)
from repro.analysis.baseline import BaselineError, load_baseline, write_baseline
from repro.analysis.config import load_config
from repro.analysis.reporting import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def analyze_source(tmp_path, source, name="serve/sample.py"):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return analyze_paths([tmp_path], rules=create_rules(), root=tmp_path)


# ----------------------------------------------------------------- suppression
BARE_ACQUIRE = "def f(lock):\n    lock.acquire()\n"


def test_finding_without_suppression(tmp_path):
    result = analyze_source(tmp_path, BARE_ACQUIRE)
    assert [f.rule for f in result.findings] == ["bare-acquire"]


def test_justified_suppression_same_line(tmp_path):
    src = "def f(lock):\n    lock.acquire()  # repro: allow(bare-acquire): test harness needs the raw handle\n"
    assert analyze_source(tmp_path, src).findings == []


def test_justified_suppression_line_above(tmp_path):
    src = (
        "def f(lock):\n"
        "    # repro: allow(bare-acquire): test harness needs the raw handle\n"
        "    lock.acquire()\n"
    )
    assert analyze_source(tmp_path, src).findings == []


def test_unjustified_suppression_is_a_finding(tmp_path):
    src = "def f(lock):\n    lock.acquire()  # repro: allow(bare-acquire)\n"
    result = analyze_source(tmp_path, src)
    assert [f.rule for f in result.findings] == [UNJUSTIFIED_SUPPRESSION]


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    src = "def f(lock):\n    lock.acquire()  # repro: allow(broad-except): wrong rule\n"
    result = analyze_source(tmp_path, src)
    assert [f.rule for f in result.findings] == ["bare-acquire"]


# -------------------------------------------------------------------- baseline
def test_baseline_round_trip(tmp_path):
    result = analyze_source(tmp_path, BARE_ACQUIRE)
    assert result.findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, result.findings, "grandfathered for the test")
    baseline = load_baseline(baseline_path)
    fresh, matched = baseline.apply(result.findings)
    assert fresh == []
    assert len(matched) == len(baseline.entries)
    assert baseline.stale(matched) == []


def test_baseline_detects_stale_entries(tmp_path):
    result = analyze_source(tmp_path, BARE_ACQUIRE)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, result.findings, "will go stale")
    baseline = load_baseline(baseline_path)
    fresh, matched = baseline.apply([])  # the finding was fixed
    assert fresh == []
    assert baseline.stale(matched) == sorted(baseline.entries)


def test_baseline_rejects_missing_justification(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "bare-acquire",
                        "path": "x.py",
                        "message": "m",
                        "justification": "   ",
                    }
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="justification"):
        load_baseline(baseline_path)


def test_committed_baseline_is_valid():
    path = REPO_ROOT / "scripts" / "analysis_baseline.json"
    baseline = load_baseline(path)  # raises on any unjustified entry
    assert all(j.strip() for j in baseline.entries.values())


# -------------------------------------------------------------------- registry
def test_rule_catalog_has_all_families():
    catalog = rule_catalog()
    families = {cls.family for cls in catalog.values()}
    assert families == {"exactness", "locks", "lifecycle", "taxonomy", "determinism"}
    assert len(catalog) >= 12


def test_resolve_rules_by_family_and_id():
    by_family = resolve_rules(["locks"])
    assert {r.family for r in by_family} == {"locks"}
    assert len(by_family) >= 3
    by_id = resolve_rules(["broad-except"])
    assert [r.id for r in by_id] == ["broad-except"]


def test_resolve_rules_unknown_name():
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_rules(["no-such-rule"])


def test_rules_are_fresh_instances_per_run():
    a, b = create_rules(), create_rules()
    assert {r.id for r in a} == {r.id for r in b}
    assert all(x is not y for x, y in zip(a, b))


# ---------------------------------------------------------------------- config
def test_load_config_from_repo_root():
    config = load_config(REPO_ROOT)
    assert config.root == REPO_ROOT
    assert config.paths == ["src/repro"]
    assert config.baseline_path == REPO_ROOT / "scripts" / "analysis_baseline.json"


def test_load_config_defaults_without_pyproject(tmp_path):
    config = load_config(tmp_path)
    assert config.root == tmp_path.resolve()
    assert config.paths == ["src/repro"]


# ------------------------------------------------------------------- reporting
def test_render_json_shape(tmp_path):
    result = analyze_source(tmp_path, BARE_ACQUIRE)
    payload = json.loads(render_json(result, baselined=2))
    assert payload["clean"] is False
    assert payload["baselined"] == 2
    assert payload["findings"][0]["rule"] == "bare-acquire"
    assert payload["findings"][0]["line"] == 2


def test_render_text_mentions_location(tmp_path):
    result = analyze_source(tmp_path, BARE_ACQUIRE)
    text = render_text(result)
    assert "serve/sample.py:2" in text
    assert "[bare-acquire]" in text


# ------------------------------------------------------------------------- CLI
def test_cli_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "bare-acquire" in out and "[locks]" in out


def test_cli_exit_codes(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    bad = tmp_path / "bad.py"
    bad.write_text(BARE_ACQUIRE)
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["analyze", str(clean)]) == 0
    assert main(["analyze", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "bare-acquire" in out


def test_cli_rule_filter(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    bad = tmp_path / "bad.py"
    bad.write_text(BARE_ACQUIRE)
    # a non-lock rule filter must not see the lock violation
    assert main(["analyze", "--rule", "determinism", str(bad)]) == 0
    assert main(["analyze", "--rule", "bare-acquire", str(bad)]) == 1
    capsys.readouterr()
