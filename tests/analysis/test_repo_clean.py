"""The analyzer must run clean — and fast — on the real source tree.

This is the CI gate's in-suite twin: zero findings over ``src/repro``
(modulo the committed baseline, which is currently empty) within the
30-second budget, so the ``scripts/ci.sh`` static-analysis step can
never fail while tier-1 is green.
"""

import time
from pathlib import Path

import repro
from repro.__main__ import main
from repro.analysis import analyze_paths, create_rules

SRC = Path(repro.__file__).resolve().parent
REPO_ROOT = SRC.parents[1]


def test_real_tree_is_clean_and_fast():
    started = time.perf_counter()
    result = analyze_paths([SRC], rules=create_rules(), root=REPO_ROOT)
    elapsed = time.perf_counter() - started
    assert not result.errors, result.errors
    pretty = "\n".join(
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in result.findings
    )
    assert result.findings == [], f"real-tree findings:\n{pretty}"
    assert result.files > 100  # the whole tree was actually scanned
    assert elapsed < 30.0, f"analysis took {elapsed:.1f}s (budget 30s)"


def test_cli_gate_exits_zero(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["analyze", "--baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
