"""The analyzer must flag 100% of seeded fixture violations — and nothing else.

Each fixture line carrying a ``# expect: <rule>[, <rule>]`` marker must
produce exactly those findings at exactly that line; every other fixture
line must stay silent.  Asserting set equality in both directions gives
zero false negatives AND zero false positives over the corpus.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, create_rules, rule_catalog

FIXTURES = Path(__file__).parent / "fixtures"
_EXPECT_RE = re.compile(r"#\s*expect:\s*([\w\-]+(?:\s*,\s*[\w\-]+)*)")


def expected_findings() -> set:
    expected = set()
    for path in sorted(FIXTURES.rglob("*.py")):
        relpath = path.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _EXPECT_RE.search(line)
            if match:
                for rule in match.group(1).split(","):
                    expected.add((relpath, lineno, rule.strip()))
    return expected


def actual_findings() -> set:
    result = analyze_paths([FIXTURES], rules=create_rules(), root=FIXTURES)
    assert not result.errors, result.errors
    return {(f.path, f.line, f.rule) for f in result.findings}


def test_corpus_is_nonempty_and_covers_every_rule():
    expected = expected_findings()
    assert len(expected) >= 20
    seeded_rules = {rule for _, _, rule in expected}
    assert seeded_rules == set(rule_catalog()) | {"unjustified-suppression"}, (
        "every registered rule needs at least one seeded fixture violation"
    )


def test_zero_false_negatives_and_zero_false_positives():
    expected = expected_findings()
    actual = actual_findings()
    missed = expected - actual
    spurious = actual - expected
    assert not missed, f"analyzer missed seeded violations: {sorted(missed)}"
    assert not spurious, f"analyzer flagged unseeded lines: {sorted(spurious)}"


@pytest.mark.parametrize("rule_id", sorted(rule_catalog()))
def test_each_rule_flags_its_seeded_violations(rule_id):
    """Per-rule zero-false-negative check (the acceptance criterion)."""
    expected = {e for e in expected_findings() if e[2] == rule_id}
    if not expected:
        pytest.skip(f"no seeded violations for {rule_id}")
    actual = {a for a in actual_findings() if a[2] == rule_id}
    assert expected <= actual, (
        f"{rule_id} missed: {sorted(expected - actual)}"
    )
