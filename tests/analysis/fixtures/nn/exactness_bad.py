"""Seeded exactness violations (parsed by the analyzer, never imported).

``# expect: <rule>`` markers name the finding each line must produce;
the corpus test asserts exact agreement, so the analyzer has zero false
negatives AND zero false positives here.
"""

import numpy as np


def direct_operator(a, b):
    return a @ b  # expect: direct-matmul


def direct_matmul(a, b):
    return np.matmul(a, b)  # expect: direct-matmul


def direct_einsum(a, b):
    return np.einsum("ij,jk->ik", a, b)  # expect: direct-matmul


def direct_dot(a, b):
    return np.dot(a, b)  # expect: direct-matmul


def gated_reductions(spec, xs, backend):
    if supports_fused_projection(spec):
        total = np.sum(xs)  # expect: fused-accumulation
        acc = 0.0
        for x in xs:
            acc += x  # expect: fused-accumulation
        return total + acc
    return backend.matmul(xs, xs)


def gated_method_sum(spec, xs):
    if supports_fused_projection(spec):
        return xs.sum(axis=0)  # expect: fused-accumulation
    return None


def gated_ok(spec, xs, backend):
    # the gate's whole point: route through the fused backend reduction
    if supports_fused_projection(spec):
        return backend.fused_projection(xs)
    return None


def ungated_sum_ok(xs):
    # reductions outside a fused-projection gate are the backend's business
    return np.sum(xs)
