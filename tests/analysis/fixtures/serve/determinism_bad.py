"""Seeded determinism violations (parsed, never imported)."""

import random
import time

import numpy as np


def shared_rng():
    return random.random()  # expect: unseeded-random


def argless_rng():
    return np.random.default_rng()  # expect: unseeded-random


def legacy_global():
    return np.random.rand(3)  # expect: unseeded-random


def wall_clock():
    return time.time()  # expect: unseeded-random


def argless_instance():
    return random.Random()  # expect: unseeded-random


def unjustified():
    return time.time_ns()  # repro: allow(unseeded-random)  # expect: unjustified-suppression


def seeded_ok(seed, site):
    rng = random.Random(f"{seed}:{site}")
    gen = np.random.default_rng(seed)
    started = time.monotonic()
    elapsed = time.perf_counter()
    return rng, gen, started, elapsed
