"""Near-miss patterns that must NOT fire any rule (parsed, never imported)."""

import threading
import time

_LOCK = threading.Lock()
_TOTALS = {}


def tally(key):
    # consistently guarded module state: never flagged
    with _LOCK:
        _TOTALS[key] = _TOTALS.get(key, 0) + 1


def snapshot():
    with _LOCK:
        return dict(_TOTALS)


def monotonic_deadline(budget):
    # monotonic clocks are the sanctioned time source
    return time.monotonic() + budget


class Unlocked:
    """No lock attribute, so the unguarded-write rule stays silent."""

    def __init__(self):
        self._hits = 0

    def bump(self):
        self._hits += 1
