"""Seeded taxonomy violations (parsed, never imported)."""


class ServingError(Exception):
    pass


class Overloaded(ServingError):
    pass


class CustomError(RuntimeError):
    pass


def reject_custom():
    raise CustomError("outside the taxonomy")  # expect: untyped-serving-raise


def reject_builtin():
    raise RuntimeError("untyped")  # expect: untyped-serving-raise


def taxonomy_ok():
    raise Overloaded("queue full")


def validation_ok(n):
    if n < 0:
        raise ValueError("n must be >= 0")
    return n


def reraise_ok(item):
    # re-raising a caught/stored exception object is not a Call raise
    raise item


def broad():
    try:
        taxonomy_ok()
    except Exception:  # expect: broad-except
        pass


def bare():
    try:
        taxonomy_ok()
    except:  # expect: broad-except
        pass


def typed_ok():
    try:
        taxonomy_ok()
    except Overloaded:
        return None
    return None


def double(metrics, items):
    metrics.record_event("timeouts")
    total = len(items)
    metrics.record_event("timeouts", total)  # expect: double-count
    return total


def exclusive_ok(metrics, flag):
    if flag:
        metrics.record_event("sheds")
    else:
        metrics.record_event("sheds")


def try_handler(metrics):
    try:
        metrics.record_event("retries")
        taxonomy_ok()
    except ValueError:
        metrics.record_event("retries")  # expect: double-count


def errors_twice(metrics, n):
    metrics.record_error(n)
    metrics.record_error(1)  # expect: double-count


def distinct_events_ok(metrics):
    metrics.record_event("timeouts")
    metrics.record_event("cancelled")
