"""Justified suppressions that must silence findings (parsed, never imported)."""

import time


def stamp_same_line():
    return time.time()  # repro: allow(unseeded-random): fixture proving same-line justified suppression works


def stamp_line_above():
    # repro: allow(unseeded-random): fixture proving line-above justified suppression works
    return time.time()


def broad_with_reason():
    try:
        return 1
    # repro: allow(broad-except): fixture proving a justified broad-except suppression works
    except Exception:
        return 0
