"""Seeded lock-discipline violations (parsed, never imported)."""

import threading

_LOCK = threading.Lock()
_COUNT = 0

_A = threading.Lock()
_B = threading.Lock()


def guarded_bump():
    global _COUNT
    with _LOCK:
        _COUNT += 1


def unguarded_bump():
    global _COUNT
    _COUNT += 1  # expect: unguarded-write


def ab():
    with _A:
        with _B:  # expect: lock-order
            pass


def ba():
    with _B:
        with _A:
            pass


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._cv = threading.Condition()
        self._items = []
        self._count = 0
        self._ready = False

    def bump_guarded(self):
        with self._lock:
            self._count += 1

    def bump_unguarded(self):
        self._count += 1  # expect: unguarded-write

    def stash_unguarded(self, item):
        self._items.append(item)  # expect: unguarded-write

    def _drop_locked(self, item):
        # caller-holds-the-lock helper: exempt by naming convention
        self._items.remove(item)

    def wait_bad(self):
        with self._cv:
            if not self._ready:
                self._cv.wait()  # expect: wait-outside-loop

    def wait_good(self):
        with self._cv:
            while not self._ready:
                self._cv.wait()

    def manual_acquire(self):
        self._lock.acquire()  # expect: bare-acquire
        try:
            return len(self._items)
        finally:
            self._lock.release()
