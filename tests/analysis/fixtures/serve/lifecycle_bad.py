"""Seeded lifecycle violations (parsed, never imported)."""

from concurrent.futures import Future, InvalidStateError


def dropped():
    f = Future()  # expect: dropped-future
    if f.done():
        return True
    return False


def resolved_ok():
    f = Future()
    f.set_result(1)
    return True


def handed_off_ok(sink):
    f = Future()
    sink.append(f)
    return f


def cancelled_ok():
    f = Future()
    f.cancel()


def swallowed(job):
    try:
        job.future.set_result(run(job))
    except RuntimeError:  # expect: swallowed-future-error
        pass


def failed_ok(job):
    try:
        job.future.set_result(run(job))
    except RuntimeError as error:
        job.future.set_exception(error)


def benign_ok(job):
    try:
        job.future.set_result(run(job))
    except InvalidStateError:
        pass  # future already resolved by a racing path


def leak(shape):
    buf = checkout_scratch(shape)  # expect: unreleased-scratch
    buf.fill(0)
    return buf


def paired_ok(shape):
    buf = checkout_scratch(shape)
    try:
        return float(buf[0])
    finally:
        release_scratch(buf)


def plan_leak(plan, payload):
    work = plan.checkout()  # expect: unreleased-scratch
    work[:] = payload
    return work


def plan_paired_ok(plan, payload):
    work = plan.checkout()
    try:
        work[:] = payload
        return work.copy()
    finally:
        plan.release(work)


def page_leak(pool, owner):
    pages = pool.checkout_pages(owner, 4)  # expect: unreleased-page
    return [pool.kT[p] for p in pages]


def page_leak_single(pool, owner):
    page = pool.checkout_page(owner)  # expect: unreleased-page
    pool.v[page][:] = 0.0
    return page


def page_paired_ok(pool, owner):
    pages = pool.checkout_pages(owner, 4)
    try:
        return [pool.kT[p].copy() for p in pages]
    finally:
        pool.release_pages(owner, pages)


def page_release_all_ok(pool, owner):
    page = pool.checkout_page(owner)
    try:
        pool.v[page][:] = 0.0
    finally:
        pool.release_all(owner)


def stream_bad(model, prompts):
    with no_grad():
        for prompt in prompts:
            yield model(prompt)  # expect: no-grad-across-yield


def stream_ok(model, prompts):
    for prompt in prompts:
        with no_grad():
            token = model(prompt)
        yield token
