"""Graceful degradation: circuit breaker, ladder routing, replica fidelity."""

import copy
import time

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.models.gpt import GPT, GPTConfig
from repro.serve import compile_model, configure_faults
from repro.serve.degrade import CircuitBreaker, DegradationPolicy

from test_reliability import EchoModel, req

SMALL = GPTConfig(dim=16, num_layers=1, num_heads=2, max_len=64)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    previous = configure_faults(None)
    yield
    configure_faults(previous)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# CircuitBreaker unit behavior (injected clock: no real sleeping)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(3, 1.0, clock=FakeClock())
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.snapshot()["trips"] == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(2, 1.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken: 1+1, never 2

    def test_half_open_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now = 4.9
        assert breaker.state == "open"
        clock.now = 5.0
        assert breaker.state == "half-open"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 1.0, clock=clock)
        breaker.record_failure()
        clock.now = 2.0
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 1.0, clock=clock)
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.state == "half-open"
        breaker.record_failure()
        assert breaker.state == "open"  # cool-down restarted at t=2
        clock.now = 2.9
        assert breaker.state == "open"
        assert breaker.snapshot()["trips"] == 2

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0, 1.0)


# ----------------------------------------------------------------------
# DegradationPolicy routing
# ----------------------------------------------------------------------
class TestLadderRouting:
    def make_policy(self, **kwargs):
        base = compile_model(EchoModel())
        return DegradationPolicy(base, ("mx6", "mx4"), **kwargs), base

    def test_level_zero_below_trigger(self):
        policy, base = self.make_policy(queue_trigger=4)
        compiled, served = policy.select(3)
        assert compiled is base and served is None

    def test_deeper_backlog_cheaper_format(self):
        policy, _ = self.make_policy(queue_trigger=4)
        assert policy.select(4)[1] == "mx6"
        assert policy.select(8)[1] == "mx4"
        assert policy.select(800)[1] == "mx4"  # clamped to ladder depth

    def test_open_breaker_forces_at_least_level_one(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 10.0, clock=clock)
        policy, _ = self.make_policy(queue_trigger=0, breaker=breaker)
        assert policy.select(0)[1] is None
        breaker.record_failure()
        assert policy.select(0)[1] == "mx6"
        clock.now = 20.0  # half-open: probe at full fidelity
        assert policy.select(0)[1] is None

    def test_replicas_compiled_once_and_reused(self):
        policy, base = self.make_policy(queue_trigger=1)
        first = policy.select(1)[0]
        assert policy.select(1)[0] is first
        assert base.replica("mx6") is first


# ----------------------------------------------------------------------
# End-to-end through the session
# ----------------------------------------------------------------------
class TestSessionDegradation:
    def test_overload_serves_tagged_and_recovers(self):
        compiled = compile_model(EchoModel())
        with compiled.session(
            workers=1, max_wait=0.01, max_batch=8,
            degrade_ladder=("mx4",), degrade_queue_depth=2,
        ) as session:
            # the blocker's batch window (10ms) closes before the burst
            # arrives, so it rides alone and occupies the worker
            blocker = session.submit(req("blocker", sleep=0.2))
            time.sleep(0.05)
            burst = [session.submit(req(i)) for i in range(6)]
            assert blocker.result(timeout=5) == {"value": "blocker"}
            results = [f.result(timeout=5) for f in burst]
            # the backlog was served degraded, and tagged as such
            assert all(r["served_format"] == "mx4" for r in results)
            # queue drained: traffic returns to full fidelity, untagged
            calm = session.submit(req("calm")).result(timeout=5)
            assert "served_format" not in calm
            summary = session.summary()
        assert summary["reliability"]["degraded"] == 6
        assert summary["errors"] == 0

    def test_breaker_trip_degrades_then_recovers(self):
        compiled = compile_model(EchoModel())
        with compiled.session(
            workers=1, max_wait=0.005,
            degrade_ladder=("mx4",),
            breaker_threshold=2, breaker_cooldown=0.2,
        ) as session:
            for i in range(2):
                with pytest.raises(ValueError):
                    session.submit(req(i, boom="x")).result(timeout=5)
            assert session.health()["degradation"]["breaker"]["state"] == "open"
            degraded = session.submit(req("deg")).result(timeout=5)
            assert degraded["served_format"] == "mx4"
            time.sleep(0.25)  # cool-down elapses -> half-open probe
            probe = session.submit(req("probe")).result(timeout=5)
            assert "served_format" not in probe
            assert session.health()["degradation"]["breaker"]["state"] == "closed"
            assert session.health()["state"] == "ok"

    def test_health_reports_degraded_state(self):
        compiled = compile_model(EchoModel())
        with compiled.session(
            workers=1, max_wait=0.01,
            degrade_ladder=("mx4",), degrade_queue_depth=1,
        ) as session:
            session.submit(req("blocker", sleep=0.2))
            time.sleep(0.05)
            session.submit(req(1))
            session.submit(req(2))
            health = session.health()
            assert health["state"] == "degraded"
            assert health["fidelity"] == "mx4"
            assert health["degradation"]["ladder"] == ["mx4"]

    def test_config_validation(self):
        from repro.spec.serving import SessionConfig

        with pytest.raises(ValueError, match="degrade_queue_depth"):
            SessionConfig(degrade_queue_depth=2)
        with pytest.raises(TypeError, match="not a string"):
            SessionConfig(degrade_ladder="mx4")
        config = SessionConfig(degrade_ladder=["mx6", "mx4"], degrade_queue_depth=2)
        assert config.to_dict()["degrade_ladder"] == ["mx6", "mx4"]
        assert SessionConfig.from_json(config.to_json()) == config


# ----------------------------------------------------------------------
# Replica fidelity on a real model
# ----------------------------------------------------------------------
class TestReplicaFidelity:
    def test_replica_matches_directly_compiled_model(self):
        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
        pristine = copy.deepcopy(model)
        rng = np.random.default_rng(1)
        requests = [
            {
                "task": "score",
                "context": lang.sample_sequence(10, rng),
                "candidates": [lang.sample_sequence(4, rng) for _ in range(2)],
            }
            for _ in range(4)
        ]

        base = compile_model(model, "mx6")
        via_ladder = base.replica("mx4").run(requests)
        direct = compile_model(pristine, "mx4").run(requests)
        assert [r["scores"] for r in via_ladder] == [r["scores"] for r in direct]

    def test_replica_leaves_base_model_untouched(self):
        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
        base = compile_model(model, "mx6")
        rng = np.random.default_rng(2)
        request = {
            "task": "score",
            "context": lang.sample_sequence(8, rng),
            "candidates": [lang.sample_sequence(3, rng) for _ in range(2)],
        }
        before = base.run_one(request)
        base.replica("mx4")  # compiling the replica must not disturb mx6
        assert base.check_frozen()
        assert base.run_one(request) == before
