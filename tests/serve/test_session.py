"""InferenceSession: micro-batching, futures, streaming, metrics."""

import threading
import time

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.models.gpt import GPT, GPTConfig
from repro.serve import SessionConfig, compile_model

SMALL = GPTConfig(dim=16, num_layers=1, num_heads=2, max_len=64)


@pytest.fixture(scope="module")
def lang():
    return SyntheticLanguage(seed=0)


@pytest.fixture(scope="module")
def compiled(lang):
    model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
    return compile_model(model, "mx6")


def make_requests(lang, n, seed=1):
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(n):
        context = lang.sample_sequence(10, rng)
        candidates = [lang.sample_sequence(int(k), rng) for k in rng.integers(1, 5, size=2)]
        requests.append({"task": "score", "context": context, "candidates": candidates})
    return requests


class TestBatching:
    def test_map_matches_serial_run(self, compiled, lang):
        requests = make_requests(lang, 12)
        serial = compiled.run(requests)
        with compiled.session(max_batch=4, max_wait=0.05) as session:
            batched = session.map(requests)
        assert [r["scores"] for r in batched] == [r["scores"] for r in serial]

    def test_requests_actually_coalesce(self, compiled, lang):
        requests = make_requests(lang, 16)
        with compiled.session(max_batch=8, max_wait=0.2) as session:
            session.map(requests)
            summary = session.summary()
        assert summary["requests"] == 16
        assert summary["batch"]["max_size"] > 1

    def test_max_batch_respected(self, compiled, lang):
        requests = make_requests(lang, 10)
        with compiled.session(max_batch=3, max_wait=0.2) as session:
            session.map(requests)
            summary = session.summary()
        assert summary["batch"]["max_size"] <= 3

    def test_submit_returns_future(self, compiled, lang):
        request = make_requests(lang, 1)[0]
        with compiled.session(max_batch=2, max_wait=0.001) as session:
            future = session.submit(request)
            result = future.result(timeout=10)
        assert set(result) == {"choice", "scores"}

    def test_mixed_tasks_in_one_session(self, compiled, lang):
        rng = np.random.default_rng(7)
        context = lang.sample_sequence(8, rng)
        requests = [
            {"task": "score", "context": context, "candidates": [context[:2], context[2:4]]},
            {"task": "generate", "prompt": context[:3], "max_new_tokens": 4},
            {"task": "score", "context": context, "continuation": context[:2]},
        ]
        serial = compiled.run(requests)
        with compiled.session(max_batch=4, max_wait=0.05) as session:
            batched = session.map(requests)
        assert batched[0]["scores"] == serial[0]["scores"]
        assert batched[1]["tokens"] == serial[1]["tokens"]
        assert batched[2]["logprob"] == serial[2]["logprob"]


class TestLifecycle:
    def test_submit_after_close_raises(self, compiled, lang):
        session = compiled.session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(make_requests(lang, 1)[0])

    def test_close_drains_pending(self, compiled, lang):
        session = compiled.session(max_batch=4, max_wait=0.01)
        futures = [session.submit(r) for r in make_requests(lang, 8)]
        session.close()
        for future in futures:
            assert future.result(timeout=10) is not None

    def test_close_idempotent(self, compiled):
        session = compiled.session()
        session.close()
        session.close()

    def test_multiple_workers(self, compiled, lang):
        requests = make_requests(lang, 12)
        serial = compiled.run(requests)
        with compiled.session(max_batch=2, max_wait=0.005, workers=3) as session:
            batched = session.map(requests)
        assert [r["scores"] for r in batched] == [r["scores"] for r in serial]


class TestErrors:
    def test_unknown_task_rejected_at_submit(self, compiled):
        """Task validation happens before enqueueing, so a bad task can
        never ride in (and poison) a batch of valid requests."""
        with compiled.session(max_batch=2, max_wait=0.001) as session:
            with pytest.raises(ValueError, match="serves tasks"):
                session.submit({"task": "denoise", "x": [0.0, 0.0], "t": 0})

    def test_payload_error_propagates_to_future(self, compiled):
        with compiled.session(max_batch=2, max_wait=0.001) as session:
            # valid task, broken payload: fails inside the adapter
            future = session.submit({"task": "score", "wrong_key": 1})
            with pytest.raises(KeyError):
                future.result(timeout=10)
            summary = session.summary()
        assert summary["errors"] >= 1

    def test_bad_payload_does_not_poison_co_riders(self, compiled, lang):
        """A failing request in a coalesced batch fails alone; its valid
        co-riders are retried and succeed."""
        good_requests = make_requests(lang, 3)
        serial = compiled.run(good_requests)
        with compiled.session(max_batch=8, max_wait=0.2, workers=1) as session:
            futures = [session.submit(r) for r in good_requests[:2]]
            bad = session.submit({"task": "score", "wrong_key": 1})
            futures.append(session.submit(good_requests[2]))
            with pytest.raises(KeyError):
                bad.result(timeout=10)
            results = [f.result(timeout=10) for f in futures]
        assert [r["scores"] for r in results] == [r["scores"] for r in serial]

    def test_error_batch_does_not_kill_worker(self, compiled, lang):
        with compiled.session(max_batch=1, max_wait=0.001) as session:
            bad = session.submit({"task": "score", "wrong_key": 1})
            with pytest.raises(KeyError):
                bad.result(timeout=10)
            good = session.submit(make_requests(lang, 1)[0])
            assert good.result(timeout=10) is not None


class TestStreaming:
    def test_stream_tokens_match_direct(self, compiled):
        prompt = np.array([1, 2, 3])
        direct = list(compiled.stream(prompt, max_new_tokens=5))
        with compiled.session() as session:
            streamed = list(
                session.stream({"task": "generate", "prompt": prompt, "max_new_tokens": 5})
            )
        assert streamed == direct
        assert len(streamed) == 5

    def test_stream_interleaves_with_batches(self, compiled, lang):
        requests = make_requests(lang, 6)
        serial = compiled.run(requests)
        prompt = np.array([1, 2, 3])
        direct = list(compiled.stream(prompt, max_new_tokens=4))
        with compiled.session(max_batch=4, max_wait=0.02) as session:
            futures = [session.submit(r) for r in requests[:3]]
            stream = session.stream(
                {"task": "generate", "prompt": prompt, "max_new_tokens": 4}
            )
            futures += [session.submit(r) for r in requests[3:]]
            tokens = list(stream)
            results = [f.result(timeout=10) for f in futures]
        assert tokens == direct
        assert [r["scores"] for r in results] == [r["scores"] for r in serial]

    def test_stream_requires_generate_task(self, compiled):
        with compiled.session() as session:
            with pytest.raises(ValueError, match="generate"):
                session.stream({"task": "score", "context": [1], "candidates": [[2]]})

    def test_stream_counts_tokens(self, compiled):
        with compiled.session() as session:
            list(session.stream({"task": "generate", "prompt": np.array([1, 2]),
                                 "max_new_tokens": 3}))
            summary = session.summary()
        assert summary["tokens"] == 3

    def test_stream_decode_metrics(self, compiled):
        """Streaming surfaces tokens/sec and per-token latency percentiles."""
        with compiled.session() as session:
            list(session.stream({"task": "generate", "prompt": np.array([1, 2]),
                                 "max_new_tokens": 5}))
            summary = session.summary()
        decode = summary["decode"]
        assert decode["tokens"] == 5
        assert decode["tokens_per_sec"] > 0
        latency = decode["token_latency_ms"]
        assert latency["p50"] <= latency["p90"] <= latency["p99"]


class TestMetrics:
    def test_summary_shape(self, compiled, lang):
        with compiled.session(max_batch=4, max_wait=0.05) as session:
            session.map(make_requests(lang, 8))
            summary = session.summary()
        assert summary["requests"] == 8
        assert summary["throughput_rps"] > 0
        latency = summary["latency_ms"]
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert 0 < summary["batch"]["occupancy"] <= 1
        assert summary["config"]["max_batch"] == 4

    def test_percentile_helper(self):
        from repro.serve.metrics import percentile

        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        with pytest.raises(ValueError):
            percentile([], 50)


class TestReviewRegressions:
    """Pins for lifecycle bugs found in review."""

    def test_stream_submitted_before_close_still_completes(self, compiled, lang):
        """A stream job arriving while a batch is collecting must not be
        dropped behind the shutdown sentinel (it used to be re-queued)."""
        session = compiled.session(max_batch=4, max_wait=0.5, workers=1)
        normal = session.submit(make_requests(lang, 1)[0])  # worker collects
        stream = session.stream(
            {"task": "generate", "prompt": np.array([1, 2]), "max_new_tokens": 3}
        )
        session.close()  # sentinel lands after both jobs
        assert normal.result(timeout=10) is not None
        assert len(list(stream)) == 3

    def test_stream_generator_does_not_hold_no_grad(self, compiled):
        """A suspended stream generator must leave the caller's grad mode
        untouched between tokens."""
        from repro.nn.tensor import is_grad_enabled

        gen = compiled.stream(np.array([1, 2, 3]), max_new_tokens=4)
        next(gen)
        assert is_grad_enabled()
        next(gen)
        assert is_grad_enabled()
        gen.close()
        assert is_grad_enabled()
