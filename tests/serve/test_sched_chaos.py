"""Seeded chaos over the continuous scheduler: preemption storms, hard bars.

Satellite of the continuous-batching PR: a deterministic fault plan
hammers ``sched.admit`` / ``sched.preempt`` while a deliberately tiny
page budget forces constant preemption churn.  Under *any* schedule the
seed produces, the invariants are absolute:

* every future resolves — a result or a typed error, never a hang;
* every successful stream's tokens are **bit-identical** to the serial
  ``generate`` decode of the same prompt (preemption/resume, fused
  batching, and page churn must all be invisible in the output);
* the page pool leaks nothing: ``pool.leaked() == {}`` and
  checkouts == releases once the session closes.

Like ``test_chaos.py``, this file doubles as a CI gate: ``scripts/ci.sh``
runs it in the chaos step.
"""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.models.gpt import GPT, GPTConfig
from repro.serve import (
    InjectedFault,
    ServingError,
    SessionConfig,
    compile_model,
    configure_faults,
    inject_faults,
)

SMALL = GPTConfig(dim=16, num_layers=2, num_heads=2, max_len=64)

#: admission flaps (retriable and terminal) plus aborted preemptions,
#: all from one seed — combined with a starved page pool below
STORM = (
    "seed=2029 "
    "sched.admit:kind=transient,rate=0.2 "
    "sched.admit:kind=error,rate=0.05,after=4 "
    "sched.preempt:kind=error,rate=0.3"
)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    previous = configure_faults(None)
    yield
    configure_faults(previous)


@pytest.fixture(scope="module")
def lang():
    return SyntheticLanguage(seed=0)


@pytest.fixture(scope="module")
def compiled(lang):
    model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
    return compile_model(model, "mx6")


def ragged_requests(lang, n, seed, max_new=8):
    rng = np.random.default_rng(seed)
    return [
        {
            "task": "generate",
            "prompt": rng.integers(
                1, lang.vocab_size, size=int(rng.integers(3, 24))
            ).tolist(),
            "max_new_tokens": max_new,
        }
        for _ in range(n)
    ]


def run_storm(compiled, requests, *, plan=STORM, **scheduler):
    """Submit ``requests`` under ``plan``; returns (outcomes, summary, pool)."""
    cfg = SessionConfig(
        format="mx6", scheduler={"max_streams": 8, "page_budget": 14, **scheduler}
    )
    with inject_faults(plan):
        with compiled.session(cfg) as session:
            futures = [session.submit(r) for r in requests]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=120))
                except ServingError as error:
                    outcomes.append(error)
            summary = session.summary()
            pool = session._sched.pool
    return outcomes, summary, pool


def test_storm_preserves_bit_identity_and_leaks_nothing(compiled, lang):
    requests = ragged_requests(lang, 24, seed=41)
    truth = [
        list(
            compiled.adapter.generate_stream(
                np.asarray(r["prompt"]), r["max_new_tokens"]
            )
        )
        for r in requests
    ]
    outcomes, summary, pool = run_storm(compiled, requests)

    # every future resolved: nothing hung, nothing silently dropped
    assert len(outcomes) == len(requests)
    successes = [o for o in outcomes if not isinstance(o, Exception)]
    failures = [o for o in outcomes if isinstance(o, Exception)]
    assert all(isinstance(e, InjectedFault) for e in failures)
    assert successes, "the storm must not kill every request"

    # bit-identity held through admission flaps and preemption churn
    for outcome, tokens in zip(outcomes, truth):
        if not isinstance(outcome, Exception):
            assert outcome["tokens"] == tokens

    sched = summary["sched"]
    assert sched["completed"] == len(successes)
    # the tiny budget plus aborted preemptions exercised both fault sites
    assert sched["preempted"] > 0
    assert sched["admit_faults"] > 0
    assert sched["preempt_faults"] > 0

    # the hard bar: zero leaked pages, checkout/release parity
    assert pool.leaked() == {}
    stats = pool.stats()
    assert stats["pages_used"] == 0
    assert stats["checkouts"] == stats["releases"] > 0


def test_storm_replays_identically(compiled, lang):
    """Same seed, same requests => the same outcome classes per slot."""
    requests = ragged_requests(lang, 12, seed=43)
    first, _, _ = run_storm(compiled, requests)
    second, _, _ = run_storm(compiled, requests)
    kinds_a = [type(o).__name__ for o in first]
    kinds_b = [type(o).__name__ for o in second]
    assert kinds_a == kinds_b
    for a, b in zip(first, second):
        if not isinstance(a, Exception):
            assert a["tokens"] == b["tokens"]


def test_session_survives_storm(compiled, lang):
    """After the plan clears, the same session serves cleanly."""
    requests = ragged_requests(lang, 8, seed=47)
    cfg = SessionConfig(
        format="mx6", scheduler={"max_streams": 4, "page_budget": 14}
    )
    with compiled.session(cfg) as session:
        with inject_faults(STORM):
            for future in [session.submit(r) for r in requests]:
                try:
                    future.result(timeout=120)
                except ServingError:
                    pass
        # storm over: everything must succeed and match serial decode
        clean = session.map(requests)
        truth = [
            list(
                compiled.adapter.generate_stream(
                    np.asarray(r["prompt"]), r["max_new_tokens"]
                )
            )
            for r in requests
        ]
        assert [r["tokens"] for r in clean] == truth
        assert session.health()["kv"]["pages_used"] == 0
        pool = session._sched.pool
    assert pool.leaked() == {}
