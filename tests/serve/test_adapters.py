"""Every model family through the one serving protocol.

The load-bearing claim: batched adapter execution is bit-identical to the
legacy per-model entry points (which now delegate to the same adapters),
and every one of the eight families is servable through
``repro.compile(...)`` + the task verbs.
"""

import numpy as np
import pytest

import repro
from repro.data.synthetic import (
    CTRLogs,
    FrameAudio,
    GaussianMixture2D,
    ImageClasses,
    QACorpus,
    SyntheticLanguage,
    TranslationTask,
)
from repro.models.bert import BertEncoder, BertQA
from repro.models.diffusion import DDPM2D
from repro.models.dlrm import DLRM
from repro.models.gpt import GPT, GPTConfig, score_candidates
from repro.models.moe import MoEGPT
from repro.models.speech import TinyWav2Vec
from repro.models.translation import LSTMSeq2Seq, Seq2SeqTransformer, greedy_decode
from repro.models.vision import TinyMobileNet, TinyResNet, TinyViT
from repro.serve import Request, TASKS, adapter_for, compile_model, register_adapter
from repro.serve.adapters import CausalLMAdapter, TaskAdapter


SMALL = GPTConfig(dim=16, num_layers=1, num_heads=2, max_len=64)


def test_request_coercion():
    request = Request.coerce({"task": "score", "context": [1, 2]})
    assert request.task == "score"
    assert request.payload == {"context": [1, 2]}
    assert Request.coerce(request) is request
    with pytest.raises(ValueError, match="task"):
        Request.coerce({"context": [1]})
    with pytest.raises(TypeError):
        Request.coerce(42)


def test_unknown_model_raises():
    from repro.nn.layers import Linear

    with pytest.raises(TypeError, match="no serving adapter"):
        adapter_for(Linear(4, 4))


def test_adapter_cached_on_instance():
    lang = SyntheticLanguage(seed=0)
    model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
    assert adapter_for(model) is adapter_for(model)


def test_register_adapter_override():
    class Custom(CausalLMAdapter):
        pass

    lang = SyntheticLanguage(seed=0)
    model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0))
    register_adapter(GPT, Custom)
    try:
        assert isinstance(adapter_for(model), Custom)
    finally:
        from repro.serve import adapters

        adapters._REGISTRY.remove((GPT, Custom))
        model._serve_adapter = None


def test_wrong_task_rejected():
    lang = SyntheticLanguage(seed=0)
    compiled = compile_model(GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(0)), "mx6")
    with pytest.raises(ValueError, match="serves tasks"):
        compiled("denoise", x=np.zeros(2), t=0)


class TestCausalLM:
    @pytest.fixture(scope="class")
    def lang(self):
        return SyntheticLanguage(seed=0)

    @pytest.fixture(scope="class", params=["gpt", "moe"])
    def model(self, request, lang):
        rng = np.random.default_rng(1)
        if request.param == "gpt":
            return GPT(lang.vocab_size, SMALL, rng=rng)
        return MoEGPT(lang.vocab_size, SMALL, num_experts=2, rng=rng)

    def test_batched_score_matches_legacy_loop(self, model, lang):
        """Right-padded batched scoring == per-candidate serial scoring."""
        compiled = compile_model(model, "mx6")
        rng = np.random.default_rng(2)
        requests = []
        for _ in range(5):
            context = lang.sample_sequence(10, rng)
            candidates = [
                lang.sample_sequence(int(n), rng) for n in rng.integers(1, 6, size=3)
            ]
            requests.append({"task": "score", "context": context, "candidates": candidates})
        results = compiled.run(requests)
        for request, result in zip(requests, results):
            serial = [
                model.sequence_logprob(request["context"], candidate)
                for candidate in request["candidates"]
            ]
            assert result["scores"] == serial
            assert result["choice"] == int(np.argmax(serial))

    def test_score_single_continuation_logprob(self, model, lang):
        compiled = compile_model(model, "mx6")
        context = np.array([1, 2, 3])
        continuation = np.array([4, 5])
        out = compiled("score", context=context, continuation=continuation)
        assert out["logprob"] == model.sequence_logprob(context, continuation)

    def test_generate_matches_stream(self, model):
        compiled = compile_model(model, "mx6")
        prompt = np.array([1, 2, 3])
        generated = compiled("generate", prompt=prompt, max_new_tokens=6)
        streamed = list(compiled.stream(prompt, max_new_tokens=6))
        assert generated["tokens"] == streamed
        assert model.generate(prompt, max_new_tokens=6) == streamed


class TestScoreCandidatesDelegation:
    def test_matches_sequence_logprob_argmax(self):
        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, SMALL, rng=np.random.default_rng(3))
        rng = np.random.default_rng(4)
        context = lang.sample_sequence(8, rng)
        candidates = [lang.sample_sequence(int(n), rng) for n in (2, 4, 1)]
        idx = score_candidates(model, context, candidates)
        scores = [model.sequence_logprob(context, c) for c in candidates]
        assert idx == int(np.argmax(scores))


class TestBert:
    def test_embed_shapes_and_batching(self):
        corpus = QACorpus(seed=0)
        model = BertEncoder(corpus.vocab_size, dim=16, num_layers=1, num_heads=2,
                            rng=np.random.default_rng(5))
        compiled = compile_model(model, "mx6")
        rng = np.random.default_rng(6)
        tokens_a = rng.integers(corpus.vocab_size, size=12)
        tokens_b = rng.integers(corpus.vocab_size, size=12)
        tokens_c = rng.integers(corpus.vocab_size, size=7)  # different length
        results = compiled.run(
            [{"task": "embed", "tokens": t} for t in (tokens_a, tokens_b, tokens_c)]
        )
        # identical to per-request model calls (mixed lengths group safely)
        for tokens, result in zip((tokens_a, tokens_b, tokens_c), results):
            np.testing.assert_array_equal(result, model.embed(tokens))

    def test_span_prediction_matches_legacy(self):
        corpus = QACorpus(seed=0)
        model = BertQA(corpus.vocab_size, dim=16, num_layers=1, num_heads=2,
                       rng=np.random.default_rng(7))
        tokens, starts, ends = corpus.batch(4, np.random.default_rng(8))
        del starts, ends
        legacy = model.predict_spans(tokens)
        compiled = compile_model(model, "mx6")
        legacy_q = model.predict_spans(tokens)
        served = compiled.run_one({"task": "classify", "tokens": tokens})
        np.testing.assert_array_equal(served[0], legacy_q[0])
        np.testing.assert_array_equal(served[1], legacy_q[1])
        # quantization actually changed something vs FP32 at least sometimes
        assert legacy[0].shape == legacy_q[0].shape


class TestDLRM:
    def test_proba_matches_legacy_and_batches(self):
        logs = CTRLogs(seed=0)
        model = DLRM(rng=np.random.default_rng(9))
        dense, cats, labels = logs.sample(6, np.random.default_rng(10))
        del labels
        legacy = model.predict_proba(dense, cats)
        compiled = compile_model(model, "mx6", quantize_embeddings=True)
        legacy_q = model.predict_proba(dense, cats)
        # one batched request
        batched = compiled.run_one({"task": "classify", "dense": dense, "cats": cats})
        np.testing.assert_array_equal(batched, legacy_q)
        # six single-row requests coalesced
        singles = compiled.run(
            [{"task": "classify", "dense": dense[i], "cats": cats[i]} for i in range(6)]
        )
        np.testing.assert_array_equal(np.array(singles), legacy_q)
        assert not np.array_equal(legacy, legacy_q)  # mx6 changed the outputs


class TestVision:
    @pytest.mark.parametrize("cls", [TinyResNet, TinyMobileNet, TinyViT])
    def test_classify_matches_forward(self, cls):
        data = ImageClasses(seed=0)
        kwargs = {"num_classes": data.num_classes, "rng": np.random.default_rng(11)}
        if cls is TinyViT:
            kwargs.update(image_size=data.size, dim=16, num_layers=1, num_heads=2)
        model = cls(**kwargs)
        images, labels = data.sample(5, np.random.default_rng(12))
        del labels
        compiled = compile_model(model, "mx6")
        from repro.nn.tensor import no_grad

        with no_grad():
            expected = model.forward(images).data
        result = compiled.run_one({"task": "classify", "images": images})
        np.testing.assert_array_equal(result["logits"], expected)
        np.testing.assert_array_equal(result["label"], np.argmax(expected, axis=-1))
        singles = compiled.run(
            [{"task": "classify", "images": images[i]} for i in range(5)]
        )
        np.testing.assert_array_equal(
            np.array([s["logits"] for s in singles]), expected
        )


class TestSpeech:
    def test_transcribe_matches_legacy(self):
        audio = FrameAudio(seed=0)
        model = TinyWav2Vec(frame_dim=audio.frame_dim, num_phones=audio.num_phones,
                            dim=16, num_layers=1, num_heads=2,
                            rng=np.random.default_rng(13))
        frames, labels = next(iter(audio.batches(4, 20, 1, seed=14)))
        del labels
        compiled = compile_model(model, "mx6")
        legacy = model.transcribe(frames)
        served = compiled.run_one({"task": "classify", "frames": frames})
        assert served == legacy
        singles = compiled.run(
            [{"task": "classify", "frames": frames[i]} for i in range(frames.shape[0])]
        )
        assert singles == legacy


class TestTranslation:
    @pytest.mark.parametrize("cls", [Seq2SeqTransformer, LSTMSeq2Seq])
    def test_generate_matches_greedy_decode(self, cls):
        task = TranslationTask(seed=0)
        kwargs = {"dim": 16}
        if cls is Seq2SeqTransformer:
            kwargs.update(num_layers=1, num_heads=2)
        model = cls(task.vocab_size, rng=np.random.default_rng(15), **kwargs)
        sources, _ = task.batch(4, np.random.default_rng(16))
        compiled = compile_model(model, "mx6")
        legacy = greedy_decode(model, sources, max_len=10, bos=task.bos, eos=task.eos)
        served = compiled.run_one(
            {"task": "generate", "sources": sources, "max_len": 10,
             "bos": task.bos, "eos": task.eos}
        )
        assert served == legacy
        singles = compiled.run(
            [{"task": "generate", "sources": sources[i], "max_len": 10,
              "bos": task.bos, "eos": task.eos} for i in range(sources.shape[0])]
        )
        assert singles == legacy


class TestDiffusion:
    @pytest.mark.parametrize("num_classes", [0, 3])
    def test_denoise_matches_predict_noise(self, num_classes):
        mixture = GaussianMixture2D(seed=0)
        del mixture
        model = DDPM2D(num_classes=num_classes, steps=20,
                       rng=np.random.default_rng(17))
        compiled = compile_model(model, "mx6")
        rng = np.random.default_rng(18)
        x = rng.normal(size=(5, 2))
        t = rng.integers(model.steps, size=5)
        labels = rng.integers(3, size=5) if num_classes else None
        from repro.nn.tensor import no_grad

        with no_grad():
            expected = model.predict_noise(x, t, labels).data
        payload = {"task": "denoise", "x": x, "t": t}
        if num_classes:
            payload["labels"] = labels
        served = compiled.run_one(payload)
        np.testing.assert_array_equal(served, expected)
        # rows split across requests coalesce identically
        singles = compiled.run(
            [
                {"task": "denoise", "x": x[i], "t": int(t[i]),
                 **({"labels": int(labels[i])} if num_classes else {})}
                for i in range(5)
            ]
        )
        np.testing.assert_array_equal(np.array(singles), expected)

    def test_sampling_still_trains_and_runs(self):
        model = DDPM2D(steps=10, rng=np.random.default_rng(19))
        points = np.random.default_rng(20).normal(size=(8, 2))
        loss = model.loss((points, np.zeros(8, dtype=np.int64)))
        loss.backward()  # predict_noise delegation keeps the graph
        assert any(p.grad is not None for p in model.parameters())
        samples = model.sample(4, np.random.default_rng(21))
        assert samples.shape == (4, 2)


def test_tasks_constant_covers_all_adapters():
    assert set(TASKS) == {"classify", "score", "generate", "embed", "denoise"}
    for adapter_cls in (CausalLMAdapter,):
        assert set(adapter_cls.tasks) <= set(TASKS)
    assert issubclass(CausalLMAdapter, TaskAdapter)
