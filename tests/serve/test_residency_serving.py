"""Serving-layer residency: metrics observability and scoring parity."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticLanguage
from repro.data.tasks import make_task
from repro.models.gpt import GPT, GPT_SIZES
from repro.models.moe import MoEGPT
from repro.nn.residency import fusion_disabled
from repro.serve.compile import compile_model
from repro.serve.metrics import SessionMetrics, cache_stats


@pytest.fixture(scope="module")
def serving():
    lang = SyntheticLanguage(seed=0)
    model = GPT(lang.vocab_size, GPT_SIZES["GPT-XS"], rng=np.random.default_rng(0))
    compiled = compile_model(model, "mx6")
    examples = make_task("recall", lang, n_examples=8, seed=1)
    requests = [
        {"task": "score", "context": ex.context, "candidates": ex.candidates}
        for ex in examples
    ]
    return lang, compiled, requests


class TestCacheStats:
    def test_cache_stats_shape(self):
        stats = cache_stats()
        for key in ("causal_mask", "sinusoidal_positions"):
            assert {"hits", "misses", "size", "max_size"} <= set(stats[key])
            assert stats[key]["max_size"] is not None  # explicitly bounded
        assert "scratch_bytes" in stats["quant_plans"]
        assert stats["quantize_calls"] >= 0

    def test_session_summary_reports_caches_and_calls(self, serving):
        _, compiled, requests = serving
        with compiled.session(max_batch=4) as session:
            session.map(requests)
            summary = session.summary()
        assert summary["quantize_calls"]["total"] >= 0
        assert summary["quantize_calls"]["per_request"] >= 0.0
        assert summary["caches"]["causal_mask"]["max_size"] == 128
        assert summary["caches"]["sinusoidal_positions"]["max_size"] == 64

    def test_metrics_quant_delta_counts_work(self, serving):
        lang, compiled, requests = serving
        metrics = SessionMetrics()
        compiled.run(requests)
        summary = metrics.summary()
        assert summary["quantize_calls"]["total"] > 0


class TestScoringParity:
    """The fused scoring schedule (row residency, pruned head, gathered
    log-softmax) must be bit-identical to the historical path."""

    @pytest.mark.parametrize("model_cls", [GPT, MoEGPT], ids=["gpt", "moe"])
    def test_score_requests_identical(self, model_cls):
        lang = SyntheticLanguage(seed=0)
        model = model_cls(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
        compiled = compile_model(model, "mx6")
        examples = make_task("recall", lang, n_examples=12, seed=2)
        requests = [
            {"task": "score", "context": ex.context, "candidates": ex.candidates}
            for ex in examples
        ]
        fused = compiled.run(requests)
        with fusion_disabled():
            baseline = compiled.run(requests)
        assert fused == baseline

    def test_multi_token_candidates_and_shared_contexts(self):
        """Dedup must handle candidates of different lengths and repeated
        contexts across requests."""
        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
        compiled = compile_model(model, "mx6")
        rng = np.random.default_rng(5)
        context = rng.integers(0, lang.vocab_size, size=12).tolist()
        other = rng.integers(0, lang.vocab_size, size=7).tolist()
        requests = [
            {"task": "score", "context": context,
             "candidates": [[1], [2, 3], [4, 5, 6]]},
            {"task": "score", "context": context, "candidates": [[1], [2]]},
            {"task": "score", "context": other, "candidates": [[3], [3, 1]]},
            {"task": "score", "context": other, "continuation": [2, 2]},
        ]
        fused = compiled.run(requests)
        with fusion_disabled():
            baseline = compiled.run(requests)
        assert fused == baseline

    def test_sequence_logprob_parity(self):
        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
        compile_model(model, "mx6")
        context = np.array([1, 2, 3, 4])
        continuation = np.array([5, 6])
        fused = model.sequence_logprob(context, continuation)
        with fusion_disabled():
            baseline = model.sequence_logprob(context, continuation)
        assert fused == baseline

    def test_forward_rows_matches_forward(self):
        """Row-pruned head logits equal the same rows of the full forward."""
        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
        compiled = compile_model(model, "mx6")
        del compiled
        from repro.nn.tensor import no_grad

        tokens = np.random.default_rng(6).integers(0, lang.vocab_size, size=(3, 10))
        batch_idx = np.array([0, 0, 1, 2, 2])
        row_idx = np.array([0, 9, 4, 2, 7])
        with no_grad():
            full = model.forward(tokens).data
            pruned = model.forward_rows(tokens, batch_idx, row_idx).data
        np.testing.assert_array_equal(pruned, full[batch_idx, row_idx])

    def test_mixed_precision_policy_disables_row_schedule(self):
        """A single non-exact layer anywhere in the trunk turns off row
        dedup and head pruning (row-subset bits need exact dots in every
        layer), while scoring stays bit-identical."""
        from repro.nn.tensor import no_grad
        from repro.serve.adapters import adapter_for
        from repro.spec.policy import FirstLastHighPolicy

        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
        policy = FirstLastHighPolicy(
            quant={"activation": "mx6", "weight": "mx6", "backward": None}
        )
        compiled = compile_model(model, policy=policy)
        with no_grad():
            assert not adapter_for(model)._rows_forward_exact()
        examples = make_task("recall", lang, n_examples=8, seed=1)
        requests = [
            {"task": "score", "context": ex.context, "candidates": ex.candidates}
            for ex in examples
        ]
        fused = compiled.run(requests)
        with fusion_disabled():
            baseline = compiled.run(requests)
        assert fused == baseline

        uniform = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
        compile_model(uniform, "mx6")
        with no_grad():
            assert adapter_for(uniform)._rows_forward_exact()

    def test_fp32_scoring_keeps_full_batch(self):
        """Non-exact formats skip dedup/pruning but still score identically."""
        lang = SyntheticLanguage(seed=0)
        model = GPT(lang.vocab_size, GPT_SIZES["GPT-S"], rng=np.random.default_rng(0))
        model.eval()
        examples = make_task("recall", lang, n_examples=6, seed=3)
        requests = [
            {"task": "score", "context": ex.context, "candidates": ex.candidates}
            for ex in examples
        ]
        from repro.serve.adapters import adapter_for
        from repro.nn.tensor import no_grad

        adapter = adapter_for(model)
        with no_grad():
            fused = adapter.score(requests)
            with fusion_disabled():
                baseline = adapter.score(requests)
        assert fused == baseline
